# Convenience targets for the reproduction repository.

PY ?= python

.PHONY: install test bench bench-json bench-record bench-gate bench-capacity chaos-serve experiments examples clean loc

install:
	pip install -e . || $(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

# Machine-readable perf baseline (medians, stddevs) for PR-over-PR
# comparison; CI uploads the file as an artifact.
bench-json:
	mkdir -p benchmarks/results
	$(PY) -m pytest benchmarks/test_bench_core.py \
		benchmarks/test_bench_kernels.py \
		benchmarks/test_bench_proposals.py \
		benchmarks/test_bench_serve.py --benchmark-only \
		--benchmark-json benchmarks/results/bench.json

# Perf-regression ledger (docs/observability.md): record a bench-json
# run into BENCH_history.json / gate the current run against the rolling
# baseline (fails on >20% regression).
bench-record: bench-json
	$(PY) benchmarks/bench_history.py append

bench-gate: bench-json
	$(PY) benchmarks/bench_history.py check

# Serving-capacity curve (users/s + peak RSS across instance sizes and
# shard counts); `--record` appends the points to BENCH_history.json.
# Use `$(PY) benchmarks/capacity.py --full` for the 1M-user point.
bench-capacity:
	PYTHONPATH=src $(PY) benchmarks/capacity.py --record

# Serving-infrastructure chaos envelope (docs/robustness.md): every
# serve_fault_matrix case — worker kills, stalls, attach/publish
# failures, segment corruption, quarantine + re-promotion — must
# converge to a verified Nash matching the clean run's potential.
chaos-serve:
	PYTHONPATH=src $(PY) -m pytest tests/faults/test_serve_chaos.py \
		tests/serve/test_supervisor.py tests/serve/test_spec_transport.py -q

# Full-scale experiment sweep (writes CSVs under results/).
experiments:
	mkdir -p results
	$(PY) -m repro.experiments.cli all --repetitions 10 --csv results/sweep

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/shanghai_campaign.py
	$(PY) examples/distributed_protocol.py
	$(PY) examples/preference_tuning.py
	$(PY) examples/real_trace_pipeline.py

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
