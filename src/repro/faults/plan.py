"""Declarative fault plans compiled to deterministic per-slot injections.

A :class:`FaultPlan` is pure data: per-message-type loss / delay /
duplication probabilities plus a crash-restart schedule (explicit events
and/or a sampled crash rate).  ``compile()`` turns it into a
:class:`CompiledFaults` — crash/restart events bucketed by slot and one
:class:`numpy.random.Generator` seeded from ``plan.seed`` that drives every
message-level draw.  Because the protocol consumes that stream in a
deterministic order, a chaos run replays bit-identically from
``(plan, scenario seed)`` alone.

The *null* plan (all tables empty, no crashes) arms the hardened protocol
machinery without injecting anything; trajectories are bit-identical to
the paper-faithful simulator (asserted by
``tests/distributed/test_zero_fault_identity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_probability, require

#: Message types the injector may touch.  The handshake and the rejoin
#: path (recommendations, annotations, termination, rejoin/snapshot) ride
#: a reliable transport — a deployment would not start a session over a
#: link that cannot even deliver the route catalogue.
INJECTABLE_TYPES = frozenset(
    {"TaskCountUpdate", "UpdateRequest", "UpdateGrant", "DecisionReport", "Ack"}
)


@dataclass(frozen=True)
class CrashEvent:
    """One user-agent crash: dies at ``at_slot``, restarts at ``restart_slot``.

    ``restart_slot=None`` models a permanent departure: the platform's
    lease machinery eventually counts the user out and the run quiesces
    without it.
    """

    user: int
    at_slot: int
    restart_slot: int | None = None

    def __post_init__(self) -> None:
        require(self.at_slot >= 1, "crashes must happen at slot >= 1 (post-handshake)")
        if self.restart_slot is not None:
            require(
                self.restart_slot > self.at_slot,
                "restart_slot must come strictly after at_slot",
            )


def _check_prob_table(name: str, table: Mapping[str, float]) -> None:
    for tname, p in table.items():
        require(
            tname in INJECTABLE_TYPES,
            f"{name}[{tname!r}]: not an injectable message type "
            f"(allowed: {sorted(INJECTABLE_TYPES)})",
        )
        check_probability(f"{name}[{tname!r}]", p)


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault specification for one chaos run.

    ``loss`` / ``duplicate`` map message-type names to probabilities;
    ``delay`` maps them to ``(probability, max_extra_slots)`` — a delayed
    message is held in the bus's delivery-time priority queue for a
    uniform 1..max extra slots, which also reorders it against later
    traffic.  Crashes come from explicit ``crashes`` events and/or a
    sampled ``crash_rate`` (each user crashes at most once, at a uniform
    slot in ``crash_window``, down for a uniform 1..``max_downtime``
    slots).  ``seed`` feeds the single RNG stream behind all sampling.
    """

    seed: int = 0
    loss: Mapping[str, float] = field(default_factory=dict)
    delay: Mapping[str, tuple[float, int]] = field(default_factory=dict)
    duplicate: Mapping[str, float] = field(default_factory=dict)
    crashes: tuple[CrashEvent, ...] = ()
    crash_rate: float = 0.0
    crash_window: tuple[int, int] = (1, 30)
    max_downtime: int = 8

    def __post_init__(self) -> None:
        _check_prob_table("loss", self.loss)
        _check_prob_table("duplicate", self.duplicate)
        for tname, spec in self.delay.items():
            require(
                tname in INJECTABLE_TYPES,
                f"delay[{tname!r}]: not an injectable message type "
                f"(allowed: {sorted(INJECTABLE_TYPES)})",
            )
            prob, max_extra = spec
            check_probability(f"delay[{tname!r}].prob", prob)
            require(
                int(max_extra) >= 1 or prob == 0.0,
                f"delay[{tname!r}]: max_extra_slots must be >= 1 when prob > 0",
            )
        check_probability("crash_rate", self.crash_rate)
        lo, hi = self.crash_window
        require(1 <= lo <= hi, "crash_window must satisfy 1 <= lo <= hi")
        require(self.max_downtime >= 1, "max_downtime must be >= 1")
        seen = set()
        for ev in self.crashes:
            require(ev.user not in seen, f"user {ev.user} crashes more than once")
            seen.add(ev.user)

    def is_null(self) -> bool:
        """True when the plan injects nothing (the identity plan)."""
        return (
            not any(p > 0.0 for p in self.loss.values())
            and not any(p > 0.0 for p, _ in self.delay.values())
            and not any(p > 0.0 for p in self.duplicate.values())
            and not self.crashes
            and self.crash_rate == 0.0
        )

    @property
    def max_delay_slots(self) -> int:
        """Largest configured extra delay (the reorder window)."""
        return max((int(m) for p, m in self.delay.values() if p > 0.0), default=0)

    def compile(self, num_users: int) -> "CompiledFaults":
        """Sample the crash schedule and freeze the per-slot injections."""
        rng = as_generator(int(self.seed))
        events: dict[int, CrashEvent] = {ev.user: ev for ev in self.crashes}
        if self.crash_rate > 0.0:
            lo, hi = self.crash_window
            for u in range(num_users):
                if u in events:
                    continue  # explicit events win over sampling
                if rng.random() < self.crash_rate:
                    at = int(rng.integers(lo, hi + 1))
                    down = int(rng.integers(1, self.max_downtime + 1))
                    events[u] = CrashEvent(user=u, at_slot=at, restart_slot=at + down)
        for ev in events.values():
            require(
                0 <= ev.user < num_users,
                f"crash event user {ev.user} outside 0..{num_users - 1}",
            )
        crashes_at: dict[int, list[int]] = {}
        restarts_at: dict[int, list[int]] = {}
        for ev in sorted(events.values(), key=lambda e: e.user):
            crashes_at.setdefault(ev.at_slot, []).append(ev.user)
            if ev.restart_slot is not None:
                restarts_at.setdefault(ev.restart_slot, []).append(ev.user)
        return CompiledFaults(
            plan=self,
            rng=rng,
            events={u: e for u, e in sorted(events.items())},
            crashes_at=crashes_at,
            restarts_at=restarts_at,
        )


@dataclass
class CompiledFaults:
    """A :class:`FaultPlan` bound to a crash schedule and one RNG stream."""

    plan: FaultPlan
    rng: np.random.Generator
    events: dict[int, CrashEvent]
    crashes_at: dict[int, list[int]]
    restarts_at: dict[int, list[int]]

    @property
    def permanent_crashes(self) -> tuple[int, ...]:
        """Users that crash and never restart (modelled departures)."""
        return tuple(
            u for u, ev in self.events.items() if ev.restart_slot is None
        )

    def last_restart_slot(self) -> int:
        """Largest scheduled restart slot (0 when none)."""
        return max(self.restarts_at, default=0)
