"""Runtime fault injector: the bus asks it what to do with each post.

One injector wraps one :class:`~repro.faults.plan.CompiledFaults`.  All
randomness comes from the compiled plan's single RNG stream, consumed in
bus-post order — deterministic given the scenario, so chaos runs replay
bit-identically.  Draws only happen for message types the plan actually
targets: the null plan consumes zero randomness and perturbs nothing.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.distributed.messages import Message
from repro.faults.plan import CompiledFaults
from repro.obs import counter as _obs_counter
from repro.obs.runtime import RUNTIME as _OBS


@dataclass(frozen=True)
class Fate:
    """What the bus should do with one posted message.

    ``delays[k]`` is the extra delivery delay (in slots) of copy ``k``;
    a dropped message has no copies.
    """

    delays: tuple[int, ...]

    @property
    def dropped(self) -> bool:
        return not self.delays


_DELIVER = Fate(delays=(0,))


class FaultInjector:
    """Per-post fault decisions plus crash-schedule queries."""

    def __init__(self, compiled: CompiledFaults) -> None:
        self.compiled = compiled
        self.injected: Counter[str] = Counter()
        self._crashed: set[int] = set()
        self._restart_due: dict[int, int] = {
            u: ev.restart_slot
            for u, ev in compiled.events.items()
            if ev.restart_slot is not None
        }

    # ------------------------------------------------------------- messages
    def fate(self, message: Message) -> Fate:
        """Decide loss / duplication / delay for one posted message."""
        plan = self.compiled.plan
        rng = self.compiled.rng
        tname = type(message).__name__
        p_loss = plan.loss.get(tname, 0.0)
        if p_loss > 0.0 and rng.random() < p_loss:
            self._count("loss", tname)
            return Fate(delays=())
        copies = 1
        p_dup = plan.duplicate.get(tname, 0.0)
        if p_dup > 0.0 and rng.random() < p_dup:
            copies = 2
            self._count("duplicate", tname)
        delays = []
        d_spec = plan.delay.get(tname)
        for _ in range(copies):
            extra = 0
            if d_spec is not None and d_spec[0] > 0.0 and rng.random() < d_spec[0]:
                extra = int(rng.integers(1, int(d_spec[1]) + 1))
                self._count("delay", tname)
            delays.append(extra)
        if copies == 1 and delays[0] == 0:
            return _DELIVER
        return Fate(delays=tuple(delays))

    def _count(self, kind: str, tname: str) -> None:
        self.injected[kind] += 1
        if _OBS.enabled:
            _obs_counter("faults.injected_total", kind=kind, type=tname).inc()

    # ---------------------------------------------------------------- crash
    def crashes_at(self, slot: int) -> list[int]:
        """Users whose crash is scheduled for ``slot`` (marks them down)."""
        users = self.compiled.crashes_at.get(slot, [])
        for u in users:
            self._crashed.add(u)
            self._count("crash", f"user-{u}")
        return list(users)

    def restarts_at(self, slot: int) -> list[int]:
        """Users whose restart is scheduled for ``slot`` (marks them up)."""
        users = self.compiled.restarts_at.get(slot, [])
        for u in users:
            self._crashed.discard(u)
            self._restart_due.pop(u, None)
            self._count("restart", f"user-{u}")
        return list(users)

    def restart_pending(self) -> bool:
        """True while any crashed user still has a restart scheduled —
        the run must not declare quiescence before they rejoin."""
        return bool(self._restart_due)

    @property
    def crashed_users(self) -> frozenset[int]:
        return frozenset(self._crashed)

    def summary(self) -> dict[str, int]:
        """Copy of the per-kind injection counters."""
        return dict(self.injected)
