"""Deterministic, seed-driven fault injection for the distributed protocol.

Robustness extension (not in the paper; see ``docs/robustness.md``).  The
package has four pieces:

- :mod:`repro.faults.plan` — the declarative :class:`FaultPlan` (message
  loss / delay / duplication per type, crash-restart schedules) compiled
  to per-slot injections from one RNG stream, so every chaos run replays
  bit-identically from its seed.
- :mod:`repro.faults.injector` — the runtime :class:`FaultInjector` the
  message bus consults on every post.
- :mod:`repro.faults.invariants` — the :class:`InvariantChecker` asserting
  the potential-game guarantees (Eq. 11 over granted moves), platform/user
  reconciliation after rejoin, and Nash quiescence.
- :mod:`repro.faults.chaos` — the :class:`ChaosRunner` sweeping fault
  plans over seeded scenarios, plus the CI ``bounded_fault_matrix``.
"""

from repro.faults.plan import CompiledFaults, CrashEvent, FaultPlan
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.serveplan import (
    EpochAbandoned,
    EpochTimeoutError,
    ServeFaultError,
    ServeFaultInjector,
    ServeFaultPlan,
    SpecAttachError,
    SpecIntegrityError,
    SpecPublishError,
    WorkerCrashError,
)
from repro.faults.chaos import (
    ChaosCase,
    ChaosCaseResult,
    ChaosReport,
    ChaosRunner,
    ServeFaultCase,
    ServeFaultResult,
    bounded_fault_matrix,
    serve_fault_matrix,
)

__all__ = [
    "ChaosCase",
    "ChaosCaseResult",
    "ChaosReport",
    "ChaosRunner",
    "CompiledFaults",
    "CrashEvent",
    "EpochAbandoned",
    "EpochTimeoutError",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "InvariantViolation",
    "ServeFaultCase",
    "ServeFaultError",
    "ServeFaultInjector",
    "ServeFaultPlan",
    "ServeFaultResult",
    "SpecAttachError",
    "SpecIntegrityError",
    "SpecPublishError",
    "WorkerCrashError",
    "bounded_fault_matrix",
    "serve_fault_matrix",
]
