"""Serve-side fault plans: deterministic infrastructure faults for serving.

The protocol-level :class:`~repro.faults.plan.FaultPlan` perturbs the
*message substrate* of the distributed simulation.  This module is its
serving-layer sibling: a :class:`ServeFaultPlan` declares faults of the
**serving infrastructure** — worker processes, epoch dispatch, and the
shared-memory spec transport — and compiles them into one seeded,
replayable schedule that the :class:`~repro.serve.workers.ShardPool` and
:class:`~repro.serve.specstore.SpecStore` consult the same way the
message bus consults a :class:`~repro.faults.injector.FaultInjector`.

Fault kinds (see ``docs/robustness.md``, serving-layer failure model):

- ``worker_kills`` — SIGKILL one pool worker right after the named
  dispatch, breaking the executor (``BrokenProcessPool``) for real;
- ``stalls`` — the worker sleeps before running the epoch, driving the
  dispatch past the supervisor's deadline;
- ``attach_failures`` — the worker's shared-memory attach of the spec
  segment fails (:class:`SpecAttachError`);
- ``corruptions`` — the published segment's magic bytes are flipped
  before dispatch, so a cache-missing worker sees a mangled spec
  (:class:`SpecIntegrityError`);
- ``publish_failures`` — publishing a ``(shard_id, version)`` spec into
  shared memory fails (:class:`SpecPublishError`), forcing the pickle
  transport for that job.

Explicit events are keyed on the *dispatch index* — the n-th epoch job
submitted for a shard, retries included — so a schedule replays
bit-identically; sampled ``*_rate`` faults draw from one RNG stream
seeded by ``plan.seed`` in a fixed (shard, dispatch, kind) order at
compile time, so they replay too.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.obs import counter as _obs_counter
from repro.obs.runtime import RUNTIME as _OBS
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability, require

__all__ = [
    "EpochFate",
    "EpochAbandoned",
    "EpochTimeoutError",
    "ServeFaultError",
    "ServeFaultInjector",
    "ServeFaultPlan",
    "SpecAttachError",
    "SpecIntegrityError",
    "SpecPublishError",
    "WorkerCrashError",
]


# ------------------------------------------------------------------- failures
class ServeFaultError(RuntimeError):
    """Base of the serving layer's typed infrastructure failures.

    Raised by the transport / pool machinery (injected or genuine) and
    classified by the :class:`~repro.serve.supervisor.ShardSupervisor`,
    which picks the matching recovery action.
    """


class EpochTimeoutError(ServeFaultError):
    """A dispatched epoch missed its harvest deadline."""

    def __init__(self, shard_id: int, deadline: float) -> None:
        super().__init__(
            f"shard {shard_id} epoch missed its {deadline:.3f}s deadline"
        )
        self.shard_id = shard_id
        self.deadline = deadline

    def __reduce__(self):  # crosses the pool pipe; keep the fields intact
        return (type(self), (self.shard_id, self.deadline))


class WorkerCrashError(ServeFaultError):
    """The process pool broke under a job (worker died mid-epoch)."""

    def __init__(self, shard_id: int, cause: str = "") -> None:
        super().__init__(
            f"worker pool broke under shard {shard_id}'s epoch"
            + (f": {cause}" if cause else "")
        )
        self.shard_id = shard_id
        self.cause = cause

    def __reduce__(self):
        return (type(self), (self.shard_id, self.cause))


class SpecAttachError(ServeFaultError):
    """A worker could not map the shared-memory spec segment."""

    def __init__(self, segment: str) -> None:
        super().__init__(f"cannot attach spec segment {segment!r}")
        self.segment = segment

    def __reduce__(self):
        return (type(self), (self.segment,))


class SpecIntegrityError(ServeFaultError):
    """An attached spec segment failed validation (bad magic / mangled
    skeleton) — the mapping was closed before this was raised."""

    def __init__(self, segment: str, detail: str) -> None:
        super().__init__(f"spec segment {segment!r} is corrupt: {detail}")
        self.segment = segment
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.segment, self.detail))


class SpecPublishError(ServeFaultError):
    """Publishing a spec into shared memory failed."""

    def __init__(self, shard_id: int, version: int) -> None:
        super().__init__(
            f"publishing spec (shard {shard_id}, v{version}) failed"
        )
        self.shard_id = shard_id
        self.version = version

    def __reduce__(self):
        return (type(self), (self.shard_id, self.version))


class EpochAbandoned(ServeFaultError):
    """The supervisor exhausted its retries for one epoch and quarantined
    the shard — the dispatcher must run the epoch inline."""

    def __init__(self, shard_id: int, cause: ServeFaultError) -> None:
        super().__init__(
            f"shard {shard_id} epoch abandoned after retries: {cause}"
        )
        self.shard_id = shard_id
        self.cause = cause


# ----------------------------------------------------------------------- plan
@dataclass(frozen=True)
class EpochFate:
    """Injected faults for one epoch dispatch of one shard."""

    kill_worker: bool = False
    stall_seconds: float = 0.0
    fail_attach: bool = False
    corrupt_segment: bool = False

    @property
    def clean(self) -> bool:
        return not (
            self.kill_worker
            or self.stall_seconds > 0.0
            or self.fail_attach
            or self.corrupt_segment
        )


_CLEAN = EpochFate()


@dataclass(frozen=True)
class ServeFaultPlan:
    """Declarative serving-infrastructure fault specification.

    Explicit events name ``(shard, dispatch)`` pairs (``stalls`` adds the
    sleep seconds; ``publish_failures`` is keyed on ``(shard, version)``
    because publishing happens once per spec version, not per dispatch).
    Sampled ``*_rate`` faults are drawn per (shard, dispatch) over
    ``dispatch_window`` at compile time from one RNG seeded by ``seed``.
    """

    seed: int = 0
    worker_kills: tuple[tuple[int, int], ...] = ()
    stalls: tuple[tuple[int, int, float], ...] = ()
    attach_failures: tuple[tuple[int, int], ...] = ()
    corruptions: tuple[tuple[int, int], ...] = ()
    publish_failures: tuple[tuple[int, int], ...] = ()
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    stall_seconds: float = 0.25
    attach_rate: float = 0.0
    corrupt_rate: float = 0.0
    dispatch_window: tuple[int, int] = (0, 8)

    def __post_init__(self) -> None:
        for name, events in (
            ("worker_kills", self.worker_kills),
            ("attach_failures", self.attach_failures),
            ("corruptions", self.corruptions),
            ("publish_failures", self.publish_failures),
        ):
            for shard, n in events:
                require(
                    shard >= 0 and n >= 0,
                    f"{name} entries must be (shard >= 0, index >= 0)",
                )
        for shard, n, seconds in self.stalls:
            require(
                shard >= 0 and n >= 0 and seconds > 0.0,
                "stalls entries must be (shard >= 0, dispatch >= 0, "
                "seconds > 0)",
            )
        for name in ("kill_rate", "stall_rate", "attach_rate", "corrupt_rate"):
            check_probability(name, getattr(self, name))
        require(self.stall_seconds > 0.0, "stall_seconds must be > 0")
        lo, hi = self.dispatch_window
        require(0 <= lo <= hi, "dispatch_window must satisfy 0 <= lo <= hi")

    def is_null(self) -> bool:
        """True when the plan injects nothing."""
        return (
            not self.worker_kills
            and not self.stalls
            and not self.attach_failures
            and not self.corruptions
            and not self.publish_failures
            and self.kill_rate == 0.0
            and self.stall_rate == 0.0
            and self.attach_rate == 0.0
            and self.corrupt_rate == 0.0
        )

    def compile(self, num_shards: int) -> "ServeFaultInjector":
        """Freeze the schedule (explicit events + sampled draws) into an
        injector the pool and spec store consult at dispatch time."""
        require(num_shards >= 1, "num_shards must be >= 1")
        kills = {(s, n) for s, n in self.worker_kills}
        stalls = {(s, n): float(sec) for s, n, sec in self.stalls}
        attach = {(s, n) for s, n in self.attach_failures}
        corrupt = {(s, n) for s, n in self.corruptions}
        publish = {(s, v) for s, v in self.publish_failures}
        if any(
            p > 0.0
            for p in (
                self.kill_rate, self.stall_rate, self.attach_rate,
                self.corrupt_rate,
            )
        ):
            rng = as_generator(int(self.seed))
            lo, hi = self.dispatch_window
            for s in range(num_shards):
                for n in range(lo, hi + 1):
                    # Fixed draw order per (shard, dispatch) so the
                    # schedule replays bit-identically from the seed.
                    if self.kill_rate > 0.0 and rng.random() < self.kill_rate:
                        kills.add((s, n))
                    if self.stall_rate > 0.0 and rng.random() < self.stall_rate:
                        stalls.setdefault((s, n), self.stall_seconds)
                    if (
                        self.attach_rate > 0.0
                        and rng.random() < self.attach_rate
                    ):
                        attach.add((s, n))
                    if (
                        self.corrupt_rate > 0.0
                        and rng.random() < self.corrupt_rate
                    ):
                        corrupt.add((s, n))
        return ServeFaultInjector(
            plan=self,
            kills=kills,
            stalls=stalls,
            attach=attach,
            corrupt=corrupt,
            publish=publish,
        )


@dataclass
class ServeFaultInjector:
    """A compiled :class:`ServeFaultPlan` plus per-shard dispatch clocks.

    :meth:`epoch_fate` is consumed by
    :meth:`~repro.serve.workers.ShardPool.submit_epoch` once per dispatch
    (retries included — they advance the clock, so a one-shot fault does
    not re-fire on the retry); :meth:`publish_fails` is consulted by
    :meth:`~repro.serve.specstore.SpecStore.ticket_for` per publish
    attempt.  ``injected`` counts what actually fired.
    """

    plan: ServeFaultPlan
    kills: set[tuple[int, int]]
    stalls: dict[tuple[int, int], float]
    attach: set[tuple[int, int]]
    corrupt: set[tuple[int, int]]
    publish: set[tuple[int, int]]
    injected: Counter = field(default_factory=Counter)
    _dispatch: Counter = field(default_factory=Counter)

    def epoch_fate(self, shard_id: int) -> EpochFate:
        """Fate of the next dispatch of ``shard_id`` (advances its clock)."""
        n = self._dispatch[shard_id]
        self._dispatch[shard_id] = n + 1
        key = (shard_id, n)
        fate = EpochFate(
            kill_worker=key in self.kills,
            stall_seconds=self.stalls.get(key, 0.0),
            fail_attach=key in self.attach,
            corrupt_segment=key in self.corrupt,
        )
        if fate.kill_worker:
            self._count("worker_kill")
        if fate.stall_seconds > 0.0:
            self._count("stall")
        if fate.fail_attach:
            self._count("attach_failure")
        if fate.corrupt_segment:
            self._count("corruption")
        return fate if not fate.clean else _CLEAN

    def publish_fails(self, shard_id: int, version: int) -> bool:
        """True when publishing ``(shard_id, version)`` must fail.

        One-shot: the entry is consumed, so the supervisor's retry (or
        the next epoch) publishes successfully.
        """
        key = (shard_id, version)
        if key in self.publish:
            self.publish.discard(key)
            self._count("publish_failure")
            return True
        return False

    def dispatches(self, shard_id: int) -> int:
        """Epoch jobs dispatched so far for one shard (retries included)."""
        return self._dispatch[shard_id]

    def _count(self, kind: str) -> None:
        self.injected[kind] += 1
        if _OBS.enabled:
            _obs_counter("faults.serve_injected_total", kind=kind).inc()

    def summary(self) -> dict[str, int]:
        """Copy of the per-kind injection counters."""
        return dict(self.injected)
