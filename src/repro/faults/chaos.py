"""Chaos harness: run fault scenarios and assert the protocol invariants.

One :class:`ChaosCase` names a :class:`~repro.faults.plan.FaultPlan` plus
the scheduler and seed to run it under; :class:`ChaosRunner` executes
cases against a game through the hardened
:class:`~repro.distributed.simulator.DistributedSimulation` with the
:class:`~repro.faults.invariants.InvariantChecker` attached, and folds the
results into a :class:`ChaosReport`.  A case *passes* when the run
terminates with ``stop_reason == "converged"`` and no invariant was
violated — i.e. despite the injected faults the protocol still reached a
confirmed Nash equilibrium through potential-improving moves only.

:func:`bounded_fault_matrix` is the CI envelope (the ``chaos-smoke`` job):
message loss up to 0.3, reordering up to 3 slots, duplication, and up to
20% of agents crashing once, alone and combined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.game import RouteNavigationGame
from repro.distributed.resilience import ResilienceConfig
from repro.distributed.simulator import DistributedOutcome, DistributedSimulation
from repro.faults.invariants import InvariantViolation
from repro.faults.plan import FaultPlan

#: The bounded-fault envelope the resilient protocol is promised to
#: survive (acceptance criteria in docs/robustness.md).
MAX_LOSS = 0.3
MAX_REORDER_SLOTS = 3
MAX_CRASH_RATE = 0.2


@dataclass(frozen=True)
class ChaosCase:
    """One scenario: a fault plan under a scheduler with a protocol seed."""

    name: str
    plan: FaultPlan
    scheduler: str = "suu"
    seed: int = 0
    max_slots: int = 2_000


@dataclass
class ChaosCaseResult:
    """Outcome + invariant verdicts of one executed case."""

    case: ChaosCase
    outcome: DistributedOutcome
    violations: list[InvariantViolation]

    @property
    def ok(self) -> bool:
        return self.outcome.stop_reason == "converged" and not self.violations

    def describe(self) -> str:
        o = self.outcome
        status = "ok" if self.ok else "FAIL"
        extra = "" if not self.violations else f", {len(self.violations)} violation(s)"
        return (
            f"{status:4s} {self.case.name} [{self.case.scheduler}, seed "
            f"{self.case.seed}]: {o.stop_reason} in {o.decision_slots} slots, "
            f"{o.crashes} crash(es), {o.lease_revocations} revocation(s), "
            f"{o.redelivered_messages} redeliveries{extra}"
        )


@dataclass
class ChaosReport:
    """All case results of one matrix run."""

    results: list[ChaosCaseResult] = field(default_factory=list)

    @property
    def failures(self) -> list[ChaosCaseResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [r.describe() for r in self.results]
        lines.append(
            f"{len(self.results) - len(self.failures)}/{len(self.results)} "
            "cases passed"
        )
        return "\n".join(lines)

    def raise_if_failures(self) -> None:
        if self.failures:
            details = "\n".join(
                [r.describe() for r in self.failures]
                + [
                    f"    {v}"
                    for r in self.failures
                    for v in r.violations
                ]
            )
            raise AssertionError(
                f"{len(self.failures)} chaos case(s) failed:\n{details}"
            )


@dataclass(frozen=True)
class ShardCrashCase:
    """One serving-layer scenario: crash shard workers mid-session.

    The session runs ``crash_round`` rounds normally, then loses the
    named shards' epoch work (they resume from their last-sync snapshot)
    and must still reach global quiescence.  A case passes when the
    session converges, the state is a Nash equilibrium of the monolithic
    game, and no serving invariant (cross-shard counts, ledger potential
    identity, Nash-at-quiescence) was violated.
    """

    name: str
    num_shards: int
    crash_shards: tuple[int, ...]
    crash_round: int = 1
    scheduler: str = "suu"
    seed: int = 0
    max_rounds: int = 200
    #: worker-pool size (None = inline dispatch, the default); a pooled
    #: case additionally asserts that every shared-memory spec segment
    #: the session published was unlinked by the time it closed.
    processes: int | None = None
    #: overlap worker epochs with the dispatcher's boundary pass.
    pipeline: bool = False


@dataclass
class ShardCrashResult:
    """Outcome + invariant verdicts of one executed shard-crash case."""

    case: ShardCrashCase
    converged: bool
    is_nash: bool
    rounds: int
    violations: list[InvariantViolation]

    @property
    def ok(self) -> bool:
        return self.converged and self.is_nash and not self.violations

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        extra = "" if not self.violations else f", {len(self.violations)} violation(s)"
        return (
            f"{status:4s} {self.case.name} [{self.case.scheduler}, seed "
            f"{self.case.seed}]: K={self.case.num_shards}, crashed "
            f"{list(self.case.crash_shards)} at round {self.case.crash_round}, "
            f"{'converged' if self.converged else 'DID NOT CONVERGE'} in "
            f"{self.rounds} round(s), nash={self.is_nash}{extra}"
        )


class ChaosRunner:
    """Execute fault scenarios against one game instance."""

    def __init__(
        self,
        game: RouteNavigationGame,
        *,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self.game = game
        self.resilience = resilience

    def run_case(self, case: ChaosCase) -> ChaosCaseResult:
        sim = DistributedSimulation(
            self.game,
            scheduler=case.scheduler,
            seed=case.seed,
            max_slots=case.max_slots,
            record_history=False,
            fault_plan=case.plan,
            resilience=self.resilience,
            check_invariants=True,
        )
        outcome = sim.run()
        assert sim.invariants is not None
        return ChaosCaseResult(
            case=case,
            outcome=outcome,
            violations=list(sim.invariants.violations),
        )

    def run(self, cases: list[ChaosCase]) -> ChaosReport:
        return ChaosReport(results=[self.run_case(c) for c in cases])

    def run_shard_case(self, case: ShardCrashCase) -> ShardCrashResult:
        """Crash shard workers of a serving session and demand Nash anyway.

        Imported lazily: :mod:`repro.serve` sits above the fault layer and
        a module-level import would be cyclic.
        """
        from repro.core.shm import os_segments
        from repro.serve.session import ServeSession

        segments_before = set(os_segments())
        with ServeSession.from_game(
            self.game,
            num_shards=case.num_shards,
            scheduler=case.scheduler,
            seed=case.seed,
            validate=True,
            processes=case.processes,
            pipeline=case.pipeline,
        ) as sess:
            converged = False
            rounds = 0
            for r in range(case.max_rounds):
                crash = (
                    case.crash_shards if r == case.crash_round else ()
                )
                rep = sess.run_round(crash_shards=crash)
                rounds = r + 1
                if rep.converged:
                    converged = True
                    break
            sess.check_quiescence()
            violations = list(sess.violations)
        # Leak check: the session (and its spec store) just shut down, so
        # every segment it published must be gone from the OS by now —
        # crashed-shard rounds included.
        leaked = sorted(set(os_segments()) - segments_before)
        if leaked:
            violations.append(
                InvariantViolation(
                    "shm_leak",
                    rounds,
                    f"shared-memory segments outlived the session: {leaked}",
                )
            )
        return ShardCrashResult(
            case=case,
            converged=converged,
            is_nash=sess.is_nash(),
            rounds=rounds,
            violations=violations,
        )


def bounded_fault_matrix(
    *,
    seeds: tuple[int, ...] = (0, 1),
    schedulers: tuple[str, ...] = ("suu", "puu"),
    plan_seed: int = 0,
) -> list[ChaosCase]:
    """The CI chaos envelope: loss, reorder, duplication, crashes, mixed.

    Every scenario stays inside the bounded-fault promise (loss
    <= ``MAX_LOSS``, reordering <= ``MAX_REORDER_SLOTS`` slots, at most
    ``MAX_CRASH_RATE`` of agents crashing once); the resilient protocol
    must converge to a confirmed Nash equilibrium on all of them.
    """
    data_types = ("TaskCountUpdate", "DecisionReport")
    control_types = ("UpdateRequest", "UpdateGrant", "DecisionReport", "Ack")
    scenarios: list[tuple[str, FaultPlan]] = [
        (
            "loss-light",
            FaultPlan(seed=plan_seed, loss={t: 0.1 for t in data_types}),
        ),
        (
            "loss-heavy",
            FaultPlan(
                seed=plan_seed,
                loss={t: MAX_LOSS for t in data_types + control_types},
            ),
        ),
        (
            "reorder",
            FaultPlan(
                seed=plan_seed,
                delay={
                    t: (0.5, MAX_REORDER_SLOTS)
                    for t in ("UpdateGrant", "DecisionReport", "TaskCountUpdate")
                },
            ),
        ),
        (
            "duplicate",
            FaultPlan(
                seed=plan_seed, duplicate={t: 0.3 for t in data_types}
            ),
        ),
        (
            "crash-restart",
            FaultPlan(seed=plan_seed, crash_rate=MAX_CRASH_RATE),
        ),
        (
            "mixed",
            FaultPlan(
                seed=plan_seed,
                loss={t: 0.2 for t in data_types},
                delay={"UpdateGrant": (0.3, MAX_REORDER_SLOTS)},
                duplicate={"DecisionReport": 0.2},
                crash_rate=MAX_CRASH_RATE,
            ),
        ),
    ]
    return [
        ChaosCase(
            name=name,
            plan=plan,
            scheduler=sched,
            seed=seed,
        )
        for name, plan in scenarios
        for sched in schedulers
        for seed in seeds
    ]
