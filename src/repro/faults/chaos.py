"""Chaos harness: run fault scenarios and assert the protocol invariants.

One :class:`ChaosCase` names a :class:`~repro.faults.plan.FaultPlan` plus
the scheduler and seed to run it under; :class:`ChaosRunner` executes
cases against a game through the hardened
:class:`~repro.distributed.simulator.DistributedSimulation` with the
:class:`~repro.faults.invariants.InvariantChecker` attached, and folds the
results into a :class:`ChaosReport`.  A case *passes* when the run
terminates with ``stop_reason == "converged"`` and no invariant was
violated — i.e. despite the injected faults the protocol still reached a
confirmed Nash equilibrium through potential-improving moves only.

:func:`bounded_fault_matrix` is the CI envelope (the ``chaos-smoke`` job):
message loss up to 0.3, reordering up to 3 slots, duplication, and up to
20% of agents crashing once, alone and combined.

:func:`serve_fault_matrix` is its serving-layer sibling (the
``chaos-serve`` job): :class:`ServeFaultCase` scenarios inject
*infrastructure* faults — worker SIGKILL, epoch stalls past the
supervisor deadline, shm attach failures, spec-publish failures, segment
corruption — through a :class:`~repro.faults.serveplan.ServeFaultPlan`,
and :meth:`ChaosRunner.run_serve_case` demands that the supervised
session still converges to a verified Nash whose boundary-ledger
potential equals the monolithic Eq. 8 (rtol 1e-9) **and** matches a
clean unfaulted reference run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.game import RouteNavigationGame
from repro.distributed.resilience import ResilienceConfig
from repro.distributed.simulator import DistributedOutcome, DistributedSimulation
from repro.faults.invariants import InvariantViolation
from repro.faults.plan import FaultPlan
from repro.faults.serveplan import ServeFaultPlan

if TYPE_CHECKING:
    from repro.serve.supervisor import SupervisorConfig

#: The bounded-fault envelope the resilient protocol is promised to
#: survive (acceptance criteria in docs/robustness.md).
MAX_LOSS = 0.3
MAX_REORDER_SLOTS = 3
MAX_CRASH_RATE = 0.2


@dataclass(frozen=True)
class ChaosCase:
    """One scenario: a fault plan under a scheduler with a protocol seed."""

    name: str
    plan: FaultPlan
    scheduler: str = "suu"
    seed: int = 0
    max_slots: int = 2_000


@dataclass
class ChaosCaseResult:
    """Outcome + invariant verdicts of one executed case."""

    case: ChaosCase
    outcome: DistributedOutcome
    violations: list[InvariantViolation]

    @property
    def ok(self) -> bool:
        return self.outcome.stop_reason == "converged" and not self.violations

    def describe(self) -> str:
        o = self.outcome
        status = "ok" if self.ok else "FAIL"
        extra = "" if not self.violations else f", {len(self.violations)} violation(s)"
        return (
            f"{status:4s} {self.case.name} [{self.case.scheduler}, seed "
            f"{self.case.seed}]: {o.stop_reason} in {o.decision_slots} slots, "
            f"{o.crashes} crash(es), {o.lease_revocations} revocation(s), "
            f"{o.redelivered_messages} redeliveries{extra}"
        )


@dataclass
class ChaosReport:
    """All case results of one matrix run."""

    results: list[ChaosCaseResult] = field(default_factory=list)

    @property
    def failures(self) -> list[ChaosCaseResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [r.describe() for r in self.results]
        lines.append(
            f"{len(self.results) - len(self.failures)}/{len(self.results)} "
            "cases passed"
        )
        return "\n".join(lines)

    def raise_if_failures(self) -> None:
        if self.failures:
            details = "\n".join(
                [r.describe() for r in self.failures]
                + [
                    f"    {v}"
                    for r in self.failures
                    for v in r.violations
                ]
            )
            raise AssertionError(
                f"{len(self.failures)} chaos case(s) failed:\n{details}"
            )


@dataclass(frozen=True)
class ShardCrashCase:
    """One serving-layer scenario: crash shard workers mid-session.

    The session runs ``crash_round`` rounds normally, then loses the
    named shards' epoch work (they resume from their last-sync snapshot)
    and must still reach global quiescence.  A case passes when the
    session converges, the state is a Nash equilibrium of the monolithic
    game, and no serving invariant (cross-shard counts, ledger potential
    identity, Nash-at-quiescence) was violated.
    """

    name: str
    num_shards: int
    crash_shards: tuple[int, ...]
    crash_round: int = 1
    scheduler: str = "suu"
    seed: int = 0
    max_rounds: int = 200
    #: worker-pool size (None = inline dispatch, the default); a pooled
    #: case additionally asserts that every shared-memory spec segment
    #: the session published was unlinked by the time it closed.
    processes: int | None = None
    #: overlap worker epochs with the dispatcher's boundary pass.
    pipeline: bool = False


@dataclass
class ShardCrashResult:
    """Outcome + invariant verdicts of one executed shard-crash case."""

    case: ShardCrashCase
    converged: bool
    is_nash: bool
    rounds: int
    violations: list[InvariantViolation]

    @property
    def ok(self) -> bool:
        return self.converged and self.is_nash and not self.violations

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        extra = "" if not self.violations else f", {len(self.violations)} violation(s)"
        return (
            f"{status:4s} {self.case.name} [{self.case.scheduler}, seed "
            f"{self.case.seed}]: K={self.case.num_shards}, crashed "
            f"{list(self.case.crash_shards)} at round {self.case.crash_round}, "
            f"{'converged' if self.converged else 'DID NOT CONVERGE'} in "
            f"{self.rounds} round(s), nash={self.is_nash}{extra}"
        )


@dataclass(frozen=True)
class ServeFaultCase:
    """One serving-infrastructure scenario: a supervised pooled session
    under a :class:`~repro.faults.serveplan.ServeFaultPlan`.

    A case passes when the session converges to a verified Nash, every
    serving invariant holds (cross-shard counts + the boundary-ledger
    potential identity against monolithic Eq. 8, rtol 1e-9, asserted at
    every sync in validate mode), the final potential equals a clean
    unfaulted reference run's, no shared-memory segment leaks — and, for
    ``expect_quarantine`` cases, at least one shard was quarantined *and*
    re-promoted before the end, reaching the same equilibrium.
    """

    name: str
    num_shards: int
    plan: ServeFaultPlan
    scheduler: str = "puu"
    seed: int = 0
    max_rounds: int = 200
    #: worker-pool size; defaults to one process per shard so injected
    #: stalls never queue other shards' epochs into spurious timeouts.
    processes: int | None = None
    pipeline: bool = False
    #: supervisor knobs (None = library defaults).
    supervisor: "SupervisorConfig | None" = None
    #: demand a quarantine + probe re-promotion cycle.
    expect_quarantine: bool = False


@dataclass
class ServeFaultResult:
    """Outcome + invariant verdicts of one executed serve-fault case."""

    case: ServeFaultCase
    converged: bool
    is_nash: bool
    rounds: int
    potential: float
    reference_potential: float
    potential_match: bool
    supervision: dict
    injected: dict
    violations: list[InvariantViolation]

    @property
    def ok(self) -> bool:
        quarantine_ok = not self.case.expect_quarantine or (
            self.supervision.get("quarantines", 0) >= 1
            and self.supervision.get("promotions", 0) >= 1
            and not self.supervision.get("quarantined_shards")
        )
        return (
            self.converged
            and self.is_nash
            and self.potential_match
            and quarantine_ok
            and not self.violations
        )

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        sup = self.supervision
        extra = "" if not self.violations else f", {len(self.violations)} violation(s)"
        return (
            f"{status:4s} {self.case.name} [{self.case.scheduler}, seed "
            f"{self.case.seed}]: K={self.case.num_shards}, "
            f"{'converged' if self.converged else 'DID NOT CONVERGE'} in "
            f"{self.rounds} round(s), nash={self.is_nash}, "
            f"potential_match={self.potential_match}, "
            f"injected={self.injected}, timeouts={sup.get('timeouts')}, "
            f"retries={sup.get('retries')}, "
            f"quarantines={sup.get('quarantines')}, "
            f"promotions={sup.get('promotions')}, "
            f"rebuilds={sup.get('pool_rebuilds')}{extra}"
        )


class ChaosRunner:
    """Execute fault scenarios against one game instance."""

    def __init__(
        self,
        game: RouteNavigationGame,
        *,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self.game = game
        self.resilience = resilience

    def run_case(self, case: ChaosCase) -> ChaosCaseResult:
        sim = DistributedSimulation(
            self.game,
            scheduler=case.scheduler,
            seed=case.seed,
            max_slots=case.max_slots,
            record_history=False,
            fault_plan=case.plan,
            resilience=self.resilience,
            check_invariants=True,
        )
        outcome = sim.run()
        assert sim.invariants is not None
        return ChaosCaseResult(
            case=case,
            outcome=outcome,
            violations=list(sim.invariants.violations),
        )

    def run(self, cases: list[ChaosCase]) -> ChaosReport:
        return ChaosReport(results=[self.run_case(c) for c in cases])

    def run_shard_case(self, case: ShardCrashCase) -> ShardCrashResult:
        """Crash shard workers of a serving session and demand Nash anyway.

        Imported lazily: :mod:`repro.serve` sits above the fault layer and
        a module-level import would be cyclic.
        """
        from repro.core.shm import os_segments
        from repro.serve.session import ServeSession

        segments_before = set(os_segments())
        with ServeSession.from_game(
            self.game,
            num_shards=case.num_shards,
            scheduler=case.scheduler,
            seed=case.seed,
            validate=True,
            processes=case.processes,
            pipeline=case.pipeline,
        ) as sess:
            converged = False
            rounds = 0
            for r in range(case.max_rounds):
                crash = (
                    case.crash_shards if r == case.crash_round else ()
                )
                rep = sess.run_round(crash_shards=crash)
                rounds = r + 1
                if rep.converged:
                    converged = True
                    break
            sess.check_quiescence()
            violations = list(sess.violations)
        # Leak check: the session (and its spec store) just shut down, so
        # every segment it published must be gone from the OS by now —
        # crashed-shard rounds included.
        leaked = sorted(set(os_segments()) - segments_before)
        if leaked:
            violations.append(
                InvariantViolation(
                    "shm_leak",
                    rounds,
                    f"shared-memory segments outlived the session: {leaked}",
                )
            )
        return ShardCrashResult(
            case=case,
            converged=converged,
            is_nash=sess.is_nash(),
            rounds=rounds,
            violations=violations,
        )

    def run_serve_case(self, case: ServeFaultCase) -> ServeFaultResult:
        """Run one supervised session under injected infrastructure faults.

        Imported lazily: :mod:`repro.serve` sits above the fault layer and
        a module-level import would be cyclic.  The clean reference is the
        same session inline (no pool, no faults) — supervision recovers by
        re-executing epochs from by-value state, so the faulted run must
        land on the identical equilibrium, not merely *an* equilibrium.
        """
        import numpy as np

        from repro.core.shm import os_segments
        from repro.serve.session import ServeSession

        def _session(**kwargs) -> ServeSession:
            return ServeSession.from_game(
                self.game,
                num_shards=case.num_shards,
                scheduler=case.scheduler,
                seed=case.seed,
                validate=True,
                **kwargs,
            )

        with _session() as ref:
            ref.run_to_convergence(max_rounds=case.max_rounds)
            reference_potential = ref.global_potential()

        segments_before = set(os_segments())
        processes = (
            case.processes if case.processes is not None else case.num_shards
        )
        with _session(
            processes=processes,
            pipeline=case.pipeline,
            supervisor_config=case.supervisor,
            fault_plan=case.plan,
        ) as sess:
            converged = False
            rounds = 0
            for _ in range(case.max_rounds):
                rep = sess.run_round()
                rounds += 1
                if not rep.converged:
                    continue
                converged = True
                sup = sess.supervision_report() or {}
                if not case.expect_quarantine or (
                    sup.get("promotions", 0) >= 1
                    and not sup.get("quarantined_shards")
                ):
                    # Quarantine cases keep running converged (no-op)
                    # rounds until the probe re-promotes the shard, so
                    # the *recovered* session is what we verify.
                    break
            sess.check_quiescence()
            violations = list(sess.violations)
            supervision = sess.supervision_report() or {}
            injected = (
                sess.fault_injector.summary()
                if sess.fault_injector is not None
                else {}
            )
            potential = sess.global_potential()
            is_nash = sess.is_nash()
        leaked = sorted(set(os_segments()) - segments_before)
        if leaked:
            violations.append(
                InvariantViolation(
                    "shm_leak",
                    rounds,
                    f"shared-memory segments outlived the session: {leaked}",
                )
            )
        return ServeFaultResult(
            case=case,
            converged=converged,
            is_nash=is_nash,
            rounds=rounds,
            potential=potential,
            reference_potential=reference_potential,
            potential_match=bool(
                np.isclose(potential, reference_potential, rtol=1e-9, atol=0.0)
            ),
            supervision=supervision,
            injected=injected,
            violations=violations,
        )

    def run_serve(self, cases: list[ServeFaultCase]) -> list[ServeFaultResult]:
        return [self.run_serve_case(c) for c in cases]


def bounded_fault_matrix(
    *,
    seeds: tuple[int, ...] = (0, 1),
    schedulers: tuple[str, ...] = ("suu", "puu"),
    plan_seed: int = 0,
) -> list[ChaosCase]:
    """The CI chaos envelope: loss, reorder, duplication, crashes, mixed.

    Every scenario stays inside the bounded-fault promise (loss
    <= ``MAX_LOSS``, reordering <= ``MAX_REORDER_SLOTS`` slots, at most
    ``MAX_CRASH_RATE`` of agents crashing once); the resilient protocol
    must converge to a confirmed Nash equilibrium on all of them.
    """
    data_types = ("TaskCountUpdate", "DecisionReport")
    control_types = ("UpdateRequest", "UpdateGrant", "DecisionReport", "Ack")
    scenarios: list[tuple[str, FaultPlan]] = [
        (
            "loss-light",
            FaultPlan(seed=plan_seed, loss={t: 0.1 for t in data_types}),
        ),
        (
            "loss-heavy",
            FaultPlan(
                seed=plan_seed,
                loss={t: MAX_LOSS for t in data_types + control_types},
            ),
        ),
        (
            "reorder",
            FaultPlan(
                seed=plan_seed,
                delay={
                    t: (0.5, MAX_REORDER_SLOTS)
                    for t in ("UpdateGrant", "DecisionReport", "TaskCountUpdate")
                },
            ),
        ),
        (
            "duplicate",
            FaultPlan(
                seed=plan_seed, duplicate={t: 0.3 for t in data_types}
            ),
        ),
        (
            "crash-restart",
            FaultPlan(seed=plan_seed, crash_rate=MAX_CRASH_RATE),
        ),
        (
            "mixed",
            FaultPlan(
                seed=plan_seed,
                loss={t: 0.2 for t in data_types},
                delay={"UpdateGrant": (0.3, MAX_REORDER_SLOTS)},
                duplicate={"DecisionReport": 0.2},
                crash_rate=MAX_CRASH_RATE,
            ),
        ),
    ]
    return [
        ChaosCase(
            name=name,
            plan=plan,
            scheduler=sched,
            seed=seed,
        )
        for name, plan in scenarios
        for sched in schedulers
        for seed in seeds
    ]


#: Injected stall length vs. the tight test deadline: the stall must dwarf
#: ``max(deadline_floor, p95 × multiplier)`` even on a loaded CI box, while
#: real (sub-millisecond) epochs stay far under the floor.
STALL_SECONDS = 0.5
STALL_DEADLINE_FLOOR = 0.05


def _stall_supervisor() -> "SupervisorConfig":
    from repro.serve.supervisor import SupervisorConfig

    return SupervisorConfig(
        deadline_floor=STALL_DEADLINE_FLOOR,
        min_history=2,
        max_retries=2,
        backoff_base=0.01,
        backoff_cap=0.05,
        probe_every=2,
    )


def serve_fault_matrix(
    *,
    seeds: tuple[int, ...] = (0,),
    plan_seed: int = 0,
    num_shards: int = 2,
) -> list[ServeFaultCase]:
    """The CI serving-chaos envelope (the ``chaos-serve`` job).

    Every infrastructure fault kind, alone and combined, on a supervised
    K-shard pooled session; every case must converge to a verified Nash
    matching the clean run's potential (and the ledger identity against
    monolithic Eq. 8 at every sync).  Dispatch-indexed events, seeded
    plans, and seeded supervisor behaviour make each case replayable.

    Stalls are scheduled at dispatch >= 1 because the supervisor arms its
    deadline only after ``min_history`` (= 2 = one K=2 round) epoch
    observations; the quarantine case stalls three consecutive dispatches
    of shard 0 (the round-2 dispatch plus both retries), exhausting
    ``max_retries`` and forcing the quarantine → probe → re-promote walk.
    """
    scenarios: list[tuple[str, ServeFaultPlan, dict]] = [
        (
            "worker-kill",
            ServeFaultPlan(seed=plan_seed, worker_kills=((0, 0),)),
            {},
        ),
        (
            "worker-kill-pipelined",
            ServeFaultPlan(seed=plan_seed, worker_kills=((0, 1),)),
            {"pipeline": True},
        ),
        (
            "epoch-stall",
            ServeFaultPlan(seed=plan_seed, stalls=((0, 1, STALL_SECONDS),)),
            {"supervisor": _stall_supervisor()},
        ),
        (
            "attach-failure",
            ServeFaultPlan(
                seed=plan_seed, attach_failures=((0, 0), (1, 0))
            ),
            {},
        ),
        (
            "publish-failure",
            ServeFaultPlan(seed=plan_seed, publish_failures=((0, 0),)),
            {},
        ),
        (
            "segment-corruption",
            ServeFaultPlan(seed=plan_seed, corruptions=((0, 0),)),
            {},
        ),
        (
            "quarantine-recovery",
            ServeFaultPlan(
                seed=plan_seed,
                stalls=(
                    (0, 1, STALL_SECONDS),
                    (0, 2, STALL_SECONDS),
                    (0, 3, STALL_SECONDS),
                ),
            ),
            {"supervisor": _stall_supervisor(), "expect_quarantine": True},
        ),
        (
            "mixed",
            ServeFaultPlan(
                seed=plan_seed,
                worker_kills=((1, 1),),
                stalls=((0, 2, STALL_SECONDS),),
                publish_failures=((0, 0),),
            ),
            {"supervisor": _stall_supervisor()},
        ),
    ]
    return [
        ServeFaultCase(
            name=name,
            num_shards=num_shards,
            plan=plan,
            seed=seed,
            **extra,
        )
        for name, plan, extra in scenarios
        for seed in seeds
    ]
