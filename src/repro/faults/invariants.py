"""Protocol invariants checked after every decision slot of a chaos run.

The potential-game structure (Eq. 8/11) guarantees convergence survives
bounded faults *provided the protocol recovers cleanly*; these checks are
that provision, executable:

- **potential_non_decreasing** — every *applied granted move* must not
  decrease the potential ``phi`` (Eq. 11: a granted move realises its
  ``tau > 0``; the hardened protocol's grant-time refresh, in-flight
  disjointness, and stale-move rejection exist exactly to keep this true
  under loss, delay, duplication, and crashes).
- **count_consistency** — the platform's incremental task counters must
  equal a recount of its decision view (symmetric-difference bookkeeping
  never drifts).
- **rejoin_reconciliation** — a rejoined agent's decision must match the
  platform's record (it re-synced from the snapshot, not from stale
  pre-crash state).
- **nash_at_quiescence** — a run that terminates via the confirmed sync
  round must sit at a Nash equilibrium of the alive users.
- **view_reconciliation** — at such a termination every alive user's
  local counts must equal the platform's (the reliable sync actually
  synchronised).

Violations are collected (not raised) so the
:class:`~repro.faults.chaos.ChaosRunner` can report every broken case of
a matrix; ``raise_if_violations`` turns them into one assertion for CI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.profit import candidate_profits
from repro.core.responses import IMPROVEMENT_EPS

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.distributed.platform_agent import PlatformAgent
    from repro.distributed.user_agent import UserAgent

#: Float-drift allowance on per-move potential deltas (granted moves are
#: strict improvements > IMPROVEMENT_EPS in exact arithmetic).
POTENTIAL_TOL = 1e-7


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant, with enough context to reproduce it."""

    invariant: str
    slot: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[slot {self.slot}] {self.invariant}: {self.detail}"


class InvariantChecker:
    """Replays the platform's accepted moves on a mirror profile."""

    def __init__(self, game: RouteNavigationGame, *, tol: float = POTENTIAL_TOL) -> None:
        self.game = game
        self.tol = tol
        self.violations: list[InvariantViolation] = []
        self.potential_history: list[float] = []
        self._profile: StrategyProfile | None = None
        self._log_pos = 0

    # ------------------------------------------------------------ lifecycle
    def start(self, decisions: dict[int, int]) -> None:
        """Mirror the platform's decision view right after the handshake."""
        from repro.core.potential import potential

        self._profile = StrategyProfile(
            self.game, [decisions[i] for i in self.game.users]
        )
        self.potential_history.append(potential(self._profile))

    def on_slot_end(
        self,
        slot: int,
        platform: "PlatformAgent",
        rejoined: list["UserAgent"] = (),
    ) -> None:
        """Consume newly accepted moves; check Eq. 11, counts, rejoins."""
        from repro.core.potential import potential, potential_delta

        assert self._profile is not None, "call start() after the handshake"
        log = platform.move_log
        for mslot, user, _old, new in log[self._log_pos:]:
            delta = potential_delta(self._profile, user, new)
            if delta < -self.tol:
                self.violations.append(
                    InvariantViolation(
                        "potential_non_decreasing",
                        mslot,
                        f"user {user} move -> route {new} changed phi by "
                        f"{delta:.3e}",
                    )
                )
            self._profile.move(user, new)
        self._log_pos = len(log)
        if not np.array_equal(self._profile.counts, platform.counts):
            self.violations.append(
                InvariantViolation(
                    "count_consistency",
                    slot,
                    "platform incremental counters diverged from a recount "
                    "of its decision view",
                )
            )
        for agent in rejoined:
            if agent.awaiting_snapshot:
                continue  # snapshot still in transit; checked when applied
            recorded = platform.decisions.get(agent.user_id)
            if agent.current_route != recorded:
                self.violations.append(
                    InvariantViolation(
                        "rejoin_reconciliation",
                        slot,
                        f"user {agent.user_id} rejoined on route "
                        f"{agent.current_route} but the platform records "
                        f"{recorded}",
                    )
                )
        self.potential_history.append(potential(self._profile))

    def at_end(
        self,
        stop_reason: str,
        platform: "PlatformAgent",
        agents: list["UserAgent"],
        alive_users: list[int],
    ) -> None:
        """Termination-time invariants (only binding when converged)."""
        assert self._profile is not None
        if stop_reason != "converged":
            return
        alive = set(alive_users)
        for i in alive_users:
            profits = candidate_profits(self._profile, i)
            gap = float(profits.max() - profits[self._profile.route_of(i)])
            if gap > IMPROVEMENT_EPS * 10:
                self.violations.append(
                    InvariantViolation(
                        "nash_at_quiescence",
                        -1,
                        f"user {i} still improves by {gap:.3e} at termination",
                    )
                )
        for agent in agents:
            if agent.user_id not in alive:
                continue
            recorded = platform.decisions.get(agent.user_id)
            if agent.current_route != recorded:
                self.violations.append(
                    InvariantViolation(
                        "view_reconciliation",
                        -1,
                        f"user {agent.user_id} ended on route "
                        f"{agent.current_route}, platform records {recorded}",
                    )
                )
                continue
            visible = {
                int(t): int(c)
                for t, c in zip(
                    platform._visible_tasks[agent.user_id].tolist(),
                    platform.counts[
                        platform._visible_tasks[agent.user_id]
                    ].tolist(),
                )
            }
            stale = {
                k: (agent.known_counts.get(k), v)
                for k, v in visible.items()
                if agent.known_counts.get(k) != v
            }
            if stale:
                self.violations.append(
                    InvariantViolation(
                        "view_reconciliation",
                        -1,
                        f"user {agent.user_id} terminated on stale counts "
                        f"{stale}",
                    )
                )

    # -------------------------------------------------------------- results
    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violations(self) -> None:
        if self.violations:
            lines = "\n".join(f"  - {v}" for v in self.violations)
            raise AssertionError(
                f"{len(self.violations)} protocol invariant violation(s):\n{lines}"
            )
