"""SVG rendering of a scenario (self-contained, no plotting dependency).

Produces a standalone ``.svg`` document: grey road segments, orange task
dots scaled by base reward, per-user colored recommended-route bundles
with the selected route drawn solid and bold (the Fig. 13 presentation).
"""

from __future__ import annotations

from pathlib import Path

from repro.core.profile import StrategyProfile
from repro.network.graph import RoadNetwork
from repro.tasks.task import TaskSet
from repro.utils.validation import require

_USER_COLORS = (
    "#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e", "#e6ab02",
)


def render_svg(
    net: RoadNetwork,
    tasks: TaskSet | None = None,
    profile: StrategyProfile | None = None,
    *,
    users: list[int] | None = None,
    size_px: int = 720,
    path: str | Path | None = None,
) -> str:
    """Return (and optionally write) the SVG document text."""
    require(size_px >= 100, "size_px too small")
    net.freeze()
    bbox = net.bounding_box()
    pad = 0.05 * max(bbox.width, bbox.height, 1e-9)
    span = max(bbox.width, bbox.height, 1e-9) + 2 * pad
    scale = size_px / span

    def sx(x: float) -> float:
        return (x - bbox.min_x + pad) * scale

    def sy(y: float) -> float:
        return size_px - (y - bbox.min_y + pad) * scale

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size_px}" '
        f'height="{size_px}" viewBox="0 0 {size_px} {size_px}">',
        f'<rect width="{size_px}" height="{size_px}" fill="#fafaf7"/>',
        '<g stroke="#c9c9c9" stroke-width="1">',
    ]
    seen: set[tuple[int, int]] = set()
    for e in net.edges():
        key = (min(e.u, e.v), max(e.u, e.v))
        if key in seen:
            continue
        seen.add(key)
        x1, y1 = net.node_xy(e.u)
        x2, y2 = net.node_xy(e.v)
        parts.append(
            f'<line x1="{sx(x1):.1f}" y1="{sy(y1):.1f}" '
            f'x2="{sx(x2):.1f}" y2="{sy(y2):.1f}"/>'
        )
    parts.append("</g>")

    if tasks is not None and len(tasks) > 0:
        max_reward = max(t.base_reward for t in tasks)
        parts.append('<g fill="#f28e2b" fill-opacity="0.85">')
        for t in tasks:
            radius = 2.0 + 3.0 * (t.base_reward / max_reward)
            parts.append(
                f'<circle cx="{sx(t.x):.1f}" cy="{sy(t.y):.1f}" r="{radius:.1f}"/>'
            )
        parts.append("</g>")

    if profile is not None:
        game = profile.game
        shown = users if users is not None else list(range(min(2, game.num_users)))
        for u in shown:
            color = _USER_COLORS[u % len(_USER_COLORS)]
            selected = profile.route_of(u)
            for j, route in enumerate(game.route_sets[u]):
                poly = route.polyline(net)
                points = " ".join(
                    f"{sx(float(x)):.1f},{sy(float(y)):.1f}" for x, y in poly
                )
                if j == selected:
                    style = f'stroke="{color}" stroke-width="3.5"'
                else:
                    style = (
                        f'stroke="{color}" stroke-width="1.5" '
                        'stroke-dasharray="6,4" stroke-opacity="0.6"'
                    )
                parts.append(f'<polyline fill="none" {style} points="{points}"/>')
            ox, oy = net.node_xy(game.route_sets[u][0].origin)
            dx, dy = net.node_xy(game.route_sets[u][0].destination)
            parts.append(
                f'<circle cx="{sx(ox):.1f}" cy="{sy(oy):.1f}" r="6" fill="{color}"/>'
            )
            parts.append(
                f'<rect x="{sx(dx) - 5:.1f}" y="{sy(dy) - 5:.1f}" width="10" '
                f'height="10" fill="{color}"/>'
            )
    parts.append("</svg>")
    doc = "\n".join(parts)
    if path is not None:
        Path(path).write_text(doc)
    return doc
