"""Self-contained HTML dashboard for run reports (no JS, no deps).

``repro-experiments dash run.json`` turns a ``repro.run_report/v1``
document (the CLI's ``--metrics-out`` output) into one static HTML page:
a config header, per-series sparkline charts (every time series in the
report — potential, Nash residual, per-shard epoch curves, runner
utilization), the hottest-spans table, and — when a
``repro.health_report/v1`` document is supplied alongside — the health
summary with its alert list.  Charts are the existing SVG line renderer
(:func:`repro.viz.charts.line_chart`) inlined into the page, so the file
is fully self-contained and mailable.
"""

from __future__ import annotations

import html
from pathlib import Path
from typing import Any

from repro.utils.validation import require
from repro.viz.charts import line_chart

__all__ = ["render_dashboard"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #222; max-width: 1200px; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #ddd; padding: 4px 10px; text-align: left; }
th { background: #f5f5f2; }
.charts { display: flex; flex-wrap: wrap; gap: 12px; }
.chart { border: 1px solid #eee; padding: 6px; }
.chart p { margin: 2px 4px; font-size: 0.8em; color: #555; }
.alert { color: #b00020; }
.ok { color: #1b7e3c; }
""".strip()


def _config_table(config: dict[str, Any]) -> str:
    rows = "".join(
        f"<tr><th>{html.escape(str(k))}</th>"
        f"<td>{html.escape(str(v))}</td></tr>"
        for k, v in config.items()
    )
    return f"<table>{rows}</table>"


def _series_label(labels: dict[str, str]) -> str:
    if not labels:
        return "value"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _timeseries_charts(timeseries: dict[str, list[dict]]) -> list[str]:
    """One sparkline chart per series family, one line per label set."""
    charts: list[str] = []
    for name, rows in sorted(timeseries.items()):
        series = {
            _series_label(row.get("labels", {})): [
                (float(t), float(v)) for t, v in row["samples"]
            ]
            for row in rows
            if row["samples"]
        }
        if not series:
            continue
        svg = line_chart(
            series, title=name, x_label="t", width=420, height=220
        )
        evicted = sum(int(row.get("evicted", 0)) for row in rows)
        note = (
            f"<p>window clipped: {evicted} samples evicted</p>"
            if evicted
            else ""
        )
        charts.append(f'<div class="chart">{svg}{note}</div>')
    return charts


def _span_table(spans: list[dict[str, Any]], limit: int = 12) -> str:
    header = (
        "<tr><th>span</th><th>count</th><th>total s</th>"
        "<th>mean ms</th><th>max ms</th></tr>"
    )
    rows = []
    for span in spans[:limit]:
        rows.append(
            "<tr>"
            f"<td>{html.escape(span['path'])}</td>"
            f"<td>{span['count']}</td>"
            f"<td>{span['total_seconds']:.3f}</td>"
            f"<td>{span['mean_seconds'] * 1e3:.3f}</td>"
            f"<td>{span['max_seconds'] * 1e3:.3f}</td>"
            "</tr>"
        )
    return f"<table>{header}{''.join(rows)}</table>"


def _health_section(health: dict[str, Any]) -> str:
    status = (
        '<span class="ok">healthy</span>'
        if health.get("healthy")
        else f'<span class="alert">{len(health.get("alerts", []))} alert(s)</span>'
    )
    residual = health.get("nash_residual", {})
    summary = {
        "status": status,
        "rounds observed": health.get("rounds_observed"),
        "shards": health.get("shards"),
        "load imbalance": health.get("load_imbalance"),
        "boundary fraction": health.get("boundary_fraction"),
        "churn backlog": health.get("churn_backlog"),
        "final Nash residual": residual.get("final"),
        "at equilibrium": residual.get("at_equilibrium"),
        "potential monotonic": health.get("potential", {}).get("monotonic"),
    }
    rows = "".join(
        f"<tr><th>{html.escape(str(k))}</th><td>{v if k == 'status' else html.escape(str(v))}</td></tr>"
        for k, v in summary.items()
    )
    parts = [f"<h2>Health</h2><table>{rows}</table>"]
    alerts = health.get("alerts", [])
    if alerts:
        alert_rows = "".join(
            f'<tr><td>{html.escape(a["kind"])}</td><td>{a["round"]}</td>'
            f'<td>{a["value"]:.4g}</td><td>{a["threshold"]:.4g}</td>'
            f'<td>{html.escape(a["message"])}</td></tr>'
            for a in alerts
        )
        parts.append(
            "<table><tr><th>kind</th><th>round</th><th>value</th>"
            f"<th>threshold</th><th>message</th></tr>{alert_rows}</table>"
        )
    charts: dict[str, list[tuple[float, float]]] = {}
    if residual.get("series"):
        charts["residual"] = [(float(t), float(v)) for t, v in residual["series"]]
    if residual.get("envelope"):
        charts["envelope"] = [
            (float(t), float(v)) for t, v in residual["envelope"]
        ]
    if charts:
        svg = line_chart(
            charts, title="Nash residual", x_label="round",
            width=420, height=220,
        )
        parts.append(f'<div class="charts"><div class="chart">{svg}</div></div>')
    return "".join(parts)


def render_dashboard(
    report: dict[str, Any],
    *,
    health: dict[str, Any] | None = None,
    path: str | Path | None = None,
) -> str:
    """Render a run report (and optional health report) as one HTML page.

    Returns the document text; optionally writes it to ``path``.
    """
    require(isinstance(report, dict), "run report must be a dict")
    experiment = report.get("experiment", "run")
    title = f"repro dashboard — {experiment}"
    parts = [
        "<!DOCTYPE html>",
        f'<html lang="en"><head><meta charset="utf-8"><title>{html.escape(title)}</title>',
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>schema {html.escape(str(report.get('schema')))} · "
        f"wall {report.get('wall_seconds', 0.0):.2f}s</p>",
    ]
    config = report.get("config") or {}
    if config:
        parts.append("<h2>Configuration</h2>")
        parts.append(_config_table(config))
    if health is not None:
        parts.append(_health_section(health))
    timeseries = report.get("timeseries") or {}
    charts = _timeseries_charts(timeseries)
    if charts:
        parts.append("<h2>Time series</h2>")
        parts.append(f'<div class="charts">{"".join(charts)}</div>')
    spans = report.get("spans") or []
    if spans:
        parts.append("<h2>Hottest spans</h2>")
        parts.append(_span_table(spans))
    parts.append("</body></html>")
    doc = "\n".join(parts)
    if path is not None:
        Path(path).write_text(doc, encoding="utf-8")
    return doc
