"""Rendering: route maps (Fig. 13 analogue), SVG line charts for the
experiment series (Figs. 4-12 analogues), and the static HTML run
dashboard — no plotting dependency."""

from repro.viz.ascii_map import render_ascii
from repro.viz.charts import chart_from_table, line_chart
from repro.viz.dashboard import render_dashboard
from repro.viz.svg import render_svg

__all__ = [
    "chart_from_table",
    "line_chart",
    "render_ascii",
    "render_dashboard",
    "render_svg",
]
