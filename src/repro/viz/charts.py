"""Dependency-free SVG line charts for experiment result tables.

The evaluation figures are line/surface plots; this renderer turns a
:class:`~repro.experiments.results.ResultTable` into a standalone SVG so
the repository can draw its Figs. 4-12 analogues without matplotlib.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.experiments.results import ResultTable
from repro.utils.validation import require

_SERIES_COLORS = (
    "#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e",
    "#e6ab02", "#a6761d", "#666666",
)


def _nice_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw_step = (hi - lo) / max(n - 1, 1)
    mag = 10 ** np.floor(np.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * mag
        if step >= raw_step:
            break
    # Snap the axis to the tick grid so the data range is fully covered.
    start = np.floor(lo / step) * step
    end = np.ceil(hi / step) * step
    ticks = [float(start + i * step) for i in range(int(round((end - start) / step)) + 1)]
    return ticks if len(ticks) >= 2 else [lo, hi]


def line_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    width: int = 640,
    height: int = 420,
    path: str | Path | None = None,
) -> str:
    """Render named ``(x, y)`` series as an SVG line chart.

    Returns the document text; optionally writes it to ``path``.
    """
    require(bool(series), "no series to plot")
    require(width >= 200 and height >= 150, "canvas too small")
    margin_l, margin_r, margin_t, margin_b = 62, 16, 34, 46
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b

    all_pts = [p for pts in series.values() for p in pts]
    require(bool(all_pts), "series contain no points")
    xs = np.array([p[0] for p in all_pts], dtype=float)
    ys = np.array([p[1] for p in all_pts], dtype=float)
    x_ticks = _nice_ticks(float(xs.min()), float(xs.max()))
    y_ticks = _nice_ticks(float(ys.min()), float(ys.max()))
    x_lo, x_hi = x_ticks[0], x_ticks[-1]
    y_lo, y_hi = y_ticks[0], y_ticks[-1]

    def sx(x: float) -> float:
        return margin_l + (x - x_lo) / max(x_hi - x_lo, 1e-12) * plot_w

    def sy(y: float) -> float:
        return margin_t + plot_h - (y - y_lo) / max(y_hi - y_lo, 1e-12) * plot_h

    def fmt(v: float) -> str:
        return f"{v:g}"

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    # Grid + axis ticks.
    for t in x_ticks:
        x = sx(t)
        parts.append(
            f'<line x1="{x:.1f}" y1="{margin_t}" x2="{x:.1f}" '
            f'y2="{margin_t + plot_h}" stroke="#eeeeee"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{margin_t + plot_h + 16}" '
            f'text-anchor="middle">{fmt(t)}</text>'
        )
    for t in y_ticks:
        y = sy(t)
        parts.append(
            f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
            f'y2="{y:.1f}" stroke="#eeeeee"/>'
        )
        parts.append(
            f'<text x="{margin_l - 6}" y="{y + 4:.1f}" '
            f'text-anchor="end">{fmt(t)}</text>'
        )
    # Axes frame.
    parts.append(
        f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
        f'height="{plot_h}" fill="none" stroke="#333333"/>'
    )
    # Series.
    for idx, (name, pts) in enumerate(series.items()):
        color = _SERIES_COLORS[idx % len(_SERIES_COLORS)]
        ordered = sorted(pts, key=lambda p: p[0])
        poly = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in ordered)
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'points="{poly}"/>'
        )
        for x, y in ordered:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        # Legend entry.
        lx = margin_l + 10
        ly = margin_t + 14 + 15 * idx
        parts.append(
            f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 18}" y2="{ly - 4}" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        parts.append(f'<text x="{lx + 24}" y="{ly}">{name}</text>')
    # Labels.
    if title:
        parts.append(
            f'<text x="{width / 2:.0f}" y="20" text-anchor="middle" '
            f'font-size="14">{title}</text>'
        )
    if x_label:
        parts.append(
            f'<text x="{margin_l + plot_w / 2:.0f}" y="{height - 8}" '
            f'text-anchor="middle">{x_label}</text>'
        )
    if y_label:
        parts.append(
            f'<text x="14" y="{margin_t + plot_h / 2:.0f}" '
            f'text-anchor="middle" '
            f'transform="rotate(-90 14 {margin_t + plot_h / 2:.0f})">'
            f"{y_label}</text>"
        )
    parts.append("</svg>")
    doc = "\n".join(parts)
    if path is not None:
        Path(path).write_text(doc)
    return doc


def chart_from_table(
    table: ResultTable,
    *,
    x: str,
    y: str,
    series: str | None = None,
    title: str = "",
    path: str | Path | None = None,
    **kwargs,
) -> str:
    """Plot column ``y`` against column ``x``, one line per ``series`` value.

    The typical call renders a paper figure from an aggregated experiment
    table, e.g. ``chart_from_table(fig4_table, x="n_users",
    y="decision_slots_mean", series="algorithm")``.
    """
    require(len(table) > 0, "empty result table")
    groups: dict[str, list[tuple[float, float]]] = {}
    for row in table:
        key = str(row[series]) if series is not None else y
        groups.setdefault(key, []).append((float(row[x]), float(row[y])))
    return line_chart(
        groups, title=title, x_label=x, y_label=y, path=path, **kwargs
    )
