"""Terminal rendering of a scenario: network, tasks, and chosen routes.

The paper's Fig. 13 shows Google-Maps screenshots with recommended routes
and the selected one highlighted; this is the text-mode analogue: road
nodes as dots, tasks as ``*``, each displayed user's selected route as a
digit trail with ``O``/``D`` endpoints.
"""

from __future__ import annotations

from repro.core.profile import StrategyProfile
from repro.geometry.polyline import resample_polyline
from repro.network.graph import RoadNetwork
from repro.tasks.task import TaskSet
from repro.utils.validation import require


def render_ascii(
    net: RoadNetwork,
    tasks: TaskSet | None = None,
    profile: StrategyProfile | None = None,
    *,
    users: list[int] | None = None,
    width: int = 72,
    height: int = 28,
) -> str:
    """Render the scenario into a character grid.

    Later layers overwrite earlier ones: network < tasks < routes <
    endpoints.  ``users`` limits which users' selected routes are drawn
    (default: the first two, matching Fig. 13's two-user presentation).
    """
    require(width >= 10 and height >= 5, "canvas too small")
    net.freeze()
    bbox = net.bounding_box()
    span_x = max(bbox.width, 1e-9)
    span_y = max(bbox.height, 1e-9)

    def to_cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - bbox.min_x) / span_x * (width - 1))
        row = int((bbox.max_y - y) / span_y * (height - 1))
        return min(max(row, 0), height - 1), min(max(col, 0), width - 1)

    grid = [[" "] * width for _ in range(height)]

    # Layer 1: road nodes.
    for x, y in net.coords:
        r, c = to_cell(float(x), float(y))
        grid[r][c] = "."

    # Layer 2: tasks.
    if tasks is not None:
        for t in tasks:
            r, c = to_cell(t.x, t.y)
            grid[r][c] = "*"

    # Layer 3: selected routes.
    if profile is not None:
        game = profile.game
        shown = users if users is not None else list(range(min(2, game.num_users)))
        cell_step = min(span_x / width, span_y / height)
        for u in shown:
            route = game.route_sets[u][profile.route_of(u)]
            poly = route.polyline(net)
            dense = resample_polyline(poly, max(cell_step, 1e-6))
            mark = str(u % 10)
            for x, y in dense:
                r, c = to_cell(float(x), float(y))
                grid[r][c] = mark
            r, c = to_cell(*map(float, poly[0]))
            grid[r][c] = "O"
            r, c = to_cell(*map(float, poly[-1]))
            grid[r][c] = "D"

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = "  . road node   * task   <digit> user route   O origin   D destination"
    return f"{border}\n{body}\n{border}\n{legend}"
