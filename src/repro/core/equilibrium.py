"""Nash-equilibrium predicates (Definition 2) and deviation diagnostics."""

from __future__ import annotations

import numpy as np

from repro.core.profile import StrategyProfile
from repro.core.profit import candidate_profits
from repro.core.responses import IMPROVEMENT_EPS


def epsilon_nash_gap(profile: StrategyProfile) -> float:
    """Largest unilateral profit improvement available to any user.

    Zero (within float tolerance) iff the profile is a Nash equilibrium;
    positive values measure how far from equilibrium the profile is
    (an ``epsilon``-Nash profile has gap <= epsilon).
    """
    worst = 0.0
    for i in profile.game.users:
        profits = candidate_profits(profile, i)
        gap = float(profits.max() - profits[profile.route_of(i)])
        worst = max(worst, gap)
    return worst


def is_nash_equilibrium(
    profile: StrategyProfile, *, tolerance: float = IMPROVEMENT_EPS
) -> bool:
    """True iff no user can unilaterally improve by more than ``tolerance``."""
    return epsilon_nash_gap(profile) <= tolerance


def improving_users(profile: StrategyProfile) -> list[int]:
    """Users with a non-empty better-response set (would send update requests)."""
    out = []
    for i in profile.game.users:
        profits = candidate_profits(profile, i)
        if float(profits.max()) > float(profits[profile.route_of(i)]) + IMPROVEMENT_EPS:
            out.append(i)
    return out


def deviation_report(profile: StrategyProfile) -> list[tuple[int, int, float]]:
    """All strictly-improving unilateral deviations as ``(user, route, gain)``.

    Sorted by decreasing gain; empty at a Nash equilibrium.  Used by tests
    and by the CORN equilibrium-gap diagnostics of Table 4.
    """
    moves: list[tuple[int, int, float]] = []
    for i in profile.game.users:
        profits = candidate_profits(profile, i)
        current = float(profits[profile.route_of(i)])
        for j in np.flatnonzero(profits > current + IMPROVEMENT_EPS):
            moves.append((i, int(j), float(profits[j] - current)))
    moves.sort(key=lambda m: -m[2])
    return moves
