"""Game core: the paper's primary contribution.

Multi-user route-navigation game (Section 3), weighted potential function
(Theorem 2), better/best responses (Definition 1), Nash-equilibrium checks
(Definition 2), convergence bound (Theorem 4), Price-of-Anarchy bounds
(Theorem 5), and the NP-hardness reduction (Theorem 1).
"""

from repro.core.weights import PlatformWeights, UserWeights, E_MAX_DEFAULT, E_MIN_DEFAULT
from repro.core.arrays import GameArrays
from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.profit import (
    all_profits,
    candidate_profits,
    profit_of_user,
    total_profit,
)
from repro.core.potential import potential, potential_delta
from repro.core.responses import (
    best_response_set,
    best_update,
    better_responses,
    batch_best_updates,
    batch_candidate_profits,
    greedy_disjoint,
    single_best_update,
    ProposalBatch,
    UpdateProposal,
)
from repro.core.equilibrium import (
    epsilon_nash_gap,
    improving_users,
    is_nash_equilibrium,
)
from repro.core.convergence import convergence_slot_bound
from repro.core.enumeration import EquilibriumAnalysis, enumerate_equilibria
from repro.core.poa import (
    empirical_poa_ratio,
    poa_lower_bound,
    special_case_poa_bounds,
)
from repro.core.nphardness import (
    SetCoverInstance,
    game_from_set_cover,
    greedy_set_cover_value,
)

__all__ = [
    "E_MAX_DEFAULT",
    "E_MIN_DEFAULT",
    "EquilibriumAnalysis",
    "GameArrays",
    "PlatformWeights",
    "ProposalBatch",
    "RouteNavigationGame",
    "SetCoverInstance",
    "StrategyProfile",
    "UpdateProposal",
    "UserWeights",
    "all_profits",
    "batch_best_updates",
    "batch_candidate_profits",
    "best_response_set",
    "best_update",
    "better_responses",
    "candidate_profits",
    "greedy_disjoint",
    "convergence_slot_bound",
    "empirical_poa_ratio",
    "enumerate_equilibria",
    "epsilon_nash_gap",
    "game_from_set_cover",
    "greedy_set_cover_value",
    "improving_users",
    "is_nash_equilibrium",
    "poa_lower_bound",
    "potential",
    "single_best_update",
    "potential_delta",
    "profit_of_user",
    "special_case_poa_bounds",
    "total_profit",
]
