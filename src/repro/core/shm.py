"""Buffer-table protocol and shared-memory transport for compiled arrays.

The serving layer ships :class:`~repro.core.arrays.GameArrays` across
process boundaries.  Pickling copies every buffer on every send; this
module makes the immutable array state cross **exactly once** instead:

- A :class:`BufferTable` is an explicit manifest of named ndarray views —
  ``(name, dtype, shape, offset)`` per buffer — over one contiguous block,
  with every offset 64-byte aligned.  The table itself is tiny and
  picklable; the block is raw bytes.
- A :class:`SharedBlock` wraps :class:`multiprocessing.shared_memory.SharedMemory`
  with explicit ownership: the *creator* owns the segment (its cleanup
  unlinks), an *attacher* only maps it (its cleanup just closes).  Both
  register a :func:`weakref.finalize` callback, so segments are reclaimed
  on garbage collection, interpreter exit, **and** — via the stdlib
  resource tracker, which stays registered on the creator side — when the
  creating process dies without running Python cleanup at all.

Reading a buffer back is ``np.frombuffer`` over the mapped block: zero
copies, and the views are marked read-only so a worker cannot silently
mutate state it shares with every sibling.
"""

from __future__ import annotations

import os
import uuid
import weakref
from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.utils.validation import require

__all__ = [
    "ALIGN",
    "BufferSpec",
    "BufferTable",
    "SharedBlock",
    "SEGMENT_PREFIX",
    "active_segments",
    "compact_ints",
    "os_segments",
]


def compact_ints(arr: np.ndarray) -> np.ndarray:
    """Lossless wire form of an integer array: int32 when the values fit.

    Snapshot payloads are dominated by ``intp`` index/count vectors whose
    values are tiny (route indices, task ids, counts); halving their width
    on the wire is free — consumers restore ``intp`` on import, so
    in-memory semantics (and trajectories) are untouched.  Always returns
    a fresh array (snapshots must not alias live state).
    """
    if arr.dtype.kind not in "iu" or arr.itemsize <= 4 or arr.size == 0:
        return arr.copy()
    lo, hi = int(arr.min()), int(arr.max())
    if np.iinfo(np.int32).min < lo and hi < np.iinfo(np.int32).max:
        return arr.astype(np.int32)
    return arr.copy()


#: Every buffer offset is a multiple of this (cache-line / SIMD friendly,
#: and satisfies any numpy dtype's alignment requirement).
ALIGN = 64

#: All segments this package creates carry this name prefix, so leaked
#: segments are attributable (and leak checks can scan for them).
SEGMENT_PREFIX = "repro-shm-"


def _align(n: int) -> int:
    return (n + ALIGN - 1) // ALIGN * ALIGN


@dataclass(frozen=True)
class BufferSpec:
    """One named ndarray inside a contiguous block."""

    name: str
    dtype: str  # numpy dtype string, e.g. "<i8" / "<f8" (byte-order explicit)
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class BufferTable:
    """Manifest of named ndarrays laid out in one contiguous block.

    The table is the *schema*; the block is the *data*.  Ship the table by
    pickle (a few hundred bytes), ship the block by shared memory (once),
    and every consumer reconstructs zero-copy views.
    """

    buffers: tuple[BufferSpec, ...]
    total_bytes: int

    @classmethod
    def build(cls, named: Mapping[str, np.ndarray]) -> "BufferTable":
        """Lay out ``named`` arrays (insertion order) with aligned offsets."""
        specs: list[BufferSpec] = []
        cursor = 0
        for name, arr in named.items():
            a = np.ascontiguousarray(arr)
            spec = BufferSpec(
                name=name,
                dtype=a.dtype.str,
                shape=tuple(int(d) for d in a.shape),
                offset=cursor,
            )
            specs.append(spec)
            cursor = _align(cursor + spec.nbytes)
        return cls(buffers=tuple(specs), total_bytes=cursor)

    def __iter__(self) -> Iterator[BufferSpec]:
        return iter(self.buffers)

    def spec(self, name: str) -> BufferSpec:
        for s in self.buffers:
            if s.name == name:
                return s
        raise KeyError(name)

    # -------------------------------------------------------------- transport
    def pack_into(
        self, buf, named: Mapping[str, np.ndarray], *, base: int = 0
    ) -> None:
        """Copy every named array into ``buf`` at its manifest offset."""
        for spec in self.buffers:
            src = np.ascontiguousarray(named[spec.name], dtype=np.dtype(spec.dtype))
            require(
                tuple(src.shape) == spec.shape,
                f"buffer {spec.name!r} shape {src.shape} != manifest {spec.shape}",
            )
            n = int(np.prod(spec.shape, dtype=np.int64))
            dst = np.frombuffer(
                buf, dtype=np.dtype(spec.dtype), count=n, offset=base + spec.offset
            )
            dst[:] = src.reshape(-1)

    def views(
        self, buf, *, base: int = 0, writable: bool = False
    ) -> dict[str, np.ndarray]:
        """Zero-copy ndarray views over ``buf`` (read-only by default)."""
        out: dict[str, np.ndarray] = {}
        for spec in self.buffers:
            n = int(np.prod(spec.shape, dtype=np.int64))
            v = np.frombuffer(
                buf, dtype=np.dtype(spec.dtype), count=n, offset=base + spec.offset
            ).reshape(spec.shape)
            if not writable:
                v.flags.writeable = False
            out[spec.name] = v
        return out


# --------------------------------------------------------------------- blocks

# Names of segments created (and not yet unlinked) by this process — the
# in-process source of truth for leak checks.
_LIVE_OWNED: set[str] = set()


def _quiet_close(shm) -> None:
    try:
        shm.close()
    except BufferError:
        # Numpy views still hold exported pointers into the mapping.  The
        # exported-buffer chain keeps the mmap object alive, so the memory
        # is reclaimed exactly when the last view dies — detach this
        # handle (closing its fd) so ``SharedMemory.__del__`` does not
        # retry the close and spam "Exception ignored" at GC time.
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
            shm._fd = -1
        shm._mmap = None
        shm._buf = None


def _cleanup_owner(shm, name: str) -> None:
    # Unlink must happen even if close() fails because numpy views are
    # still alive: on POSIX unlinking only removes the name, existing
    # mappings stay valid until their holders drop them.
    _quiet_close(shm)
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    _LIVE_OWNED.discard(name)


def _cleanup_attached(shm) -> None:
    _quiet_close(shm)


class SharedBlock:
    """One shared-memory segment with explicit create/attach ownership."""

    def __init__(self, shm, *, owner: bool) -> None:
        self._shm = shm
        self.owner = owner
        self.name: str = shm.name
        if owner:
            _LIVE_OWNED.add(self.name)
            self._finalizer = weakref.finalize(self, _cleanup_owner, shm, self.name)
        else:
            self._finalizer = weakref.finalize(self, _cleanup_attached, shm)

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, nbytes: int, *, name: str | None = None) -> "SharedBlock":
        """Create (and own) a fresh segment of at least ``nbytes`` bytes."""
        from multiprocessing import shared_memory

        if name is None:
            name = f"{SEGMENT_PREFIX}{os.getpid():x}-{uuid.uuid4().hex[:12]}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, int(nbytes))
        )
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedBlock":
        """Map an existing segment without taking ownership.

        The stdlib resource tracker registers *every* ``SharedMemory``
        construction for unlink-at-exit (bpo-38119).  The popular
        workaround — unregister on attach — is **wrong** here: pool
        workers are forked, so they inherit the creator's tracker daemon,
        their duplicate registration is a set-add no-op, and an
        unregister would erase the *creator's* entry (losing crash
        cleanup, and making the owner's eventual unlink a double
        unregister that the tracker logs as a KeyError).  So attachers
        leave the registration alone.  On spawn platforms a worker's own
        tracker may then unlink the segment when the worker exits — in
        this architecture segment lifetime is bounded by pool lifetime
        anyway, and the owner's unlink tolerates ``FileNotFoundError``.
        (Python 3.13+ has ``track=False`` for a precise fix.)
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, owner=False)

    @property
    def buf(self):
        return self._shm.buf

    @property
    def size(self) -> int:
        return self._shm.size

    def close(self) -> None:
        """Release this handle (idempotent; owners also unlink)."""
        if self._finalizer.alive:
            self._finalizer()

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def __enter__(self) -> "SharedBlock":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self.owner else "attached"
        return f"SharedBlock({self.name!r}, {role}, {self.size}B)"


# ---------------------------------------------------------------- leak checks
def active_segments() -> list[str]:
    """Segments created by this process and not yet unlinked."""
    return sorted(_LIVE_OWNED)


def os_segments() -> list[str]:
    """This package's segments currently visible to the OS (Linux only).

    Scans ``/dev/shm`` for :data:`SEGMENT_PREFIX` names — the assertion
    surface for leak checks.  Returns ``[]`` where the filesystem view of
    POSIX shared memory is unavailable.
    """
    try:
        return sorted(
            n for n in os.listdir("/dev/shm") if n.startswith(SEGMENT_PREFIX)
        )
    except OSError:
        return []
