"""Profit functions (Eq. 2) and their vectorized what-if evaluation.

``P_i(s) = alpha_i * sum_{k in L_{s_i}} w_k(n_k(s)) / n_k(s)
         - beta_i * d(s_i) - gamma_i * b(s_i)``

The cost part ``beta_i d + gamma_i b`` is precomputed per route in
:class:`~repro.core.game.RouteNavigationGame` (``route_cost``); this module
supplies the sharing-aware reward part.
"""

from __future__ import annotations

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile


def _route_reward(
    game: RouteNavigationGame, user: int, route: int, counts_with_user: np.ndarray
) -> float:
    """Reward sum ``sum_{k in L_r} w_k(n_k)/n_k`` given counts that already
    include this user on route ``route``'s tasks."""
    ids = game.covered_tasks(user, route)
    if ids.size == 0:
        return 0.0
    n = counts_with_user[ids].astype(float)
    a = game.tasks.base_rewards[ids]
    mu = game.tasks.reward_increments[ids]
    return float(np.sum((a + mu * np.log(n)) / n))


def reward_of_user(profile: StrategyProfile, user: int) -> float:
    """The (alpha-weighted-before) raw reward term of ``user`` under ``profile``."""
    return _route_reward(
        profile.game, user, profile.route_of(user), profile.counts
    )


def profit_of_user(profile: StrategyProfile, user: int) -> float:
    """``P_i(s)`` for the profile's current strategy of ``user``."""
    game = profile.game
    route = profile.route_of(user)
    reward = _route_reward(game, user, route, profile.counts)
    return game.user_weights[user].alpha * reward - float(
        game.route_cost[user][route]
    )


def all_profits(profile: StrategyProfile) -> np.ndarray:
    """Vector of ``P_i(s)`` for every user.

    The per-task shares ``w_k(n_k)/n_k`` are computed once for the whole
    task set and gathered per user, so the cost is O(|L| + sum |L_{s_i}|).
    """
    game = profile.game
    shares = game.tasks.shares(profile.counts)
    out = np.empty(game.num_users)
    for i in game.users:
        route = profile.route_of(i)
        ids = game.covered_tasks(i, route)
        reward = float(shares[ids].sum()) if ids.size else 0.0
        out[i] = game.user_weights[i].alpha * reward - float(
            game.route_cost[i][route]
        )
    return out


def total_profit(profile: StrategyProfile) -> float:
    """``sum_i P_i(s)`` — the centralized objective (Eq. 5)."""
    return float(all_profits(profile).sum())


def candidate_profits(profile: StrategyProfile, user: int) -> np.ndarray:
    """Profit ``user`` would get from each of its routes, others fixed.

    Entry ``j`` is ``P_i(r_j, s_{-i})``.  The user's own contribution is
    removed from the counters once, then each candidate route is evaluated
    against ``n_k(s_{-i}) + 1`` on its own tasks — including the current
    route, whose entry therefore equals :func:`profit_of_user`.
    """
    game = profile.game
    counts_wo = profile.counts_without(user)
    alpha = game.user_weights[user].alpha
    costs = game.route_cost[user]
    out = np.empty(game.num_routes(user))
    base = game.tasks.base_rewards
    incs = game.tasks.reward_increments
    for j in range(game.num_routes(user)):
        ids = game.covered_tasks(user, j)
        if ids.size == 0:
            out[j] = -float(costs[j])
            continue
        n = counts_wo[ids].astype(float) + 1.0
        reward = float(np.sum((base[ids] + incs[ids] * np.log(n)) / n))
        out[j] = alpha * reward - float(costs[j])
    return out


def profit_if_moved(profile: StrategyProfile, user: int, route: int) -> float:
    """``P_i(route, s_{-i})`` without mutating the profile."""
    return float(candidate_profits(profile, user)[route])
