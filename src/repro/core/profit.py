"""Profit functions (Eq. 2) and their vectorized what-if evaluation.

``P_i(s) = alpha_i * sum_{k in L_{s_i}} w_k(n_k(s)) / n_k(s)
         - beta_i * d(s_i) - gamma_i * b(s_i)``

All kernels run on the game's compiled flat CSR layout
(:class:`~repro.core.arrays.GameArrays`): the cost part
``beta_i d + gamma_i b`` is a flat per-route vector, and the sharing-aware
reward part is a gather + segmented reduction — no per-route or per-task
Python loops on the hot path.  Scalar reference implementations live in
:mod:`repro.core.reference` and are used only by tests and benchmarks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.obs import counter as _obs_counter
from repro.obs import histogram as _obs_histogram
from repro.obs.runtime import RUNTIME as _OBS


def _route_reward(
    game: RouteNavigationGame, user: int, route: int, counts_with_user: np.ndarray
) -> float:
    """Reward sum ``sum_{k in L_r} w_k(n_k)/n_k`` given counts that already
    include this user on route ``route``'s tasks."""
    ids = game.covered_tasks(user, route)
    if ids.size == 0:
        return 0.0
    n = counts_with_user[ids].astype(float)
    a = game.tasks.base_rewards[ids]
    mu = game.tasks.reward_increments[ids]
    return float(np.sum((a + mu * np.log(n)) / n))


def reward_of_user(profile: StrategyProfile, user: int) -> float:
    """The (alpha-weighted-before) raw reward term of ``user`` under ``profile``."""
    return _route_reward(
        profile.game, user, profile.route_of(user), profile.counts
    )


def profit_of_user(profile: StrategyProfile, user: int) -> float:
    """``P_i(s)`` for the profile's current strategy of ``user``."""
    game = profile.game
    route = profile.route_of(user)
    reward = _route_reward(game, user, route, profile.counts)
    return game.user_weights[user].alpha * reward - float(
        game.route_cost[user][route]
    )


def all_profits(profile: StrategyProfile) -> np.ndarray:
    """Vector of ``P_i(s)`` for every user.

    The per-task shares ``w_k(n_k)/n_k`` are computed once for the whole
    task set, then every user's chosen-route segment is gathered and
    reduced in one pass over the CSR layout — O(|L| + sum |L_{s_i}|) with
    no per-user Python loop.  The gather/reduce core dispatches to the
    active kernel backend (:mod:`repro.core.backend`).
    """
    game = profile.game
    ga = game.arrays
    shares = game.tasks.shares(profile.counts)
    return ga.backend.chosen_profits(ga, profile.choices, shares)


def total_profit(profile: StrategyProfile) -> float:
    """``sum_i P_i(s)`` — the centralized objective (Eq. 5)."""
    return float(all_profits(profile).sum())


def candidate_profits(profile: StrategyProfile, user: int) -> np.ndarray:
    """Profit ``user`` would get from each of its routes, others fixed.

    Entry ``j`` is ``P_i(r_j, s_{-i})``.  The user's own contribution is
    removed from the counters once, then every candidate route is evaluated
    against ``n_k(s_{-i}) + 1`` in a single gather + segmented reduction
    over the user's CSR slice — including the current route, whose entry
    therefore equals :func:`profit_of_user`.

    This is the *single-user* entry point (distributed agents, ad-hoc
    what-ifs); allocator sweeps evaluate all dirty users at once through
    :func:`repro.core.responses.batch_candidate_profits`, which produces
    bitwise-identical entries.  The ``core.candidate_eval_total`` counter
    below therefore only accounts single-user calls — the batched sweep
    reports ``allocator.sweep_seconds`` / ``allocator.batch_size`` instead
    (see ``docs/observability.md``).
    """
    if _OBS.enabled:
        t0 = time.perf_counter()
        out = profile.game.arrays.candidate_profits(
            user, profile.counts_without(user)
        )
        _obs_counter("core.candidate_eval_total").inc(out.size)
        _obs_histogram("core.kernel_seconds", kernel="candidate_profits").observe(
            time.perf_counter() - t0
        )
        return out
    return profile.game.arrays.candidate_profits(user, profile.counts_without(user))


def profit_if_moved(profile: StrategyProfile, user: int, route: int) -> float:
    """``P_i(route, s_{-i})`` without mutating the profile."""
    return float(candidate_profits(profile, user)[route])
