"""Price of Anarchy (Section 4.4, Theorem 5).

``PoA = min_{s in NE} sum_i P_i(s) / sum_i P_i(s*)`` — worst equilibrium
over centralized optimum.  Theorem 5 gives a closed-form lower bound for a
special-case game; :func:`poa_lower_bound` generalizes the same pessimistic/
optimistic per-user envelope to arbitrary instances (this is what Table 4's
"Bound" column reports), and :func:`empirical_poa_ratio` measures the
realized DGRN/CORN ratio it must dominate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.profit import total_profit
from repro.utils.validation import check_positive, require


def special_case_poa_bounds(
    n_users: int,
    n_common_tasks: int,
    base_reward: float,
    private_profits: list[float],
) -> tuple[float, float]:
    """Theorem 5's ``(lower, upper)`` PoA bounds for the special-case game.

    The game: each user ``i`` owns a private route ``r'_i`` worth
    ``private_profits[i]`` plus a shared route set ``R`` covering
    ``n_common_tasks`` tasks, each rewarding ``w_k = a + ln(x)``.  Then

    ``p = (|U| + |L'| - 1) / |L'|``,
    ``P_min = (a + ln p)/p``, ``P_max = a``, and

    ``sum_i max(P_i, P_min) / sum_i max(P_i, P_max) <= PoA <= 1``.
    """
    require(n_users >= 1, "need at least one user")
    require(n_common_tasks >= 1, "need at least one common task")
    check_positive("base_reward", base_reward)
    require(len(private_profits) == n_users, "one private profit per user")
    p = (n_users + n_common_tasks - 1) / n_common_tasks
    p_min = (base_reward + math.log(p)) / p
    p_max = base_reward
    numer = sum(max(pi, p_min) for pi in private_profits)
    denom = sum(max(pi, p_max) for pi in private_profits)
    require(denom > 0, "degenerate special case: zero optimal profit")
    return numer / denom, 1.0


def poa_lower_bound(game: RouteNavigationGame) -> float:
    """Per-user pessimistic/optimistic envelope bound for a general instance.

    For each user, the *optimistic* profit assumes the best route with every
    task unshared (``n_k = 1``); the *pessimistic* profit assumes the user's
    best route under maximal sharing pressure ``p = (|U| + |L| - 1)/|L|``
    users per task (Theorem 5's balanced-congestion count).  The bound is
    ``sum_i max(P_i^pess, P_i^solo_min) / sum_i P_i^opt`` clipped to [0, 1];
    it is heuristic for general games (Theorem 5 only proves it for the
    special case) and Table 4 checks the measured ratio dominates it.
    """
    m, n = game.num_users, game.num_tasks
    require(n >= 1, "instance has no tasks")
    p = (m + n - 1) / n
    base = game.tasks.base_rewards
    incs = game.tasks.reward_increments
    optimistic_total = 0.0
    pessimistic_total = 0.0
    for i in game.users:
        alpha = game.user_weights[i].alpha
        costs = game.route_cost[i]
        best_opt = -np.inf
        best_pess = -np.inf
        for j in range(game.num_routes(i)):
            ids = game.covered_tasks(i, j)
            if ids.size:
                solo = float(base[ids].sum())
                shared = float(
                    np.sum((base[ids] + incs[ids] * np.log(p)) / p)
                )
            else:
                solo = shared = 0.0
            best_opt = max(best_opt, alpha * solo - float(costs[j]))
            best_pess = max(best_pess, alpha * shared - float(costs[j]))
        optimistic_total += best_opt
        pessimistic_total += best_pess
    if optimistic_total <= 0:
        return 0.0
    return float(np.clip(pessimistic_total / optimistic_total, 0.0, 1.0))


def empirical_poa_ratio(
    equilibrium: StrategyProfile, optimum: StrategyProfile
) -> float:
    """Measured ratio ``total_profit(NE) / total_profit(OPT)``."""
    opt = total_profit(optimum)
    require(opt > 0, "optimal profile has non-positive total profit")
    return total_profit(equilibrium) / opt
