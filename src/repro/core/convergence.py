"""Theorem 4: upper bound on the number of decision slots to convergence.

``C < (e_max / dP_min) * |U| * ( |L| (g_max - g_min)
      + (e_max/e_min) d_max + (e_max/e_min) b_max )``

where ``g_min/g_max`` bound the per-user task share ``w_k(q)/q`` over the
whole strategy space, ``d_max``/``b_max`` bound the detour and congestion
costs, and ``dP_min`` is the smallest profit improvement a granted update
realizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.utils.validation import check_positive


def share_bounds(game: RouteNavigationGame) -> tuple[float, float]:
    """``(g_min, g_max)``: bounds of ``w_k(q)/q`` over tasks and counts.

    ``q`` ranges over 1..M (all users could stack on one task).  The share
    is evaluated exactly at every feasible count — M is small enough that a
    vectorized table is cheaper than reasoning about monotonicity.
    """
    m = game.num_users
    q = np.arange(1, m + 1, dtype=float)
    base = game.tasks.base_rewards[:, None]
    incs = game.tasks.reward_increments[:, None]
    table = (base + incs * np.log(q)[None, :]) / q[None, :]
    if table.size == 0:
        return 0.0, 0.0
    return float(table.min()), float(table.max())


def cost_bounds(game: RouteNavigationGame) -> tuple[float, float]:
    """``(d_max, b_max)``: largest detour/congestion costs over all routes."""
    d_max = 0.0
    b_max = 0.0
    for i in game.users:
        d_max = max(d_max, game.platform.phi * float(game.route_detour[i].max()))
        b_max = max(b_max, game.platform.theta * float(game.route_congestion[i].max()))
    return d_max, b_max


def weight_extremes(game: RouteNavigationGame) -> tuple[float, float]:
    """``(e_min, e_max)`` actually spanned by the instance's user weights."""
    values: list[float] = []
    for uw in game.user_weights:
        values.extend((uw.alpha, uw.beta, uw.gamma))
    return min(values), max(values)


def convergence_slot_bound(
    game: RouteNavigationGame, delta_p_min: float
) -> float:
    """Evaluate the Theorem 4 bound for a given minimum update gain.

    ``delta_p_min`` is instance/run-specific (the smallest profit gain any
    granted update realized); experiments measure it from the recorded move
    history and check ``slots < bound``.
    """
    check_positive("delta_p_min", delta_p_min)
    g_min, g_max = share_bounds(game)
    d_max, b_max = cost_bounds(game)
    e_min, e_max = weight_extremes(game)
    m = game.num_users
    n = game.num_tasks
    ratio = e_max / e_min
    return (e_max / delta_p_min) * m * (n * (g_max - g_min) + ratio * d_max + ratio * b_max)


def potential_range(game: RouteNavigationGame) -> tuple[float, float]:
    """Loose lower/upper bounds on ``phi(s)`` (Eqs. 17-18).

    ``phi > |L||U| g_min - |U| (e_max/e_min)(d_max + b_max)`` and
    ``phi < |L||U| g_max``.  Useful as a sanity envelope in tests.
    """
    g_min, g_max = share_bounds(game)
    d_max, b_max = cost_bounds(game)
    e_min, e_max = weight_extremes(game)
    m, n = game.num_users, game.num_tasks
    low = n * m * min(g_min, 0.0) - m * (e_max / e_min) * (d_max + b_max)
    high = n * m * max(g_max, 0.0)
    return low, high
