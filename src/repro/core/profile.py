"""Strategy profiles ``s = (s_1, ..., s_M)`` with incremental task counters.

The profile keeps the participant-count vector ``n_k(s)`` synchronized with
the users' route choices; a single-user move updates only the counters of
the symmetric difference between the old and new covered-task sets, which is
what makes best-response loops and the potential delta O(|route tasks|)
instead of O(|L|).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_index, require


class StrategyProfile:
    """Mutable assignment of one route per user plus derived ``n_k`` counts."""

    __slots__ = ("game", "choices", "counts")

    def __init__(
        self,
        game: RouteNavigationGame,
        choices: Sequence[int] | np.ndarray,
    ) -> None:
        self.game = game
        arr = np.asarray(choices, dtype=np.intp)
        require(
            arr.shape == (game.num_users,),
            f"choices must have shape ({game.num_users},), got {arr.shape}",
        )
        for i, j in enumerate(arr):
            check_index(f"choices[{i}]", int(j), game.num_routes(i))
        self.choices = arr.copy()
        self.counts = self._recount()

    def _recount(self) -> np.ndarray:
        # One multi-segment gather over the chosen routes' CSR slices plus
        # one bincount — no per-user Python loop.
        return self.game.arrays.counts_from_choices(self.choices)

    # ------------------------------------------------------------------ reads
    def route_of(self, user: int) -> int:
        """Current route index ``s_i`` of ``user``."""
        return int(self.choices[user])

    def covered_by(self, user: int) -> np.ndarray:
        """Task ids covered by ``user``'s current route, ``L_{s_i}``."""
        return self.game.covered_tasks(user, self.route_of(user))

    def count_of(self, task: int) -> int:
        """``n_k(s)`` for task ``task``."""
        return int(self.counts[task])

    def counts_without(self, user: int) -> np.ndarray:
        """``n_k(s_{-i})``: counts with ``user``'s contribution removed.

        Returns a fresh array; the profile is unchanged.
        """
        out = self.counts.copy()
        ids = self.covered_by(user)
        if ids.size:
            out[ids] -= 1
        return out

    # ----------------------------------------------------------------- writes
    def move(self, user: int, new_route: int) -> int:
        """Switch ``user`` to ``new_route``; returns the previous route.

        Counter updates touch only the symmetric difference of the two
        routes' task sets.
        """
        check_index("new_route", new_route, self.game.num_routes(user))
        old_route = self.route_of(user)
        if new_route == old_route:
            return old_route
        old_ids = self.game.covered_tasks(user, old_route)
        new_ids = self.game.covered_tasks(user, new_route)
        if old_ids.size:
            self.counts[old_ids] -= 1
        if new_ids.size:
            self.counts[new_ids] += 1
        self.choices[user] = new_route
        return old_route

    def copy(self) -> "StrategyProfile":
        clone = object.__new__(StrategyProfile)
        clone.game = self.game
        clone.choices = self.choices.copy()
        clone.counts = self.counts.copy()
        return clone

    # ------------------------------------------------------------- invariants
    def validate(self) -> None:
        """Assert counter/choice consistency (used by tests and debug runs)."""
        expected = self._recount()
        if not np.array_equal(expected, self.counts):
            raise AssertionError(
                f"task counters out of sync: expected {expected}, have {self.counts}"
            )
        if np.any(self.counts < 0):
            raise AssertionError("negative task counter")

    # ----------------------------------------------------------- constructors
    @staticmethod
    def random(game: RouteNavigationGame, seed: SeedLike = None) -> "StrategyProfile":
        """Uniform-random initial profile (Algorithm 1, line 3)."""
        rng = as_generator(seed)
        choices = [int(rng.integers(0, game.num_routes(i))) for i in game.users]
        return StrategyProfile(game, choices)

    @staticmethod
    def all_profiles(game: RouteNavigationGame) -> Iterable["StrategyProfile"]:
        """Iterate the full strategy space (exponential; small games only)."""
        sizes = [game.num_routes(i) for i in game.users]
        total = int(np.prod(sizes))
        require(total <= 2_000_000, f"strategy space too large to enumerate: {total}")
        choices = np.zeros(len(sizes), dtype=np.intp)
        profile = StrategyProfile(game, choices)
        while True:
            yield profile.copy()
            for i in range(len(sizes) - 1, -1, -1):
                if choices[i] + 1 < sizes[i]:
                    profile.move(i, int(choices[i]) + 1)
                    choices = profile.choices
                    break
                profile.move(i, 0)
                choices = profile.choices
            else:
                return

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrategyProfile):
            return NotImplemented
        return self.game is other.game and bool(
            np.array_equal(self.choices, other.choices)
        )

    def __hash__(self) -> int:
        return hash((id(self.game), tuple(int(c) for c in self.choices)))

    def __repr__(self) -> str:
        return f"StrategyProfile({self.choices.tolist()})"
