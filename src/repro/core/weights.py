"""Preference weights of users and the platform (Section 3.1).

Users control ``alpha_i`` (reward emphasis), ``beta_i`` (detour aversion)
and ``gamma_i`` (congestion aversion), each bounded in ``(e_min, e_max)``
with ``e_min > 0``.  The platform controls ``phi`` (detour-cost scale,
Eq. 3) and ``theta`` (congestion-cost scale, Eq. 4), both in ``(0, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require

E_MIN_DEFAULT = 0.05
E_MAX_DEFAULT = 1.0


@dataclass(frozen=True, slots=True)
class UserWeights:
    """Per-user preference weights ``(alpha_i, beta_i, gamma_i)``.

    The paper constrains ``e_min < alpha, beta, gamma < e_max`` with
    ``e_min > 0`` (needed by the Theorem 4 convergence bound); Table 2
    samples them from [0.1, 0.9].
    """

    alpha: float
    beta: float
    gamma: float
    e_min: float = E_MIN_DEFAULT
    e_max: float = E_MAX_DEFAULT

    def __post_init__(self) -> None:
        require(0.0 < self.e_min < self.e_max, f"need 0 < e_min < e_max, got {self}")
        for name in ("alpha", "beta", "gamma"):
            v = getattr(self, name)
            require(
                self.e_min <= v <= self.e_max,
                f"{name}={v} outside [{self.e_min}, {self.e_max}]",
            )

    def replace(self, **kwargs: float) -> "UserWeights":
        """Copy with some fields changed (user adjusting preferences)."""
        data = {
            "alpha": self.alpha,
            "beta": self.beta,
            "gamma": self.gamma,
            "e_min": self.e_min,
            "e_max": self.e_max,
        }
        data.update(kwargs)
        return UserWeights(**data)

    @staticmethod
    def random(
        rng_or_seed: SeedLike = None,
        *,
        low: float = 0.1,
        high: float = 0.9,
        e_min: float = E_MIN_DEFAULT,
        e_max: float = E_MAX_DEFAULT,
    ) -> "UserWeights":
        """Sample weights uniformly from ``[low, high]`` (Table 2 defaults)."""
        rng = as_generator(rng_or_seed)
        a, b, g = rng.uniform(low, high, size=3)
        return UserWeights(float(a), float(b), float(g), e_min=e_min, e_max=e_max)


@dataclass(frozen=True, slots=True)
class PlatformWeights:
    """Platform-controlled cost scales ``phi`` (detour) and ``theta``
    (congestion); Table 2 samples them from [0.1, 0.8]."""

    phi: float
    theta: float

    def __post_init__(self) -> None:
        require(0.0 <= self.phi < 1.0, f"phi must be in [0, 1), got {self.phi}")
        require(0.0 <= self.theta < 1.0, f"theta must be in [0, 1), got {self.theta}")

    def replace(self, **kwargs: float) -> "PlatformWeights":
        data = {"phi": self.phi, "theta": self.theta}
        data.update(kwargs)
        return PlatformWeights(**data)

    @staticmethod
    def random(
        rng_or_seed: SeedLike = None, *, low: float = 0.1, high: float = 0.8
    ) -> "PlatformWeights":
        rng = as_generator(rng_or_seed)
        p, t = rng.uniform(low, high, size=2)
        return PlatformWeights(float(p), float(t))
