"""Exhaustive equilibrium analysis for small games.

Eq. (21) defines PoA as a minimum over *all* Nash equilibria; on small
instances we can compute it exactly by enumerating the strategy space,
which grounds the heuristic :func:`repro.core.poa.poa_lower_bound` and the
empirical DGRN/CORN ratios of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.equilibrium import is_nash_equilibrium
from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.profit import total_profit
from repro.utils.validation import require


@dataclass(frozen=True)
class EquilibriumAnalysis:
    """Every Nash equilibrium of a (small) game, with the exact PoA."""

    equilibria: tuple[tuple[int, ...], ...]
    equilibrium_profits: tuple[float, ...]
    optimal_choices: tuple[int, ...]
    optimal_profit: float

    @property
    def num_equilibria(self) -> int:
        return len(self.equilibria)

    @property
    def worst_equilibrium_profit(self) -> float:
        return min(self.equilibrium_profits)

    @property
    def best_equilibrium_profit(self) -> float:
        return max(self.equilibrium_profits)

    @property
    def price_of_anarchy(self) -> float:
        """Eq. (21): worst-equilibrium total profit over the optimum."""
        require(self.optimal_profit > 0, "non-positive optimal profit")
        return self.worst_equilibrium_profit / self.optimal_profit

    @property
    def price_of_stability(self) -> float:
        """Best-equilibrium total profit over the optimum."""
        require(self.optimal_profit > 0, "non-positive optimal profit")
        return self.best_equilibrium_profit / self.optimal_profit


def enumerate_equilibria(game: RouteNavigationGame) -> EquilibriumAnalysis:
    """Enumerate the strategy space; classify equilibria and the optimum.

    Exponential in the number of users, but fully vectorized over the
    profile axis (see :mod:`repro.core.batch`): the Nash test for user
    ``i`` compares its chosen route's value against every alternative
    evaluated from the batch count matrix, so games with 10^5-10^6
    profiles finish in seconds.  Theorem 2 guarantees at least one
    equilibrium exists, so the result is never empty.
    """
    from repro.core.batch import BatchEvaluator, all_choice_matrix
    from repro.core.responses import IMPROVEMENT_EPS

    choices = all_choice_matrix(game)
    ev = BatchEvaluator(game)
    totals = ev.total_profits(choices)
    counts = ev.counts(choices)
    p = choices.shape[0]
    ga = game.arrays
    base = game.tasks.base_rewards
    incs = game.tasks.reward_increments
    ne_mask = np.ones(p, dtype=bool)
    for i in game.users:
        cov_i = ev._cov[i]
        counts_wo = counts - cov_i[choices[:, i]]
        # All of user i's routes at once: one (P, nnz_i) share table reduced
        # per CSR segment along the task axis.
        sl = ga.user_slice(i)
        lo, hi = int(ga.indptr[sl.start]), int(ga.indptr[sl.stop])
        seg = ga.task_ids[lo:hi]
        rewards = np.zeros((p, game.num_routes(i)))
        if seg.size:
            nj = counts_wo[:, seg] + 1.0
            share = (base[seg][None, :] + incs[seg][None, :] * np.log(nj)) / nj
            starts = ga.indptr[sl.start : sl.stop] - lo
            nonempty = np.flatnonzero(ga.route_len[sl] > 0)
            rewards[:, nonempty] = np.add.reduceat(
                share, starts[nonempty], axis=1
            )
        vals = ga.alpha[i] * rewards - ga.route_cost[sl][None, :]
        chosen = vals[np.arange(p), choices[:, i]]
        ne_mask &= chosen >= vals.max(axis=1) - IMPROVEMENT_EPS
    best_idx = int(np.argmax(totals))
    eq_idx = np.flatnonzero(ne_mask)
    require(eq_idx.size >= 1,
            "no Nash equilibrium found — contradicts Theorem 2")
    return EquilibriumAnalysis(
        equilibria=tuple(tuple(int(c) for c in choices[k]) for k in eq_idx),
        equilibrium_profits=tuple(float(totals[k]) for k in eq_idx),
        optimal_choices=tuple(int(c) for c in choices[best_idx]),
        optimal_profit=float(totals[best_idx]),
    )


def enumerate_equilibria_slow(game: RouteNavigationGame) -> EquilibriumAnalysis:
    """Reference scalar implementation (kept to certify the batch path)."""
    equilibria: list[tuple[int, ...]] = []
    eq_profits: list[float] = []
    best_choices: tuple[int, ...] | None = None
    best_value = -np.inf
    for profile in StrategyProfile.all_profiles(game):
        value = total_profit(profile)
        if value > best_value:
            best_value = value
            best_choices = tuple(int(c) for c in profile.choices)
        if is_nash_equilibrium(profile):
            equilibria.append(tuple(int(c) for c in profile.choices))
            eq_profits.append(value)
    assert best_choices is not None
    require(len(equilibria) >= 1,
            "no Nash equilibrium found — contradicts Theorem 2")
    return EquilibriumAnalysis(
        equilibria=tuple(equilibria),
        equilibrium_profits=tuple(eq_profits),
        optimal_choices=best_choices,
        optimal_profit=float(best_value),
    )
