"""The multi-user route-navigation game instance (Section 3.1).

:class:`RouteNavigationGame` freezes everything that does not change during
play: the task set, each user's recommended routes with their covered-task
sets, detour distances ``h(r)`` and congestion levels ``c(r)``, the user
weights ``(alpha_i, beta_i, gamma_i)`` and the platform weights
``(phi, theta)``.  Strategy state lives in
:class:`~repro.core.profile.StrategyProfile`.

Derived per-route data is compiled once into a flat CSR layout
(:class:`~repro.core.arrays.GameArrays`, the ``arrays`` attribute) shared
by every hot kernel; the ragged accessors below are *views* into it:

- ``route_cost[i][j]   = beta_i * phi * h + gamma_i * theta * c`` — the cost
  part of the profit function (Eq. 2 with Eqs. 3-4 substituted);
- ``route_pot_cost[i][j] = route_cost[i][j] / alpha_i`` — the cost part of
  the potential function (Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.arrays import GameArrays
from repro.core.weights import PlatformWeights, UserWeights
from repro.network.routing import Route
from repro.tasks.task import Task, TaskSet
from repro.utils.validation import require


@dataclass(frozen=True)
class RouteNavigationGame:
    """Immutable game instance.

    Parameters
    ----------
    tasks:
        The task set ``L``.
    route_sets:
        ``route_sets[i]`` is user ``i``'s recommended route set ``R_i``
        (Routes must already carry their covered ``task_ids``).
    user_weights:
        One :class:`UserWeights` per user.
    platform:
        The platform weights ``(phi, theta)``.
    """

    tasks: TaskSet
    route_sets: tuple[tuple[Route, ...], ...]
    user_weights: tuple[UserWeights, ...]
    platform: PlatformWeights
    # Unit in which the detour distance h(r) enters the profit function.
    # Routes store physical km; the paper's h is unit-free with magnitudes
    # comparable to task rewards, so scenario builders pass 0.1 (h counted
    # in 100 m blocks).  1.0 keeps h in km.
    detour_unit_km: float = 1.0
    # Derived, filled in __post_init__ (kept out of __init__/__eq__).
    # ``arrays`` is the single source of truth; everything below is a view.
    arrays: GameArrays = field(init=False, repr=False, compare=False)
    route_task_ids: tuple[tuple[np.ndarray, ...], ...] = field(
        init=False, repr=False, compare=False
    )
    route_cost: tuple[np.ndarray, ...] = field(init=False, repr=False, compare=False)
    route_pot_cost: tuple[np.ndarray, ...] = field(
        init=False, repr=False, compare=False
    )
    route_detour: tuple[np.ndarray, ...] = field(init=False, repr=False, compare=False)
    route_congestion: tuple[np.ndarray, ...] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        require(len(self.route_sets) == len(self.user_weights),
                "route_sets and user_weights must have one entry per user")
        require(len(self.route_sets) >= 1, "game needs at least one user")
        require(self.detour_unit_km > 0, "detour_unit_km must be > 0")
        n_tasks = len(self.tasks)
        route_counts: list[int] = []
        id_chunks: list[np.ndarray] = []
        h_flat: list[float] = []
        c_flat: list[float] = []
        for i, routes in enumerate(self.route_sets):
            require(len(routes) >= 1, f"user {i} has an empty route set")
            route_counts.append(len(routes))
            for r in routes:
                id_chunks.append(np.asarray(r.task_ids, dtype=np.intp))
                h_flat.append(r.detour_km / self.detour_unit_km)
                c_flat.append(r.congestion)
        lens = np.array([a.size for a in id_chunks], dtype=np.intp)
        indptr = np.concatenate([[0], np.cumsum(lens)]).astype(np.intp)
        flat_ids = (
            np.concatenate(id_chunks).astype(np.intp)
            if int(indptr[-1])
            else np.zeros(0, dtype=np.intp)
        )
        self._validate_task_ids(flat_ids, indptr, n_tasks, route_counts)
        h = np.asarray(h_flat, dtype=float)
        c = np.asarray(c_flat, dtype=float)
        alpha = np.array([uw.alpha for uw in self.user_weights], dtype=float)
        beta = np.array([uw.beta for uw in self.user_weights], dtype=float)
        gamma = np.array([uw.gamma for uw in self.user_weights], dtype=float)
        route_user = np.repeat(
            np.arange(len(route_counts), dtype=np.intp), route_counts
        )
        d = self.platform.phi * h  # d(r) = phi * h(r), Eq. 3
        b = self.platform.theta * c  # b(r) = theta * c(r), Eq. 4
        cost = beta[route_user] * d + gamma[route_user] * b
        arrays = GameArrays(
            route_counts=route_counts,
            flat_task_ids=flat_ids,
            indptr=indptr,
            route_detour=h,
            route_congestion=c,
            route_cost=cost,
            route_pot_cost=cost / alpha[route_user],
            alpha=alpha,
            base_rewards=self.tasks.base_rewards,
            reward_increments=self.tasks.reward_increments,
        )
        self._check_duplicates(arrays)
        object.__setattr__(self, "arrays", arrays)

    # Legacy ragged accessors: per-user tuples of numpy *views* into the
    # flat arrays — same memory, one source of truth.  Materialized lazily
    # (most consumers only touch ``arrays``) and dropped from pickles: a
    # pickled view copies its whole base buffer, which doubled the wire
    # size of every shipped sub-game.
    _LAZY_VIEWS = frozenset(
        {
            "route_task_ids",
            "route_cost",
            "route_pot_cost",
            "route_detour",
            "route_congestion",
        }
    )

    def __getattr__(self, name: str):
        if name not in RouteNavigationGame._LAZY_VIEWS:
            raise AttributeError(name)
        arrays = self.__dict__.get("arrays")
        if arrays is None:  # mid-(un)pickle: derived state not ready yet
            raise AttributeError(name)
        off = arrays.user_route_offset
        n_users = arrays.num_users
        if name == "route_task_ids":
            value: tuple = tuple(
                tuple(
                    arrays.route_tasks(g) for g in range(int(off[i]), int(off[i + 1]))
                )
                for i in range(n_users)
            )
        else:
            vec = getattr(arrays, name)
            value = tuple(
                vec[int(off[i]) : int(off[i + 1])] for i in range(n_users)
            )
        object.__setattr__(self, name, value)
        return value

    def __getstate__(self) -> dict:
        return {
            k: v for k, v in self.__dict__.items() if k not in self._LAZY_VIEWS
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @classmethod
    def from_parts(
        cls,
        *,
        tasks: TaskSet,
        route_sets: tuple[tuple[Route, ...], ...],
        user_weights: tuple[UserWeights, ...],
        platform: PlatformWeights,
        detour_unit_km: float,
        arrays: GameArrays,
    ) -> "RouteNavigationGame":
        """Reassemble an instance around pre-compiled ``arrays``.

        The zero-copy transport path: the caller ships the cheap metadata
        by pickle and the compiled arrays by shared memory, then stitches
        them back together here — no ``__post_init__`` recompilation, no
        re-validation (the parts were validated when first compiled).
        """
        self = object.__new__(cls)
        self.__dict__.update(
            tasks=tasks,
            route_sets=route_sets,
            user_weights=user_weights,
            platform=platform,
            detour_unit_km=detour_unit_km,
            arrays=arrays,
        )
        return self

    def _validate_task_ids(
        self,
        flat_ids: np.ndarray,
        indptr: np.ndarray,
        n_tasks: int,
        route_counts: list[int],
    ) -> None:
        if flat_ids.size == 0:
            return
        bad = np.flatnonzero((flat_ids < 0) | (flat_ids >= n_tasks))
        if bad.size:
            i, j = self._locate_route(int(bad[0]), indptr, route_counts)
            require(False, f"route ({i},{j}) references unknown task ids")

    def _check_duplicates(self, arrays: GameArrays) -> None:
        srt = arrays.task_ids_sorted
        if srt.size < 2:
            return
        dup = np.flatnonzero(srt[1:] == srt[:-1])
        if dup.size == 0:
            return
        # A duplicate pair straddling a segment boundary is fine; one inside
        # a segment is an invalid route.
        is_start = np.zeros(srt.size + 1, dtype=bool)
        is_start[arrays.indptr] = True
        inside = dup[~is_start[dup + 1]]
        if inside.size:
            i, j = self._locate_route(
                int(inside[0]),
                arrays.indptr,
                np.diff(arrays.user_route_offset).tolist(),
            )
            require(False, f"route ({i},{j}) has duplicate task ids")

    @staticmethod
    def _locate_route(
        flat_pos: int, indptr: np.ndarray, route_counts: list[int]
    ) -> tuple[int, int]:
        """Map a position in the flat task-id array back to ``(user, route)``."""
        g = int(np.searchsorted(indptr, flat_pos, side="right")) - 1
        offsets = np.concatenate([[0], np.cumsum(route_counts)])
        i = int(np.searchsorted(offsets, g, side="right")) - 1
        return i, g - int(offsets[i])

    # ------------------------------------------------------------------ sizes
    @property
    def num_users(self) -> int:
        return len(self.route_sets)

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def num_routes(self, user: int) -> int:
        return len(self.route_sets[user])

    @property
    def users(self) -> range:
        return range(self.num_users)

    # ------------------------------------------------------------------ views
    def covered_tasks(self, user: int, route: int) -> np.ndarray:
        """Task-id array ``L_r`` of user ``user``'s route ``route``."""
        return self.route_task_ids[user][route]

    def detour_h(self, user: int, route: int) -> float:
        """Detour distance ``h(r)`` in game units (km / ``detour_unit_km``)."""
        return float(self.route_detour[user][route])

    def congestion_level(self, user: int, route: int) -> float:
        """Raw congestion level ``c(r)``."""
        return float(self.route_congestion[user][route])

    def detour_cost(self, user: int, route: int) -> float:
        """``d(r) = phi * h(r)`` (Eq. 3)."""
        return self.platform.phi * float(self.route_detour[user][route])

    def congestion_cost(self, user: int, route: int) -> float:
        """``b(r) = theta * c(r)`` (Eq. 4)."""
        return self.platform.theta * float(self.route_congestion[user][route])

    # --------------------------------------------------------------- rebuilds
    def with_platform(self, platform: PlatformWeights) -> "RouteNavigationGame":
        """Same instance under different platform weights (Fig. 12 sweeps)."""
        return RouteNavigationGame(
            self.tasks, self.route_sets, self.user_weights, platform,
            self.detour_unit_km,
        )

    def with_user_weights(
        self, user: int, weights: UserWeights
    ) -> "RouteNavigationGame":
        """Same instance with one user's preferences changed (Table 5 sweeps)."""
        uw = list(self.user_weights)
        uw[user] = weights
        return RouteNavigationGame(
            self.tasks, self.route_sets, tuple(uw), self.platform,
            self.detour_unit_km,
        )

    # ------------------------------------------------------------ constructors
    @staticmethod
    def build(
        tasks: TaskSet | Sequence[Task],
        route_sets: Sequence[Sequence[Route]],
        user_weights: Sequence[UserWeights],
        platform: PlatformWeights,
        *,
        detour_unit_km: float = 1.0,
    ) -> "RouteNavigationGame":
        """Normalize plain sequences into the frozen instance."""
        ts = tasks if isinstance(tasks, TaskSet) else TaskSet(list(tasks))
        return RouteNavigationGame(
            tasks=ts,
            route_sets=tuple(tuple(rs) for rs in route_sets),
            user_weights=tuple(user_weights),
            platform=platform,
            detour_unit_km=detour_unit_km,
        )

    @staticmethod
    def from_coverage(
        coverage: Sequence[Sequence[Sequence[int]]],
        *,
        base_rewards: Sequence[float],
        reward_increments: Sequence[float] | float = 0.0,
        detours: Sequence[Sequence[float]] | None = None,
        congestions: Sequence[Sequence[float]] | None = None,
        user_weights: Sequence[UserWeights] | None = None,
        platform: PlatformWeights = PlatformWeights(0.5, 0.5),
    ) -> "RouteNavigationGame":
        """Build an abstract game directly from coverage lists.

        ``coverage[i][j]`` is the list of task ids covered by user ``i``'s
        route ``j``.  This is the entry point for hand-built instances
        (Fig. 1, Fig. 2, the NP-hardness reduction, and unit tests) that do
        not need the road-network substrate.
        """
        n_tasks = len(base_rewards)
        if isinstance(reward_increments, (int, float)):
            incs = [float(reward_increments)] * n_tasks
        else:
            incs = [float(v) for v in reward_increments]
        require(len(incs) == n_tasks, "reward_increments length mismatch")
        task_list = [
            Task(k, 0.0, 0.0, float(base_rewards[k]), incs[k]) for k in range(n_tasks)
        ]
        n_users = len(coverage)
        if user_weights is None:
            user_weights = [UserWeights(1.0, 1.0, 1.0, e_min=0.05, e_max=1.0)] * n_users
        route_sets: list[list[Route]] = []
        for i, routes in enumerate(coverage):
            rs: list[Route] = []
            for j, ids in enumerate(routes):
                h = float(detours[i][j]) if detours is not None else 0.0
                c = float(congestions[i][j]) if congestions is not None else 0.0
                rs.append(
                    Route(
                        nodes=(0,),
                        length_km=h,
                        detour_km=h,
                        congestion=c,
                        task_ids=tuple(int(t) for t in ids),
                    )
                )
            route_sets.append(rs)
        return RouteNavigationGame.build(task_list, route_sets, user_weights, platform)
