"""The multi-user route-navigation game instance (Section 3.1).

:class:`RouteNavigationGame` freezes everything that does not change during
play: the task set, each user's recommended routes with their covered-task
sets, detour distances ``h(r)`` and congestion levels ``c(r)``, the user
weights ``(alpha_i, beta_i, gamma_i)`` and the platform weights
``(phi, theta)``.  Strategy state lives in
:class:`~repro.core.profile.StrategyProfile`.

Derived per-route arrays are precomputed once:

- ``route_cost[i][j]   = beta_i * phi * h + gamma_i * theta * c`` — the cost
  part of the profit function (Eq. 2 with Eqs. 3-4 substituted);
- ``route_pot_cost[i][j] = route_cost[i][j] / alpha_i`` — the cost part of
  the potential function (Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.weights import PlatformWeights, UserWeights
from repro.network.routing import Route
from repro.tasks.task import Task, TaskSet
from repro.utils.validation import require


@dataclass(frozen=True)
class RouteNavigationGame:
    """Immutable game instance.

    Parameters
    ----------
    tasks:
        The task set ``L``.
    route_sets:
        ``route_sets[i]`` is user ``i``'s recommended route set ``R_i``
        (Routes must already carry their covered ``task_ids``).
    user_weights:
        One :class:`UserWeights` per user.
    platform:
        The platform weights ``(phi, theta)``.
    """

    tasks: TaskSet
    route_sets: tuple[tuple[Route, ...], ...]
    user_weights: tuple[UserWeights, ...]
    platform: PlatformWeights
    # Unit in which the detour distance h(r) enters the profit function.
    # Routes store physical km; the paper's h is unit-free with magnitudes
    # comparable to task rewards, so scenario builders pass 0.1 (h counted
    # in 100 m blocks).  1.0 keeps h in km.
    detour_unit_km: float = 1.0
    # Derived, filled in __post_init__ (kept out of __init__/__eq__):
    route_task_ids: tuple[tuple[np.ndarray, ...], ...] = field(
        init=False, repr=False, compare=False
    )
    route_cost: tuple[np.ndarray, ...] = field(init=False, repr=False, compare=False)
    route_pot_cost: tuple[np.ndarray, ...] = field(
        init=False, repr=False, compare=False
    )
    route_detour: tuple[np.ndarray, ...] = field(init=False, repr=False, compare=False)
    route_congestion: tuple[np.ndarray, ...] = field(
        init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        require(len(self.route_sets) == len(self.user_weights),
                "route_sets and user_weights must have one entry per user")
        require(len(self.route_sets) >= 1, "game needs at least one user")
        require(self.detour_unit_km > 0, "detour_unit_km must be > 0")
        n_tasks = len(self.tasks)
        task_ids: list[tuple[np.ndarray, ...]] = []
        costs: list[np.ndarray] = []
        pot_costs: list[np.ndarray] = []
        detours: list[np.ndarray] = []
        congestions: list[np.ndarray] = []
        for i, routes in enumerate(self.route_sets):
            require(len(routes) >= 1, f"user {i} has an empty route set")
            uw = self.user_weights[i]
            ids_i: list[np.ndarray] = []
            h = np.empty(len(routes))
            c = np.empty(len(routes))
            for j, r in enumerate(routes):
                ids = np.asarray(r.task_ids, dtype=np.intp)
                require(
                    bool(np.all((ids >= 0) & (ids < n_tasks))) if ids.size else True,
                    f"route ({i},{j}) references unknown task ids",
                )
                require(
                    len(set(r.task_ids)) == len(r.task_ids),
                    f"route ({i},{j}) has duplicate task ids",
                )
                ids_i.append(ids)
                h[j] = r.detour_km / self.detour_unit_km
                c[j] = r.congestion
            d = self.platform.phi * h  # d(r) = phi * h(r), Eq. 3
            b = self.platform.theta * c  # b(r) = theta * c(r), Eq. 4
            cost = uw.beta * d + uw.gamma * b
            task_ids.append(tuple(ids_i))
            costs.append(cost)
            pot_costs.append(cost / uw.alpha)
            detours.append(h)
            congestions.append(c)
        object.__setattr__(self, "route_task_ids", tuple(task_ids))
        object.__setattr__(self, "route_cost", tuple(costs))
        object.__setattr__(self, "route_pot_cost", tuple(pot_costs))
        object.__setattr__(self, "route_detour", tuple(detours))
        object.__setattr__(self, "route_congestion", tuple(congestions))

    # ------------------------------------------------------------------ sizes
    @property
    def num_users(self) -> int:
        return len(self.route_sets)

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def num_routes(self, user: int) -> int:
        return len(self.route_sets[user])

    @property
    def users(self) -> range:
        return range(self.num_users)

    # ------------------------------------------------------------------ views
    def covered_tasks(self, user: int, route: int) -> np.ndarray:
        """Task-id array ``L_r`` of user ``user``'s route ``route``."""
        return self.route_task_ids[user][route]

    def detour_h(self, user: int, route: int) -> float:
        """Detour distance ``h(r)`` in game units (km / ``detour_unit_km``)."""
        return float(self.route_detour[user][route])

    def congestion_level(self, user: int, route: int) -> float:
        """Raw congestion level ``c(r)``."""
        return float(self.route_congestion[user][route])

    def detour_cost(self, user: int, route: int) -> float:
        """``d(r) = phi * h(r)`` (Eq. 3)."""
        return self.platform.phi * float(self.route_detour[user][route])

    def congestion_cost(self, user: int, route: int) -> float:
        """``b(r) = theta * c(r)`` (Eq. 4)."""
        return self.platform.theta * float(self.route_congestion[user][route])

    # --------------------------------------------------------------- rebuilds
    def with_platform(self, platform: PlatformWeights) -> "RouteNavigationGame":
        """Same instance under different platform weights (Fig. 12 sweeps)."""
        return RouteNavigationGame(
            self.tasks, self.route_sets, self.user_weights, platform,
            self.detour_unit_km,
        )

    def with_user_weights(
        self, user: int, weights: UserWeights
    ) -> "RouteNavigationGame":
        """Same instance with one user's preferences changed (Table 5 sweeps)."""
        uw = list(self.user_weights)
        uw[user] = weights
        return RouteNavigationGame(
            self.tasks, self.route_sets, tuple(uw), self.platform,
            self.detour_unit_km,
        )

    # ------------------------------------------------------------ constructors
    @staticmethod
    def build(
        tasks: TaskSet | Sequence[Task],
        route_sets: Sequence[Sequence[Route]],
        user_weights: Sequence[UserWeights],
        platform: PlatformWeights,
        *,
        detour_unit_km: float = 1.0,
    ) -> "RouteNavigationGame":
        """Normalize plain sequences into the frozen instance."""
        ts = tasks if isinstance(tasks, TaskSet) else TaskSet(list(tasks))
        return RouteNavigationGame(
            tasks=ts,
            route_sets=tuple(tuple(rs) for rs in route_sets),
            user_weights=tuple(user_weights),
            platform=platform,
            detour_unit_km=detour_unit_km,
        )

    @staticmethod
    def from_coverage(
        coverage: Sequence[Sequence[Sequence[int]]],
        *,
        base_rewards: Sequence[float],
        reward_increments: Sequence[float] | float = 0.0,
        detours: Sequence[Sequence[float]] | None = None,
        congestions: Sequence[Sequence[float]] | None = None,
        user_weights: Sequence[UserWeights] | None = None,
        platform: PlatformWeights = PlatformWeights(0.5, 0.5),
    ) -> "RouteNavigationGame":
        """Build an abstract game directly from coverage lists.

        ``coverage[i][j]`` is the list of task ids covered by user ``i``'s
        route ``j``.  This is the entry point for hand-built instances
        (Fig. 1, Fig. 2, the NP-hardness reduction, and unit tests) that do
        not need the road-network substrate.
        """
        n_tasks = len(base_rewards)
        if isinstance(reward_increments, (int, float)):
            incs = [float(reward_increments)] * n_tasks
        else:
            incs = [float(v) for v in reward_increments]
        require(len(incs) == n_tasks, "reward_increments length mismatch")
        task_list = [
            Task(k, 0.0, 0.0, float(base_rewards[k]), incs[k]) for k in range(n_tasks)
        ]
        n_users = len(coverage)
        if user_weights is None:
            user_weights = [UserWeights(1.0, 1.0, 1.0, e_min=0.05, e_max=1.0)] * n_users
        route_sets: list[list[Route]] = []
        for i, routes in enumerate(coverage):
            rs: list[Route] = []
            for j, ids in enumerate(routes):
                h = float(detours[i][j]) if detours is not None else 0.0
                c = float(congestions[i][j]) if congestions is not None else 0.0
                rs.append(
                    Route(
                        nodes=(0,),
                        length_km=h,
                        detour_km=h,
                        congestion=c,
                        task_ids=tuple(int(t) for t in ids),
                    )
                )
            route_sets.append(rs)
        return RouteNavigationGame.build(task_list, route_sets, user_weights, platform)
