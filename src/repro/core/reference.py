"""Scalar reference kernels — certification oracles for the CSR fast paths.

These are the pre-refactor per-route/per-task implementations of the hot
kernels, kept verbatim so tests and benchmarks can cross-check (and
speed-ratio) the vectorized :class:`~repro.core.arrays.GameArrays` paths
against a known-good baseline.  **Nothing in the library imports this
module**; production code must go through :mod:`repro.core.profit`,
:mod:`repro.core.potential`, and :class:`~repro.core.profile.StrategyProfile`.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import StrategyProfile
from repro.tasks.task import reward_share


def candidate_profits_reference(
    profile: StrategyProfile, user: int
) -> np.ndarray:
    """Per-route Python-loop evaluation of ``P_i(r_j, s_{-i})`` (Eq. 2)."""
    game = profile.game
    counts_wo = profile.counts_without(user)
    alpha = game.user_weights[user].alpha
    costs = game.route_cost[user]
    out = np.empty(game.num_routes(user))
    base = game.tasks.base_rewards
    incs = game.tasks.reward_increments
    for j in range(game.num_routes(user)):
        ids = game.covered_tasks(user, j)
        if ids.size == 0:
            out[j] = -float(costs[j])
            continue
        n = counts_wo[ids].astype(float) + 1.0
        reward = float(np.sum((base[ids] + incs[ids] * np.log(n)) / n))
        out[j] = alpha * reward - float(costs[j])
    return out


def potential_delta_reference(
    profile: StrategyProfile, user: int, new_route: int
) -> float:
    """Python-set evaluation of ``phi(new, s_{-i}) - phi(s)`` (Eq. 8)."""
    game = profile.game
    old_route = profile.route_of(user)
    if new_route == old_route:
        return 0.0
    old_ids = set(int(t) for t in game.covered_tasks(user, old_route))
    new_ids = set(int(t) for t in game.covered_tasks(user, new_route))
    base = game.tasks.base_rewards
    incs = game.tasks.reward_increments
    delta = 0.0
    for k in new_ids - old_ids:
        n_after = profile.count_of(k) + 1
        delta += reward_share(float(base[k]), float(incs[k]), n_after)
    for k in old_ids - new_ids:
        n_before = profile.count_of(k)
        delta -= reward_share(float(base[k]), float(incs[k]), n_before)
    delta -= float(game.route_pot_cost[user][new_route])
    delta += float(game.route_pot_cost[user][old_route])
    return delta


def all_profits_reference(profile: StrategyProfile) -> np.ndarray:
    """Per-user Python-loop evaluation of the profit vector ``P(s)``."""
    game = profile.game
    shares = game.tasks.shares(profile.counts)
    out = np.empty(game.num_users)
    for i in game.users:
        route = profile.route_of(i)
        ids = game.covered_tasks(i, route)
        reward = float(shares[ids].sum()) if ids.size else 0.0
        out[i] = game.user_weights[i].alpha * reward - float(
            game.route_cost[i][route]
        )
    return out


def recount_reference(profile: StrategyProfile) -> np.ndarray:
    """Per-user loop recomputation of the participant counts ``n_k(s)``."""
    counts = np.zeros(profile.game.num_tasks, dtype=np.intp)
    for i, j in enumerate(profile.choices):
        ids = profile.game.covered_tasks(i, int(j))
        if ids.size:
            np.add.at(counts, ids, 1)
    return counts
