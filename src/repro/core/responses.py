"""Better/best response updates (Definition 1) and the proposal engine.

The *best route set* ``Delta_i(t)`` of Algorithm 1 (line 10) is the set of
routes that both maximize the user's profit given ``s_{-i}`` and strictly
improve on the current route.  An :class:`UpdateProposal` packages what a
user sends to the platform when requesting an update (Algorithm 3's inputs):
the profit gain scaled by ``1/alpha_i`` (``tau_i``) and the set of tasks
jointly touched by the old and new routes (``B_i``).

Two layers live here:

- the **scalar path** (:func:`best_update`, :func:`make_proposal`,
  :class:`UpdateProposal`) — one user at a time, retained as the
  certification oracle for the batched engine and as the legacy object
  view used by the distributed agents and tests;
- the **batched engine** (:func:`batch_best_updates`,
  :class:`ProposalBatch`, :func:`greedy_disjoint`) — evaluates the best
  responses of *many* users in one NumPy pipeline over the game's flat
  CSR layout and resolves PUU conflicts with a task-occupancy mask.  The
  batched path is bit-for-bit equivalent to looping the scalar path
  (including ``first``/``random`` tie-breaking and RNG consumption
  order); ``tests/core/test_proposal_batch.py`` certifies this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.arrays import gather_segments
from repro.core.backend.numpy_backend import _DENSE_MEMBER_CELLS  # noqa: F401 - re-export
from repro.core.profile import StrategyProfile
from repro.core.profit import candidate_profits

# Strict-improvement tolerance: float noise below this is not an incentive
# to move, which also guarantees termination of response dynamics.
IMPROVEMENT_EPS = 1e-9


def better_responses(profile: StrategyProfile, user: int) -> list[int]:
    """Routes strictly better than the current one (better-response set)."""
    profits = candidate_profits(profile, user)
    current = profits[profile.route_of(user)]
    return [int(j) for j in np.flatnonzero(profits > current + IMPROVEMENT_EPS)]


def best_response_set(profile: StrategyProfile, user: int) -> list[int]:
    """``Delta_i(t)``: profit-maximizing routes that strictly improve.

    Empty when the current route is already (within tolerance) optimal —
    exactly Algorithm 1's "no update request" condition.
    """
    profits = candidate_profits(profile, user)
    current = profits[profile.route_of(user)]
    best = float(profits.max())
    if best <= current + IMPROVEMENT_EPS:
        return []
    return [int(j) for j in np.flatnonzero(profits >= best - IMPROVEMENT_EPS)]


@dataclass(frozen=True, slots=True)
class UpdateProposal:
    """A user's request to switch routes.

    Attributes
    ----------
    user:
        Requesting user id.
    new_route:
        The chosen element of the best route set.
    gain:
        ``P_i(s_i', s_{-i}) - P_i(s)`` — the raw profit improvement.
    tau:
        ``gain / alpha_i`` — the potential-function improvement the move
        realizes (Eq. 11), PUU's objective contribution.
    touched_tasks:
        ``B_i``: tasks covered by the old or the new route (their counters
        change or their shares are re-split when the move executes).
    """

    user: int
    new_route: int
    gain: float
    tau: float
    touched_tasks: frozenset[int]

    @property
    def delta(self) -> float:
        """PUU's sort key ``delta_i = tau_i / |B_i|`` (Algorithm 3, line 2)."""
        return self.tau / max(len(self.touched_tasks), 1)


def best_update(
    profile: StrategyProfile,
    user: int,
    *,
    pick: str = "first",
    rng: np.random.Generator | None = None,
) -> UpdateProposal | None:
    """Build the user's update proposal, or ``None`` if no improvement exists.

    ``pick`` selects among ties in the best route set: ``"first"`` (lowest
    index, deterministic) or ``"random"`` (requires ``rng``).
    """
    profits = candidate_profits(profile, user)
    current = profits[profile.route_of(user)]
    best = float(profits.max())
    if best <= current + IMPROVEMENT_EPS:
        return None
    candidates = [int(j) for j in np.flatnonzero(profits >= best - IMPROVEMENT_EPS)]
    if pick == "first":
        new_route = candidates[0]
    elif pick == "random":
        if rng is None:
            raise ValueError("pick='random' requires an rng")
        new_route = int(candidates[int(rng.integers(0, len(candidates)))])
    else:
        raise ValueError(f"unknown pick mode: {pick!r}")
    return make_proposal(profile, user, new_route, profits=profits)


def make_proposal(
    profile: StrategyProfile,
    user: int,
    new_route: int,
    *,
    profits: np.ndarray | None = None,
) -> UpdateProposal:
    """Package an explicit move as an :class:`UpdateProposal`.

    Pass ``profits`` (from :func:`candidate_profits`) to avoid recomputing.
    """
    game = profile.game
    if profits is None:
        profits = candidate_profits(profile, user)
    gain = float(profits[new_route] - profits[profile.route_of(user)])
    alpha = game.user_weights[user].alpha
    ga = game.arrays
    touched = frozenset(
        np.union1d(
            ga.route_tasks_sorted(ga.route_id(user, profile.route_of(user))),
            ga.route_tasks_sorted(ga.route_id(user, new_route)),
        ).tolist()
    )
    return UpdateProposal(
        user=user,
        new_route=int(new_route),
        gain=gain,
        tau=gain / alpha,
        touched_tasks=touched,
    )


# --------------------------------------------------------------------------
# Batched proposal engine
# --------------------------------------------------------------------------

_EMPTY_INTP = np.zeros(0, dtype=np.intp)
_EMPTY_F64 = np.zeros(0, dtype=float)


class ProposalBatch:
    """Struct-of-arrays batch of update proposals (one row per user).

    Rows are sorted by ``users`` (strictly ascending); every row is an
    *improving* proposal — non-improving users simply have no row.  The
    touched-task sets ``B_i`` are a CSR (``b_indptr``/``b_tasks``, each
    segment sorted unique) materialized lazily: SUU-style consumers
    (DGRN, BUAU) never pay for it, PUU consumers (MUUN) build it once
    per slot.

    :meth:`as_list` renders the batch as legacy :class:`UpdateProposal`
    objects — the thin view kept for the distributed agents and tests.
    """

    __slots__ = ("users", "new_routes", "gains", "taus", "_b_indptr",
                 "_b_tasks", "_touched_builder")

    def __init__(
        self,
        users: np.ndarray,
        new_routes: np.ndarray,
        gains: np.ndarray,
        taus: np.ndarray,
        b_indptr: np.ndarray | None = None,
        b_tasks: np.ndarray | None = None,
        touched_builder: Callable[[], tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> None:
        self.users = users
        self.new_routes = new_routes
        self.gains = gains
        self.taus = taus
        self._b_indptr = b_indptr
        self._b_tasks = b_tasks
        self._touched_builder = touched_builder

    @staticmethod
    def empty() -> "ProposalBatch":
        return ProposalBatch(
            _EMPTY_INTP, _EMPTY_INTP, _EMPTY_F64, _EMPTY_F64,
            np.zeros(1, dtype=np.intp), _EMPTY_INTP,
        )

    def __len__(self) -> int:
        return int(self.users.size)

    # ------------------------------------------------------- touched tasks
    def _materialize(self) -> None:
        if self._b_indptr is None:
            assert self._touched_builder is not None
            self._b_indptr, self._b_tasks = self._touched_builder()

    @property
    def b_indptr(self) -> np.ndarray:
        """CSR offsets of the per-proposal touched-task segments."""
        self._materialize()
        return self._b_indptr  # type: ignore[return-value]

    @property
    def b_tasks(self) -> np.ndarray:
        """Concatenated sorted-unique touched-task ids (``B_i`` per row)."""
        self._materialize()
        return self._b_tasks  # type: ignore[return-value]

    @property
    def b_sizes(self) -> np.ndarray:
        """``|B_i|`` per proposal."""
        return np.diff(self.b_indptr)

    @property
    def deltas(self) -> np.ndarray:
        """PUU's sort key ``delta_i = tau_i / max(|B_i|, 1)`` per proposal."""
        return self.taus / np.maximum(self.b_sizes, 1)

    def tasks_of(self, k: int) -> np.ndarray:
        """Sorted-unique touched-task ids of proposal row ``k``."""
        return self.b_tasks[self.b_indptr[k] : self.b_indptr[k + 1]]

    # ------------------------------------------------------------ consumers
    def triple(self, k: int) -> tuple[int, int, float]:
        """``(user, new_route, gain)`` of row ``k`` — the grant tuple."""
        return (int(self.users[k]), int(self.new_routes[k]),
                float(self.gains[k]))

    def as_list(self) -> list[UpdateProposal]:
        """Legacy :class:`UpdateProposal` objects (one per row)."""
        return [
            UpdateProposal(
                user=int(self.users[k]),
                new_route=int(self.new_routes[k]),
                gain=float(self.gains[k]),
                tau=float(self.taus[k]),
                touched_tasks=frozenset(self.tasks_of(k).tolist()),
            )
            for k in range(len(self))
        ]


def batch_candidate_profits(
    profile: StrategyProfile, users: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate profits of *all* routes of many users in one pass.

    Returns ``(profits, flat_g, r_indptr)``: ``profits[r_indptr[k] :
    r_indptr[k+1]]`` are ``P_i(r_j, s_{-i})`` for ``users[k]``'s routes
    (entries bitwise identical to :func:`~repro.core.profit.candidate_profits`),
    and ``flat_g`` holds the matching global route ids.

    ``users`` must be strictly ascending (unique).  The numeric core
    dispatches to the active kernel backend (see
    :mod:`repro.core.backend`); the numpy reference does one gather over
    the concatenated CSR slices + one ``np.add.reduceat``, with the
    per-user "remove my own contribution" step of ``counts_without``
    becoming a vectorized membership test of each gathered task against
    its user's *current* route via a merged ``(user, task)`` key search.
    """
    ga = profile.game.arrays
    users = np.asarray(users, dtype=np.intp)
    if users.size and np.any(np.diff(users) <= 0):
        raise ValueError("users must be strictly ascending")
    return ga.backend.batch_candidate_profits(
        ga, profile.counts, profile.choices, users
    )


def _union_csr(ga, old_g: np.ndarray, new_g: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-row sorted-unique union of two route task segments, as a CSR.

    Row ``k`` is ``B_k = L_{old_g[k]} | L_{new_g[k]}`` — one interleaved
    gather of the sorted segments, one lexsort, one adjacent-duplicate
    drop; no per-row Python loop.
    """
    k = old_g.size
    starts = np.empty(2 * k, dtype=np.intp)
    lens = np.empty(2 * k, dtype=np.intp)
    starts[0::2] = ga.indptr[old_g]
    starts[1::2] = ga.indptr[new_g]
    lens[0::2] = ga.route_len[old_g]
    lens[1::2] = ga.route_len[new_g]
    flat = gather_segments(ga.task_ids_sorted, starts, lens)
    owner = np.repeat(np.arange(k, dtype=np.intp), lens[0::2] + lens[1::2])
    order = np.lexsort((flat, owner))
    tasks = flat[order]
    rows = owner[order]
    if tasks.size:
        keep = np.ones(tasks.size, dtype=bool)
        keep[1:] = (rows[1:] != rows[:-1]) | (tasks[1:] != tasks[:-1])
        tasks = tasks[keep]
        rows = rows[keep]
    indptr = np.concatenate(
        [[0], np.cumsum(np.bincount(rows, minlength=k))]
    ).astype(np.intp)
    return indptr, tasks


def batch_best_updates(
    profile: StrategyProfile,
    users: np.ndarray | Sequence[int],
    *,
    pick: str = "first",
    rng: np.random.Generator | None = None,
) -> ProposalBatch:
    """Best-update proposals of many users in one vectorized sweep.

    Equivalent to ``[best_update(profile, u, pick=pick, rng=rng) for u in
    users]`` with the ``None`` results dropped — bit-for-bit, including
    the strict-improvement filter, tie-breaking, and (for
    ``pick="random"``) the RNG draw sequence: one ``rng.integers(0,
    n_candidates)`` per improving user in ascending user order, exactly
    like the scalar loop.

    ``users`` must be strictly ascending.  The heavy lifting (candidate
    profits) is one gather + ``reduceat`` over the concatenated CSR
    slices; per-user argmax/max are segmented ``reduceat`` calls; the
    touched-task CSR is built by :func:`_union_csr`.
    """
    users = np.asarray(users, dtype=np.intp)
    if users.size == 0:
        return ProposalBatch.empty()
    profits, flat_g, r_indptr = batch_candidate_profits(profile, users)
    ga = profile.game.arrays
    backend = ga.backend
    starts = r_indptr[:-1]
    best = backend.segmented_best(profits, r_indptr)
    cur = profits[starts + profile.choices[users]]
    improving = best > cur + IMPROVEMENT_EPS
    sel = np.flatnonzero(improving)
    if sel.size == 0:
        return ProposalBatch.empty()
    if pick == "first":
        # Tie-break: first route within IMPROVEMENT_EPS of the per-user
        # maximum (comparisons are exact, so backends agree bitwise).
        chosen_flat = backend.segmented_first_within(
            profits, r_indptr, best - IMPROVEMENT_EPS
        )[sel]
    elif pick == "random":
        if rng is None:
            raise ValueError("pick='random' requires an rng")
        # Tie set stays plain numpy: given `profits`, the draws below are
        # backend-independent and must replay the scalar RNG stream.
        cand = profits >= np.repeat(best - IMPROVEMENT_EPS, np.diff(r_indptr))
        n_cand = np.add.reduceat(cand.astype(np.intp), starts)
        true_pos = np.flatnonzero(cand)
        true_indptr = np.cumsum(n_cand) - n_cand
        chosen_flat = np.empty(sel.size, dtype=np.intp)
        # The draws themselves must stay a loop to replay the scalar
        # RNG stream; everything costly around them is vectorized.
        for j, k in enumerate(sel):
            draw = int(rng.integers(0, int(n_cand[k])))
            chosen_flat[j] = true_pos[true_indptr[k] + draw]
    else:
        raise ValueError(f"unknown pick mode: {pick!r}")
    sel_users = users[sel]
    new_g = flat_g[chosen_flat]
    new_routes = new_g - ga.user_route_offset[sel_users]
    gains = profits[chosen_flat] - cur[sel]
    taus = gains / ga.alpha[sel_users]
    old_g = ga.chosen_route_ids(profile.choices)[sel_users]
    b_indptr, b_tasks = _union_csr(ga, old_g, new_g)
    return ProposalBatch(sel_users, new_routes, gains, taus, b_indptr, b_tasks)


def single_best_update(
    profile: StrategyProfile,
    user: int,
    *,
    pick: str = "first",
    rng: np.random.Generator | None = None,
) -> UpdateProposal | None:
    """One user's best update via the batched engine (legacy object view).

    Drop-in for :func:`best_update` on the production path (BATS, the
    asynchronous dynamics): same result, same RNG consumption, but served
    by :func:`batch_best_updates` so every allocator exercises one code
    path.
    """
    batch = batch_best_updates(
        profile, np.asarray([user], dtype=np.intp), pick=pick, rng=rng
    )
    if not len(batch):
        return None
    return batch.as_list()[0]


def greedy_disjoint(
    order: np.ndarray | Sequence[int],
    b_indptr: np.ndarray,
    b_tasks: np.ndarray,
    num_tasks: int,
) -> list[int]:
    """Algorithm 3's greedy disjoint scan over a touched-task CSR.

    Walks proposal rows in ``order`` (already sorted by the scheduler's
    priority), granting each row whose ``B_i`` hits no occupied task and
    marking its tasks in a task-occupancy mask — the vectorized
    replacement for Python-set intersection/union.  Rows with empty
    ``B_i`` never conflict and are always granted.  Returns granted row
    indices in grant (priority) order.

    The occupancy mask is bit-packed: every row's ``B_i`` is compiled
    (vectorized) into a ``num_tasks``-bit integer, so the inherently
    sequential greedy scan costs one AND + one OR per row instead of a
    NumPy slice + compare.
    """
    n_rows = len(b_indptr) - 1
    if n_rows <= 0:
        return []
    words = (num_tasks >> 6) + 1
    masks = np.zeros(n_rows * words, dtype=np.uint64)
    if b_tasks.size:
        rows = np.repeat(
            np.arange(n_rows, dtype=np.intp), np.diff(b_indptr)
        )
        cell = rows * words + (b_tasks >> 6)
        bit = np.uint64(1) << (b_tasks & 63).astype(np.uint64)
        if np.any(cell[1:] < cell[:-1]):  # callers may pass unsorted B_i
            sort = np.argsort(cell, kind="stable")
            cell, bit = cell[sort], bit[sort]
        starts = np.flatnonzero(
            np.concatenate(([True], cell[1:] != cell[:-1]))
        )
        masks[cell[starts]] = np.bitwise_or.reduceat(bit, starts)
    nb = words * 8
    buf = masks.astype("<u8", copy=False).tobytes()
    row_bits = [
        int.from_bytes(buf[k * nb : (k + 1) * nb], "little")
        for k in range(n_rows)
    ]
    occupied = 0
    granted: list[int] = []
    for k in order:
        m = row_bits[k]
        if m & occupied:
            continue
        occupied |= m
        granted.append(int(k))
    return granted
