"""Better/best response updates (Definition 1) and update proposals.

The *best route set* ``Delta_i(t)`` of Algorithm 1 (line 10) is the set of
routes that both maximize the user's profit given ``s_{-i}`` and strictly
improve on the current route.  An :class:`UpdateProposal` packages what a
user sends to the platform when requesting an update (Algorithm 3's inputs):
the profit gain scaled by ``1/alpha_i`` (``tau_i``) and the set of tasks
jointly touched by the old and new routes (``B_i``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profile import StrategyProfile
from repro.core.profit import candidate_profits

# Strict-improvement tolerance: float noise below this is not an incentive
# to move, which also guarantees termination of response dynamics.
IMPROVEMENT_EPS = 1e-9


def better_responses(profile: StrategyProfile, user: int) -> list[int]:
    """Routes strictly better than the current one (better-response set)."""
    profits = candidate_profits(profile, user)
    current = profits[profile.route_of(user)]
    return [int(j) for j in np.flatnonzero(profits > current + IMPROVEMENT_EPS)]


def best_response_set(profile: StrategyProfile, user: int) -> list[int]:
    """``Delta_i(t)``: profit-maximizing routes that strictly improve.

    Empty when the current route is already (within tolerance) optimal —
    exactly Algorithm 1's "no update request" condition.
    """
    profits = candidate_profits(profile, user)
    current = profits[profile.route_of(user)]
    best = float(profits.max())
    if best <= current + IMPROVEMENT_EPS:
        return []
    return [int(j) for j in np.flatnonzero(profits >= best - IMPROVEMENT_EPS)]


@dataclass(frozen=True, slots=True)
class UpdateProposal:
    """A user's request to switch routes.

    Attributes
    ----------
    user:
        Requesting user id.
    new_route:
        The chosen element of the best route set.
    gain:
        ``P_i(s_i', s_{-i}) - P_i(s)`` — the raw profit improvement.
    tau:
        ``gain / alpha_i`` — the potential-function improvement the move
        realizes (Eq. 11), PUU's objective contribution.
    touched_tasks:
        ``B_i``: tasks covered by the old or the new route (their counters
        change or their shares are re-split when the move executes).
    """

    user: int
    new_route: int
    gain: float
    tau: float
    touched_tasks: frozenset[int]

    @property
    def delta(self) -> float:
        """PUU's sort key ``delta_i = tau_i / |B_i|`` (Algorithm 3, line 2)."""
        return self.tau / max(len(self.touched_tasks), 1)


def best_update(
    profile: StrategyProfile,
    user: int,
    *,
    pick: str = "first",
    rng: np.random.Generator | None = None,
) -> UpdateProposal | None:
    """Build the user's update proposal, or ``None`` if no improvement exists.

    ``pick`` selects among ties in the best route set: ``"first"`` (lowest
    index, deterministic) or ``"random"`` (requires ``rng``).
    """
    profits = candidate_profits(profile, user)
    current = profits[profile.route_of(user)]
    best = float(profits.max())
    if best <= current + IMPROVEMENT_EPS:
        return None
    candidates = [int(j) for j in np.flatnonzero(profits >= best - IMPROVEMENT_EPS)]
    if pick == "first":
        new_route = candidates[0]
    elif pick == "random":
        if rng is None:
            raise ValueError("pick='random' requires an rng")
        new_route = int(candidates[int(rng.integers(0, len(candidates)))])
    else:
        raise ValueError(f"unknown pick mode: {pick!r}")
    return make_proposal(profile, user, new_route, profits=profits)


def make_proposal(
    profile: StrategyProfile,
    user: int,
    new_route: int,
    *,
    profits: np.ndarray | None = None,
) -> UpdateProposal:
    """Package an explicit move as an :class:`UpdateProposal`.

    Pass ``profits`` (from :func:`candidate_profits`) to avoid recomputing.
    """
    game = profile.game
    if profits is None:
        profits = candidate_profits(profile, user)
    gain = float(profits[new_route] - profits[profile.route_of(user)])
    alpha = game.user_weights[user].alpha
    ga = game.arrays
    touched = frozenset(
        np.union1d(
            ga.route_tasks_sorted(ga.route_id(user, profile.route_of(user))),
            ga.route_tasks_sorted(ga.route_id(user, new_route)),
        ).tolist()
    )
    return UpdateProposal(
        user=user,
        new_route=int(new_route),
        gain=gain,
        tau=gain / alpha,
        touched_tasks=touched,
    )
