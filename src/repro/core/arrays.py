"""Flat CSR representation of the game — the compiled array core.

Every hot kernel of the response dynamics (Alg. 1-3) reduces to gathers
and segment reductions over one shared layout, built once per
:class:`~repro.core.game.RouteNavigationGame`:

- Routes are numbered **globally**: user ``i``'s route ``j`` has the flat
  id ``g = user_route_offset[i] + j``; ``user_route_offset`` has ``M + 1``
  entries so ``user_route_offset[i]:user_route_offset[i+1]`` slices user
  ``i``'s routes out of any per-route vector.
- Route→task incidence is CSR: global route ``g`` covers
  ``task_ids[indptr[g]:indptr[g+1]]``.  ``task_ids_sorted`` holds the same
  segments with each segment sorted (symmetric differences via
  :func:`numpy.setdiff1d` with ``assume_unique=True``).
- Per-route scalars are flat ``(R,)`` vectors: ``route_cost`` (the
  ``beta_i d + gamma_i b`` part of Eq. 2), ``route_pot_cost``
  (``route_cost / alpha_i``, Eq. 8), ``route_detour`` (``h(r)``),
  ``route_congestion`` (``c(r)``), ``route_len`` (segment lengths) and
  ``route_user`` (owning user).

The legacy ragged accessors on the game (``covered_tasks``,
``route_cost[i]``) are *views* into these arrays, so there is exactly one
source of truth for coverage/cost data.  See ``docs/architecture.md`` for
the layout diagram and invariants.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.shm import BufferTable, SharedBlock

__all__ = ["GameArrays", "gather_segments", "segment_sums"]


def gather_segments(
    data: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Concatenate ``data[starts[k] : starts[k] + lengths[k]]`` for all ``k``.

    Fully vectorized multi-segment gather: one ``arange`` shifted per
    segment by ``repeat``; zero-length segments contribute nothing.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=data.dtype)
    ends = np.cumsum(lengths)
    idx = np.arange(total) + np.repeat(starts - (ends - lengths), lengths)
    return data[idx]


def segment_sums(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Per-segment sums of consecutive ``values`` runs, tolerating empties.

    ``values`` must be the in-order concatenation of the segments.
    ``np.add.reduceat`` has two edge quirks this wraps away: an offset
    equal to ``len(values)`` raises, and a zero-length segment copies the
    element at its offset instead of summing nothing.  Empty segments are
    dropped before the reduction (their starts would also corrupt the
    neighbouring ranges) and come back as exact ``0.0``.
    """
    out = np.zeros(len(lengths))
    if values.size == 0:
        return out
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(values, starts[nonempty])
    return out


class GameArrays:
    """Compiled flat-array layout shared by every coverage/cost consumer.

    Construction happens once, inside ``RouteNavigationGame.__post_init__``;
    all inputs are already validated there.  Kernels never loop over routes
    or tasks in Python.
    """

    __slots__ = (
        "num_users",
        "num_tasks",
        "num_routes_total",
        "user_route_offset",
        "task_ids",
        "task_ids_sorted",
        "indptr",
        "route_len",
        "route_user",
        "route_cost",
        "route_pot_cost",
        "route_detour",
        "route_congestion",
        "alpha",
        "base_rewards",
        "reward_increments",
        "_task_user_csr",
        "_user_task_csr",
        "_shm",
        "_backend",
    )

    #: The immutable buffers of the layout, in manifest order — everything
    #: a :meth:`from_table` reconstruction needs (the three scalar sizes
    #: are derived from buffer shapes).
    BUFFER_FIELDS = (
        "user_route_offset",
        "task_ids",
        "task_ids_sorted",
        "indptr",
        "route_len",
        "route_user",
        "route_cost",
        "route_pot_cost",
        "route_detour",
        "route_congestion",
        "alpha",
        "base_rewards",
        "reward_increments",
    )

    def __init__(
        self,
        *,
        route_counts: Sequence[int],
        flat_task_ids: np.ndarray,
        indptr: np.ndarray,
        route_detour: np.ndarray,
        route_congestion: np.ndarray,
        route_cost: np.ndarray,
        route_pot_cost: np.ndarray,
        alpha: np.ndarray,
        base_rewards: np.ndarray,
        reward_increments: np.ndarray,
    ) -> None:
        counts = np.asarray(route_counts, dtype=np.intp)
        self.num_users = int(len(counts))
        self.num_tasks = int(len(base_rewards))
        self.num_routes_total = int(counts.sum())
        self.user_route_offset = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.intp)
        self.task_ids = np.ascontiguousarray(flat_task_ids, dtype=np.intp)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.intp)
        self.route_len = np.diff(self.indptr)
        self.route_user = np.repeat(
            np.arange(self.num_users, dtype=np.intp), counts
        )
        self.route_cost = np.ascontiguousarray(route_cost, dtype=float)
        self.route_pot_cost = np.ascontiguousarray(route_pot_cost, dtype=float)
        self.route_detour = np.ascontiguousarray(route_detour, dtype=float)
        self.route_congestion = np.ascontiguousarray(
            route_congestion, dtype=float
        )
        self.alpha = np.ascontiguousarray(alpha, dtype=float)
        self.base_rewards = base_rewards
        self.reward_increments = reward_increments
        # Per-segment sorted copy (the CSR segments keep route order):
        # lexsort by (value within segment, segment id) sorts each segment
        # in place without a Python loop over routes.
        if self.task_ids.size:
            seg_of = np.repeat(
                np.arange(self.num_routes_total, dtype=np.intp), self.route_len
            )
            order = np.lexsort((self.task_ids, seg_of))
            self.task_ids_sorted = self.task_ids[order]
        else:
            self.task_ids_sorted = self.task_ids.copy()
        self._task_user_csr: tuple[np.ndarray, np.ndarray] | None = None
        self._user_task_csr: tuple[np.ndarray, np.ndarray] | None = None
        self._shm: SharedBlock | None = None
        self._backend = None

    # ------------------------------------------------------ backend dispatch
    @property
    def backend(self):
        """The :class:`~repro.core.backend.KernelBackend` hot kernels run on.

        Per-instance override first, else the ambient default (process
        default / ``REPRO_BACKEND`` / numpy) — resolved per call, so
        :func:`repro.core.backend.use_backend` scopes apply to instances
        without an override.
        """
        if self._backend is not None:
            return self._backend
        from repro.core.backend import current_backend

        return current_backend()

    def set_backend(self, backend) -> "GameArrays":
        """Pin this instance to a backend (name or instance); ``None``
        clears the override back to the ambient default.  Returns
        ``self`` for chaining."""
        if backend is None or not isinstance(backend, str):
            self._backend = backend
        else:
            from repro.core.backend import get_backend

            self._backend = get_backend(backend)
        return self

    # -------------------------------------------------------- buffer protocol
    def buffer_table(self) -> BufferTable:
        """Manifest of this instance's immutable buffers (dtype/shape/offset)."""
        return BufferTable.build(
            {name: getattr(self, name) for name in self.BUFFER_FIELDS}
        )

    def to_shared(
        self, *, name: str | None = None
    ) -> tuple[SharedBlock, BufferTable]:
        """Copy every buffer into one shared-memory segment.

        Returns the owning :class:`SharedBlock` (caller manages its
        lifetime — closing it unlinks the segment) plus the picklable
        :class:`BufferTable` any process needs to map it back with
        :meth:`from_shared`.
        """
        table = self.buffer_table()
        block = SharedBlock.create(table.total_bytes, name=name)
        table.pack_into(
            block.buf, {f: getattr(self, f) for f in self.BUFFER_FIELDS}
        )
        return block, table

    @classmethod
    def from_table(
        cls,
        table: BufferTable,
        buf,
        *,
        base: int = 0,
        shm: SharedBlock | None = None,
    ) -> "GameArrays":
        """Reconstruct an instance as zero-copy read-only views over ``buf``.

        ``shm`` (if given) is pinned on the instance so the mapping cannot
        be reclaimed while the views are alive.  The three scalar sizes are
        derived from buffer shapes; the lazy inverted CSRs start empty.
        """
        views = table.views(buf, base=base)
        self = object.__new__(cls)
        for field in cls.BUFFER_FIELDS:
            setattr(self, field, views[field])
        self.num_users = int(self.user_route_offset.size) - 1
        self.num_tasks = int(self.base_rewards.size)
        self.num_routes_total = int(self.route_cost.size)
        self._task_user_csr = None
        self._user_task_csr = None
        self._shm = shm
        self._backend = None
        return self

    @classmethod
    def from_shared(cls, name: str, table: BufferTable) -> "GameArrays":
        """Attach to a segment published by :meth:`to_shared` (zero-copy)."""
        block = SharedBlock.attach(name)
        return cls.from_table(table, block.buf, shm=block)

    def __getstate__(self) -> dict:
        # Buffers pickle by value (a shm-backed instance round-trips to a
        # plain in-process one); the segment handle and the lazy inverted
        # CSRs are process-local and rebuilt on demand.
        state = {f: np.ascontiguousarray(getattr(self, f)) for f in self.BUFFER_FIELDS}
        state["num_users"] = self.num_users
        state["num_tasks"] = self.num_tasks
        state["num_routes_total"] = self.num_routes_total
        # A pinned backend travels by *name*; the receiving process
        # re-resolves it (and falls back with a warning if unavailable).
        if self._backend is not None:
            state["backend"] = self._backend.name
        return state

    def __setstate__(self, state: dict) -> None:
        backend_name = state.pop("backend", None)
        for name, value in state.items():
            setattr(self, name, value)
        self._task_user_csr = None
        self._user_task_csr = None
        self._shm = None
        self._backend = None
        if backend_name is not None:
            self.set_backend(backend_name)

    # ------------------------------------------------------------- addressing
    def route_id(self, user: int, route: int) -> int:
        """Global route id of ``(user, route)``."""
        return int(self.user_route_offset[user]) + int(route)

    def user_slice(self, user: int) -> slice:
        """Slice of user ``user``'s routes in any per-route vector."""
        return slice(
            int(self.user_route_offset[user]),
            int(self.user_route_offset[user + 1]),
        )

    def route_tasks(self, g: int) -> np.ndarray:
        """Task-id view of global route ``g`` (route order)."""
        return self.task_ids[self.indptr[g] : self.indptr[g + 1]]

    def route_tasks_sorted(self, g: int) -> np.ndarray:
        """Sorted task-id view of global route ``g``."""
        return self.task_ids_sorted[self.indptr[g] : self.indptr[g + 1]]

    def chosen_route_ids(self, choices: np.ndarray) -> np.ndarray:
        """Global route ids of a full choice vector ``s``."""
        return self.user_route_offset[:-1] + np.asarray(choices, dtype=np.intp)

    def routes_of_users(self, users: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All global route ids of ``users``, concatenated, with a CSR indptr.

        ``flat_g[r_indptr[k] : r_indptr[k+1]]`` are user ``users[k]``'s
        routes in order — the row-expansion primitive of the batched
        proposal engine (:func:`repro.core.responses.batch_candidate_profits`).
        """
        off = self.user_route_offset
        r_counts = off[users + 1] - off[users]
        r_indptr = np.concatenate(([0], np.cumsum(r_counts))).astype(np.intp)
        total = int(r_indptr[-1])
        if total == 0:
            return np.zeros(0, dtype=np.intp), r_indptr
        flat_g = np.arange(total, dtype=np.intp) + np.repeat(
            off[users] - r_indptr[:-1], r_counts
        )
        return flat_g, r_indptr

    # ---------------------------------------------------------------- kernels
    def counts_from_choices(self, choices: np.ndarray) -> np.ndarray:
        """Participant counts ``n_k(s)``: one gather + one ``bincount``."""
        g = self.chosen_route_ids(choices)
        flat = gather_segments(self.task_ids, self.indptr[g], self.route_len[g])
        return np.bincount(flat, minlength=self.num_tasks).astype(np.intp)

    def candidate_profits(self, user: int, counts_wo: np.ndarray) -> np.ndarray:
        """``P_i(r_j, s_{-i})`` for every route ``j`` of ``user`` at once.

        ``counts_wo`` are the counts with the user's own contribution
        removed; each candidate is evaluated at ``n_k(s_{-i}) + 1`` on its
        tasks.  Dispatches to the active kernel backend (the numpy
        reference does one gather over the user's whole CSR slice plus
        one segmented reduction — no per-route Python loop).
        """
        return self.backend.candidate_profits(self, user, counts_wo)

    def chosen_segment_sums(
        self, choices: np.ndarray, per_task_values: np.ndarray
    ) -> np.ndarray:
        """Per-user sum of ``per_task_values`` over the chosen route's tasks.

        The reward-gather primitive behind ``all_profits`` and
        ``per_user_rewards``: one multi-segment gather + one reduction.
        """
        g = self.chosen_route_ids(choices)
        lengths = self.route_len[g]
        flat = gather_segments(self.task_ids, self.indptr[g], lengths)
        ends = np.cumsum(lengths)
        return segment_sums(per_task_values[flat], ends - lengths, lengths)

    def changed_tasks(self, old_g: int, new_g: int) -> tuple[np.ndarray, np.ndarray]:
        """``(gained, lost)`` task ids of a route switch — the symmetric
        difference of the two segments, each part sorted."""
        old_ids = self.route_tasks_sorted(old_g)
        new_ids = self.route_tasks_sorted(new_g)
        gained = np.setdiff1d(new_ids, old_ids, assume_unique=True)
        lost = np.setdiff1d(old_ids, new_ids, assume_unique=True)
        return gained, lost

    def potential_delta(
        self, counts: np.ndarray, old_g: int, new_g: int
    ) -> float:
        """``phi(new, s_{-i}) - phi(s)`` from current counts (Eq. 8 telescoped).

        A task gained at count ``n`` adds ``w_k(n+1)/(n+1)``; a task lost at
        count ``n`` removes ``w_k(n)/n``; only the symmetric difference
        contributes.  Dispatches to the active kernel backend.
        """
        return self.backend.potential_delta(self, counts, old_g, new_g)

    def user_coverage_matrix(self, user: int) -> np.ndarray:
        """Dense one-hot ``(num_routes(user), num_tasks)`` coverage matrix.

        Derived from the CSR segments; used by the batch evaluator for
        profile-axis vectorization.
        """
        sl = self.user_slice(user)
        rows = sl.stop - sl.start
        cov = np.zeros((rows, self.num_tasks))
        lo, hi = int(self.indptr[sl.start]), int(self.indptr[sl.stop])
        if hi > lo:
            r = np.repeat(np.arange(rows), self.route_len[sl])
            cov[r, self.task_ids[lo:hi]] = 1.0
        return cov

    # --------------------------------------------------------- derived CSRs
    def task_user_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``task -> users with any route covering it`` (built lazily).

        Returns ``(indptr, users)`` with ``len(indptr) == num_tasks + 1``;
        task ``k``'s users are ``users[indptr[k]:indptr[k+1]]``, sorted and
        unique.  Drives :class:`~repro.algorithms.base.ProposalCache`
        invalidation.
        """
        if self._task_user_csr is None:
            self._task_user_csr = self._incidence_csr(by_task=True)
        return self._task_user_csr

    def user_task_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """CSR ``user -> tasks covered by any of its routes`` (built lazily).

        The platform's per-user visibility restriction (Alg. 2 line 4).
        """
        if self._user_task_csr is None:
            self._user_task_csr = self._incidence_csr(by_task=False)
        return self._user_task_csr

    def _incidence_csr(self, *, by_task: bool) -> tuple[np.ndarray, np.ndarray]:
        t = self.task_ids
        u = np.repeat(self.route_user, self.route_len)
        n_rows = self.num_tasks if by_task else self.num_users
        if t.size == 0:
            return np.zeros(n_rows + 1, dtype=np.intp), np.zeros(0, dtype=np.intp)
        if by_task:
            key = t.astype(np.int64) * max(self.num_users, 1) + u
            modulus = max(self.num_users, 1)
        else:
            key = u.astype(np.int64) * max(self.num_tasks, 1) + t
            modulus = max(self.num_tasks, 1)
        uniq = np.unique(key)
        row_of = (uniq // modulus).astype(np.intp)
        col_of = (uniq % modulus).astype(np.intp)
        indptr = np.zeros(n_rows + 1, dtype=np.intp)
        np.cumsum(np.bincount(row_of, minlength=n_rows), out=indptr[1:])
        return indptr, col_of

    def gather_rows(
        self, indptr: np.ndarray, data: np.ndarray, row_ids: np.ndarray
    ) -> np.ndarray:
        """Concatenated ``data`` segments of ``row_ids`` from a derived CSR."""
        starts = indptr[row_ids]
        lengths = indptr[np.asarray(row_ids) + 1] - starts
        return gather_segments(data, starts, lengths)
