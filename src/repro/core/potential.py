"""The weighted potential function (Eq. 8) and its O(delta) move deltas.

``phi(s) = sum_{k in L} sum_{q=1}^{n_k(s)} w_k(q)/q
         - sum_i (beta_i/alpha_i) d(s_i) - sum_i (gamma_i/alpha_i) b(s_i)``

Theorem 2 establishes ``P_i(s') - P_i(s) = alpha_i * (phi(s') - phi(s))``
for any unilateral move of user ``i``; tests verify this identity exactly
(up to float tolerance) on random instances.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.obs import histogram as _obs_histogram
from repro.obs.runtime import RUNTIME as _OBS


def potential(profile: StrategyProfile) -> float:
    """Full evaluation of ``phi(s)``."""
    game = profile.game
    ga = game.arrays
    task_part = float(game.tasks.potential_terms(profile.counts).sum())
    cost_part = float(
        ga.route_pot_cost[ga.chosen_route_ids(profile.choices)].sum()
    )
    return task_part - cost_part


def potential_delta(profile: StrategyProfile, user: int, new_route: int) -> float:
    """``phi(new_route, s_{-i}) - phi(s)`` without mutating the profile.

    Only the tasks in the symmetric difference of the old and new routes
    contribute: a task gained at count ``n`` adds ``w_k(n+1)/(n+1)``, a task
    dropped at count ``n`` removes ``w_k(n)/n`` (telescoping of the prefix
    sums in Eq. 8).  The numeric core dispatches to the active kernel
    backend (:mod:`repro.core.backend`); the numpy reference takes the
    symmetric difference of the game's sorted CSR segments
    (``setdiff1d`` with ``assume_unique``) — no Python sets or per-task
    loops on the hot path.
    """
    ga = profile.game.arrays
    old_g = ga.route_id(user, profile.route_of(user))
    new_g = ga.route_id(user, new_route)
    if _OBS.enabled:
        t0 = time.perf_counter()
        out = ga.potential_delta(profile.counts, old_g, new_g)
        _obs_histogram("core.kernel_seconds", kernel="potential_delta").observe(
            time.perf_counter() - t0
        )
        return out
    return ga.potential_delta(profile.counts, old_g, new_g)


def potential_trajectory(
    game: RouteNavigationGame,
    initial_choices: np.ndarray,
    moves: list[tuple[int, int]],
) -> np.ndarray:
    """Potential value after each move of a recorded move sequence.

    ``moves`` is a list of ``(user, new_route)`` pairs; entry 0 of the
    returned array is the initial potential, entry ``t`` the potential after
    the first ``t`` moves.  Uses the incremental delta, validating it stays
    consistent with the profile's counters.
    """
    profile = StrategyProfile(game, initial_choices)
    values = np.empty(len(moves) + 1)
    values[0] = potential(profile)
    for t, (user, new_route) in enumerate(moves, start=1):
        values[t] = values[t - 1] + potential_delta(profile, user, new_route)
        profile.move(user, new_route)
    return values
