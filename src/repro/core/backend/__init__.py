"""Backend registry: resolve, cache, and fall back between kernel backends.

Selection precedence (first hit wins):

1. an explicit ``backend=`` argument on the call site
   (:class:`~repro.core.arrays.GameArrays`, the allocators,
   :class:`~repro.serve.session.ServeSession`, the CLI ``--backend``);
2. a per-``GameArrays`` override installed with
   :meth:`~repro.core.arrays.GameArrays.set_backend`;
3. the process-global default installed with :func:`set_backend`;
4. the ``REPRO_BACKEND`` environment variable;
5. ``"numpy"``.

Unavailable backends never raise at selection time: :func:`get_backend`
falls back to the numpy reference and emits **one**
:class:`BackendFallbackWarning` per (name, reason) per process — requesting
``numba`` on a box without numba degrades, loudly but exactly once, to
correct-but-slower kernels.  Strict callers can use
:func:`get_backend(name, strict=True) <get_backend>` to surface the
underlying :class:`ImportError` instead.

Backend instances are process-local singletons (compiled-artifact and
device caches live on them), created lazily on first request.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from typing import Iterator

from repro.core.backend.base import KernelBackend
from repro.core.backend.numpy_backend import NumpyBackend

__all__ = [
    "BackendFallbackWarning",
    "KernelBackend",
    "NumpyBackend",
    "available_backends",
    "current_backend",
    "get_backend",
    "set_backend",
    "use_backend",
]

ENV_VAR = "REPRO_BACKEND"
DEFAULT = "numpy"

#: name -> (module, class) for lazy construction; numpy is eager because it
#: is the guaranteed fallback and costs nothing to build.
_LAZY = {
    "numba": ("repro.core.backend.numba_backend", "NumbaBackend"),
    "cupy": ("repro.core.backend.cupy_backend", "CupyBackend"),
}

_instances: dict[str, KernelBackend] = {}
_warned: set[str] = set()
_process_default: str | None = None


class BackendFallbackWarning(UserWarning):
    """A requested backend is unavailable; the numpy reference is used."""


def _build(name: str) -> KernelBackend:
    if name == "numpy":
        return NumpyBackend()
    module_name, cls_name = _LAZY[name]
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, cls_name)()


def get_backend(name: str | None = None, *, strict: bool = False) -> KernelBackend:
    """Resolve ``name`` (or the ambient default) to a backend instance.

    Unknown or unimportable names fall back to numpy with a single
    :class:`BackendFallbackWarning` per process, unless ``strict=True``
    in which case the underlying error propagates.
    """
    if name is None:
        name = _default_name()
    name = name.strip().lower()
    inst = _instances.get(name)
    if inst is not None:
        return inst
    if name != "numpy" and name not in _LAZY:
        if strict:
            raise ValueError(
                f"unknown backend {name!r}; known: {sorted(('numpy', *_LAZY))}"
            )
        _warn_fallback(name, "unknown backend name")
        return get_backend("numpy")
    try:
        inst = _build(name)
    except Exception as exc:  # ImportError, missing device, ...
        if strict:
            raise
        _warn_fallback(name, f"{type(exc).__name__}: {exc}")
        return get_backend("numpy")
    _instances[name] = inst
    return inst


def _warn_fallback(name: str, reason: str) -> None:
    key = f"{name}:{reason}"
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(
        f"kernel backend {name!r} unavailable ({reason}); "
        f"falling back to 'numpy'",
        BackendFallbackWarning,
        stacklevel=3,
    )
    from repro import obs

    if obs.enabled():
        obs.counter("core.backend_fallback", requested=name).inc()


def _default_name() -> str:
    if _process_default is not None:
        return _process_default
    return os.environ.get(ENV_VAR, DEFAULT)


def set_backend(name: str) -> KernelBackend:
    """Install ``name`` as the process-global default and return the
    resolved instance (after fallback, so the return value reports what
    will actually run)."""
    global _process_default
    inst = get_backend(name)
    _process_default = inst.name
    return inst


def current_backend() -> KernelBackend:
    """The backend ambient code will get: process default, else
    ``REPRO_BACKEND``, else numpy."""
    return get_backend(None)


@contextlib.contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily install ``name`` as the process default (test helper)."""
    global _process_default
    prev = _process_default
    inst = set_backend(name)
    try:
        yield inst
    finally:
        _process_default = prev


def available_backends() -> list[str]:
    """Names that resolve to a working backend on this machine, in
    registry order with numpy first.  Probes quietly (no fallback
    warnings) and caches via the instance table."""
    names = ["numpy"]
    for name in _LAZY:
        if name in _instances:
            names.append(name)
            continue
        try:
            _instances[name] = _build(name)
        except Exception:
            continue
        names.append(name)
    return names


def _record_warmup(backend: KernelBackend, seconds: float) -> None:
    """Telemetry hook called by backends at the end of :meth:`warmup`."""
    from repro import obs

    if obs.enabled():
        obs.histogram(
            "core.jit_warmup_seconds", backend=backend.name
        ).observe(seconds)
        obs.gauge("core.backend_info", backend=backend.name).set(1.0)
