"""The reference backend: the loop-free NumPy kernels, extracted verbatim.

This is the code that used to live inline in
:class:`~repro.core.arrays.GameArrays` and
:mod:`repro.core.responses` before the backend seam — gather +
``np.add.reduceat`` for profit sums, ``maximum``/``minimum.reduceat``
for the segmented argmax, sorted-segment ``setdiff1d`` for potential
deltas.  It is the default backend and the correctness anchor: every
other backend is certified against it (and it, in turn, against the
scalar oracles in :mod:`repro.core.reference`).  Moving the bodies here
changed no operation and no operand order, so results are bitwise
identical to the pre-seam kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend.base import KernelBackend

__all__ = ["NumpyBackend"]

_EMPTY_INTP = np.zeros(0, dtype=np.intp)
_EMPTY_F64 = np.zeros(0, dtype=float)

# Membership in batch_candidate_profits uses a dense (user, task) boolean
# table up to this many cells (16M = 16 MB transient); beyond that it falls
# back to a binary search over merged keys.  Both paths produce identical
# bits.
_DENSE_MEMBER_CELLS = 1 << 24


class NumpyBackend(KernelBackend):
    """Pure-NumPy kernels — the default and the bitwise reference."""

    name = "numpy"
    rtol = 0.0

    # ------------------------------------------------------------- kernels
    def candidate_profits(self, ga, user, counts_wo):
        from repro.core.arrays import segment_sums

        sl = ga.user_slice(user)
        lo, hi = int(ga.indptr[sl.start]), int(ga.indptr[sl.stop])
        seg = ga.task_ids[lo:hi]
        if seg.size:
            n = counts_wo[seg].astype(float) + 1.0
            terms = (
                ga.base_rewards[seg] + ga.reward_increments[seg] * np.log(n)
            ) / n
            rewards = segment_sums(
                terms, ga.indptr[sl.start : sl.stop] - lo, ga.route_len[sl]
            )
        else:
            rewards = np.zeros(sl.stop - sl.start)
        return ga.alpha[user] * rewards - ga.route_cost[sl]

    def batch_candidate_profits(self, ga, counts, choices, users):
        from repro.core.arrays import gather_segments, segment_sums

        flat_g, r_indptr = ga.routes_of_users(users)
        if flat_g.size == 0:
            return _EMPTY_F64, _EMPTY_INTP, r_indptr
        lengths = ga.route_len[flat_g]
        if flat_g.size == ga.num_routes_total:
            # Full sweep (every user dirty): the concatenated segments are
            # the whole CSR data array — skip the gather.
            flat_tasks = ga.task_ids
        else:
            flat_tasks = gather_segments(ga.task_ids, ga.indptr[flat_g], lengths)
        route_starts = np.cumsum(lengths) - lengths
        if flat_tasks.size:
            # member[e] = True iff element e's task is covered by its user's
            # current route (exactly what counts_without subtracts).
            nt = np.int64(max(ga.num_tasks, 1))
            elem_user = np.repeat(ga.route_user[flat_g], lengths)
            keys = elem_user.astype(np.int64) * nt + flat_tasks
            chosen_g = ga.chosen_route_ids(choices)[users]
            chosen_len = ga.route_len[chosen_g]
            chosen_tasks = gather_segments(
                ga.task_ids_sorted, ga.indptr[chosen_g], chosen_len
            )
            # users ascending + tasks sorted within each segment -> keys
            # sorted.
            chosen_keys = (
                np.repeat(users, chosen_len).astype(np.int64) * nt
                + chosen_tasks
            )
            total_cells = int(nt) * max(ga.num_users, 1)
            if total_cells <= _DENSE_MEMBER_CELLS:
                # Dense (user, task) membership table: one scatter + one
                # gather beats a binary search per element by a wide margin.
                table = np.zeros(total_cells, dtype=bool)
                table[chosen_keys] = True
                member = table[keys]
            else:
                pos = np.searchsorted(chosen_keys, keys)
                member = np.zeros(keys.size, dtype=bool)
                if chosen_keys.size:
                    hit = pos < chosen_keys.size
                    member[hit] = chosen_keys[pos[hit]] == keys[hit]
            # Any element sees exactly one of two counts: n_k + 1 (its user
            # is not on task k) or n_k (it is, and then n_k >= 1).
            # Evaluating the share term once per task and gathering is
            # bitwise identical to evaluating it per element — same doubles
            # through the same ops — and runs log/divide over N tasks
            # instead of all route elements.
            n_out = (counts + 1).astype(float)
            t_out = (
                ga.base_rewards + ga.reward_increments * np.log(n_out)
            ) / n_out
            n_in = np.maximum(counts, 1).astype(float)
            t_in = (
                ga.base_rewards + ga.reward_increments * np.log(n_in)
            ) / n_in
            terms = np.where(member, t_in[flat_tasks], t_out[flat_tasks])
            rewards = segment_sums(terms, route_starts, lengths)
        else:
            rewards = np.zeros(flat_g.size)
        profits = ga.alpha[ga.route_user[flat_g]] * rewards - ga.route_cost[flat_g]
        return profits, flat_g, r_indptr

    def segmented_best(self, profits, r_indptr):
        return np.maximum.reduceat(profits, r_indptr[:-1])

    def segmented_first_within(self, profits, r_indptr, thresholds):
        cand = profits >= np.repeat(thresholds, np.diff(r_indptr))
        idx = np.where(cand, np.arange(profits.size), profits.size)
        return np.minimum.reduceat(idx, r_indptr[:-1])

    def chosen_profits(self, ga, choices, shares):
        rewards = ga.chosen_segment_sums(choices, shares)
        g = ga.chosen_route_ids(choices)
        return ga.alpha * rewards - ga.route_cost[g]

    def profits_of_users(self, ga, choices, shares, users):
        from repro.core.arrays import gather_segments, segment_sums

        g = ga.chosen_route_ids(choices)[users]
        lengths = ga.route_len[g]
        flat = gather_segments(ga.task_ids, ga.indptr[g], lengths)
        rewards = segment_sums(
            shares[flat], np.cumsum(lengths) - lengths, lengths
        )
        return ga.alpha[users] * rewards - ga.route_cost[g]

    def potential_delta(self, ga, counts, old_g, new_g):
        if old_g == new_g:
            return 0.0
        gained, lost = ga.changed_tasks(old_g, new_g)
        delta = 0.0
        if gained.size:
            n_after = counts[gained].astype(float) + 1.0
            delta += float(
                (
                    (
                        ga.base_rewards[gained]
                        + ga.reward_increments[gained] * np.log(n_after)
                    )
                    / n_after
                ).sum()
            )
        if lost.size:
            n_before = counts[lost].astype(float)
            delta -= float(
                (
                    (
                        ga.base_rewards[lost]
                        + ga.reward_increments[lost] * np.log(n_before)
                    )
                    / n_before
                ).sum()
            )
        return delta + float(
            ga.route_pot_cost[old_g] - ga.route_pot_cost[new_g]
        )
