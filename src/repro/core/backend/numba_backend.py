"""Numba backend: JIT-compiled, thread-parallel hot kernels.

Compiled with ``parallel=True`` (``prange`` over the batch's users) and
``fastmath`` **off** — re-association is limited to what the kernel loop
order already implies, so results stay within the declared ``rtol =
1e-12`` of the numpy reference (each user's per-route reward sum runs in
the same element order as the reference's ``reduceat``; only
``potential_delta`` interleaves the gained/lost sums).

``cache=True`` persists compiled artifacts to numba's on-disk cache, so
a process pays compilation once per machine, not once per run.  First-use
latency is still seconds when the cache is cold, which is why
:meth:`NumbaBackend.warmup` exists: it drives every kernel once on a tiny
instance so benchmarks and pool workers never measure compile time.  The
warm-up duration lands in the ``core.jit_warmup_seconds`` histogram.

Determinism: every ``prange`` iteration owns its output rows outright and
reduces sequentially within the iteration, so results are independent of
thread count and schedule — bit-for-bit run-to-run, regardless of
``NUMBA_NUM_THREADS``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.backend.base import KernelBackend
from repro.core.backend.numpy_backend import NumpyBackend

_EMPTY_INTP = np.zeros(0, dtype=np.intp)
_EMPTY_F64 = np.zeros(0, dtype=float)

# Import here so a missing numba fails at backend construction (where the
# registry catches it and falls back) rather than at first kernel call.
from numba import njit, prange  # noqa: E402

__all__ = ["NumbaBackend"]

_JIT = dict(parallel=True, cache=True, fastmath=False, nogil=True)


@njit(**_JIT)
def _batch_profits(
    users, r_indptr, uro, indptr, task_ids, task_ids_sorted,
    route_cost, alpha, base, incs, counts, choices, out,
):  # pragma: no cover - exercised only where numba is installed
    for k in prange(users.shape[0]):
        u = users[k]
        g0 = uro[u] + choices[u]
        cs = indptr[g0]
        ce = indptr[g0 + 1]
        a = alpha[u]
        pos = r_indptr[k]
        for g in range(uro[u], uro[u + 1]):
            reward = 0.0
            for e in range(indptr[g], indptr[g + 1]):
                t = task_ids[e]
                # Binary search of t in the user's sorted chosen segment:
                # membership decides n_k vs n_k + 1 (counts include the
                # user's own contribution exactly when it covers t).
                lo = cs
                hi = ce
                member = False
                while lo < hi:
                    mid = (lo + hi) >> 1
                    v = task_ids_sorted[mid]
                    if v < t:
                        lo = mid + 1
                    elif v > t:
                        hi = mid
                    else:
                        member = True
                        break
                if member:
                    n = float(counts[t])
                    if n < 1.0:
                        n = 1.0
                else:
                    n = float(counts[t]) + 1.0
                reward += (base[t] + incs[t] * np.log(n)) / n
            out[pos] = a * reward - route_cost[g]
            pos += 1


@njit(cache=True, fastmath=False, nogil=True)
def _single_profits(
    g_lo, g_hi, indptr, task_ids, route_cost, base, incs, counts_wo,
    alpha_u, out,
):  # pragma: no cover - exercised only where numba is installed
    for g in range(g_lo, g_hi):
        reward = 0.0
        for e in range(indptr[g], indptr[g + 1]):
            t = task_ids[e]
            n = float(counts_wo[t]) + 1.0
            reward += (base[t] + incs[t] * np.log(n)) / n
        out[g - g_lo] = alpha_u * reward - route_cost[g]


@njit(**_JIT)
def _segmented_best(
    profits, r_indptr, out
):  # pragma: no cover - exercised only where numba is installed
    for k in prange(r_indptr.shape[0] - 1):
        best = profits[r_indptr[k]]
        for e in range(r_indptr[k] + 1, r_indptr[k + 1]):
            if profits[e] > best:
                best = profits[e]
        out[k] = best


@njit(**_JIT)
def _segmented_first_within(
    profits, r_indptr, thresholds, out
):  # pragma: no cover - exercised only where numba is installed
    for k in prange(r_indptr.shape[0] - 1):
        first = profits.shape[0]
        for e in range(r_indptr[k], r_indptr[k + 1]):
            if profits[e] >= thresholds[k]:
                first = e
                break
        out[k] = first


@njit(**_JIT)
def _chosen_profits(
    uro, indptr, task_ids, route_cost, alpha, choices, shares, out
):  # pragma: no cover - exercised only where numba is installed
    for u in prange(choices.shape[0]):
        g = uro[u] + choices[u]
        reward = 0.0
        for e in range(indptr[g], indptr[g + 1]):
            reward += shares[task_ids[e]]
        out[u] = alpha[u] * reward - route_cost[g]


@njit(**_JIT)
def _subset_profits(
    users, uro, indptr, task_ids, route_cost, alpha, choices, shares, out
):  # pragma: no cover - exercised only where numba is installed
    for k in prange(users.shape[0]):
        u = users[k]
        g = uro[u] + choices[u]
        reward = 0.0
        for e in range(indptr[g], indptr[g + 1]):
            reward += shares[task_ids[e]]
        out[k] = alpha[u] * reward - route_cost[g]


@njit(cache=True, fastmath=False, nogil=True)
def _potential_delta(
    task_ids_sorted, indptr, base, incs, counts, route_pot_cost,
    old_g, new_g,
):  # pragma: no cover - exercised only where numba is installed
    # Two-pointer walk over the sorted old/new segments: tasks only in the
    # old segment are lost (contribute -w_k(n)/n at current count n >= 1),
    # tasks only in the new one are gained (+w_k(n+1)/(n+1)).
    i = indptr[old_g]
    iend = indptr[old_g + 1]
    j = indptr[new_g]
    jend = indptr[new_g + 1]
    delta = 0.0
    while i < iend or j < jend:
        if j >= jend or (i < iend and task_ids_sorted[i] < task_ids_sorted[j]):
            t = task_ids_sorted[i]
            n = float(counts[t])
            if n < 1.0:
                n = 1.0
            delta -= (base[t] + incs[t] * np.log(n)) / n
            i += 1
        elif i >= iend or task_ids_sorted[j] < task_ids_sorted[i]:
            t = task_ids_sorted[j]
            n = float(counts[t]) + 1.0
            delta += (base[t] + incs[t] * np.log(n)) / n
            j += 1
        else:
            i += 1
            j += 1
    return delta + route_pot_cost[old_g] - route_pot_cost[new_g]


class NumbaBackend(KernelBackend):
    """JIT-parallel kernels; tolerance-bounded against the numpy reference."""

    name = "numba"
    rtol = 1e-12

    def __init__(self) -> None:
        self._warm = False

    # ------------------------------------------------------------ lifecycle
    def warmup(self) -> float:
        """Drive every kernel once on a 2-user toy so all compilation
        (or on-disk cache loading) happens now, not inside a measured
        epoch.  Returns the seconds spent; idempotent after the first
        call (subsequent calls cost one attribute check)."""
        if self._warm:
            return 0.0
        t0 = time.perf_counter()
        # 2 users x 2 routes x <=2 tasks, 2 tasks total.
        uro = np.asarray([0, 2, 4], dtype=np.intp)
        indptr = np.asarray([0, 1, 3, 4, 4], dtype=np.intp)
        task_ids = np.asarray([0, 0, 1, 1], dtype=np.intp)
        task_sorted = task_ids.copy()
        cost = np.asarray([0.1, 0.2, 0.3, 0.4])
        pot_cost = cost / 2.0
        alpha = np.asarray([0.5, 0.6])
        base = np.asarray([10.0, 12.0])
        incs = np.asarray([0.5, 0.7])
        counts = np.asarray([1, 1], dtype=np.intp)
        choices = np.asarray([0, 1], dtype=np.intp)
        users = np.asarray([0, 1], dtype=np.intp)
        r_indptr = np.asarray([0, 2, 4], dtype=np.intp)
        out4 = np.empty(4)
        out2 = np.empty(2)
        outi = np.empty(2, dtype=np.intp)
        _batch_profits(users, r_indptr, uro, indptr, task_ids, task_sorted,
                       cost, alpha, base, incs, counts, choices, out4)
        _single_profits(0, 2, indptr, task_ids, cost, base, incs, counts,
                        0.5, out2)
        _segmented_best(out4, r_indptr, out2)
        _segmented_first_within(out4, r_indptr, out2 - 1e-9, outi)
        _chosen_profits(uro, indptr, task_ids, cost, alpha, choices,
                        base, out2)
        _subset_profits(users, uro, indptr, task_ids, cost, alpha, choices,
                        base, out2)
        _potential_delta(task_sorted, indptr, base, incs, counts, pot_cost,
                         0, 1)
        self._warm = True
        seconds = time.perf_counter() - t0
        from repro.core.backend import _record_warmup

        _record_warmup(self, seconds)
        return seconds

    def info(self) -> dict[str, object]:
        import numba

        return {
            "name": self.name,
            "rtol": self.rtol,
            "numba_version": numba.__version__,
            "threads": int(numba.get_num_threads()),
            "warm": self._warm,
        }

    # ------------------------------------------------------------- kernels
    def candidate_profits(self, ga, user, counts_wo):
        g_lo = int(ga.user_route_offset[user])
        g_hi = int(ga.user_route_offset[user + 1])
        out = np.empty(g_hi - g_lo)
        _single_profits(
            g_lo, g_hi, ga.indptr, ga.task_ids, ga.route_cost,
            ga.base_rewards, ga.reward_increments,
            np.ascontiguousarray(counts_wo, dtype=np.intp),
            float(ga.alpha[user]), out,
        )
        return out

    def batch_candidate_profits(self, ga, counts, choices, users):
        flat_g, r_indptr = ga.routes_of_users(users)
        if flat_g.size == 0:
            return _EMPTY_F64, _EMPTY_INTP, r_indptr
        profits = np.empty(flat_g.size)
        _batch_profits(
            users, r_indptr, ga.user_route_offset, ga.indptr, ga.task_ids,
            ga.task_ids_sorted, ga.route_cost, ga.alpha, ga.base_rewards,
            ga.reward_increments,
            np.ascontiguousarray(counts, dtype=np.intp),
            np.ascontiguousarray(choices, dtype=np.intp),
            profits,
        )
        return profits, flat_g, r_indptr

    def segmented_best(self, profits, r_indptr):
        out = np.empty(r_indptr.size - 1)
        if out.size:
            _segmented_best(profits, r_indptr, out)
        return out

    def segmented_first_within(self, profits, r_indptr, thresholds):
        out = np.empty(r_indptr.size - 1, dtype=np.intp)
        if out.size:
            _segmented_first_within(profits, r_indptr, thresholds, out)
        return out

    def chosen_profits(self, ga, choices, shares):
        out = np.empty(ga.num_users)
        if out.size:
            _chosen_profits(
                ga.user_route_offset, ga.indptr, ga.task_ids, ga.route_cost,
                ga.alpha, np.ascontiguousarray(choices, dtype=np.intp),
                shares, out,
            )
        return out

    def profits_of_users(self, ga, choices, shares, users):
        users = np.ascontiguousarray(users, dtype=np.intp)
        out = np.empty(users.size)
        if out.size:
            _subset_profits(
                users, ga.user_route_offset, ga.indptr, ga.task_ids,
                ga.route_cost, ga.alpha,
                np.ascontiguousarray(choices, dtype=np.intp), shares, out,
            )
        return out

    def potential_delta(self, ga, counts, old_g, new_g):
        if old_g == new_g:
            return 0.0
        return float(
            _potential_delta(
                ga.task_ids_sorted, ga.indptr, ga.base_rewards,
                ga.reward_increments,
                np.ascontiguousarray(counts, dtype=np.intp),
                ga.route_pot_cost, int(old_g), int(new_g),
            )
        )


# Unused import kept out of the public surface; NumpyBackend is referenced
# so subclass-style fallbacks in tests can compare classes without a
# second import.
_REFERENCE = NumpyBackend
