"""The kernel-backend interface: one seam under every hot game kernel.

A :class:`KernelBackend` owns the numeric cores of the response-dynamics
hot path — candidate-profit evaluation (Eq. 2 what-ifs), the segmented
argmax/max reductions of the batched proposal engine, the chosen-route
profit gather behind ``all_profits``, and the telescoped potential delta
(Eq. 8).  Everything *around* those cores — CSR bookkeeping, RNG streams,
tie-breaking, proposal assembly — stays backend-independent NumPy in
:mod:`repro.core.responses` / :mod:`repro.core.profit`, so a backend only
ever sees flat arrays plus the :class:`~repro.core.arrays.GameArrays`
layout and can never perturb trajectory semantics beyond float tolerance.

Tolerance contract (verified by ``tests/core/test_backend.py`` and the
backend-parametrized oracle suites):

- ``numpy`` — the reference backend; **bitwise** equal to the pre-seam
  kernels (it *is* those kernels, extracted verbatim).
- ``numba`` — JIT-compiled, ``parallel=True`` prange over users,
  ``fastmath`` **off**; agrees with numpy within ``rtol = 1e-12``
  (element order inside a route segment is preserved, only the
  gained/lost split of ``potential_delta`` re-associates).
- ``cupy`` — optional GPU path for the dense batched sweep only; agrees
  within ``rtol = 1e-9`` (device transcendentals).

Backends declare their tolerance as :attr:`KernelBackend.rtol`; tests
read it instead of hard-coding per-backend numbers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.arrays import GameArrays

__all__ = ["KernelBackend"]


class KernelBackend:
    """Abstract kernel set.  Subclasses implement every kernel method.

    Instances are stateless apart from optional compiled-artifact /
    device-array caches, process-local, and shared freely across games —
    the per-call inputs carry all mutable state (counts, choices).
    """

    #: Registry name (``"numpy"``, ``"numba"``, ``"cupy"``).
    name: str = "abstract"
    #: Declared relative tolerance vs the numpy reference backend.
    #: ``0.0`` means bitwise-identical.
    rtol: float = 0.0

    # ------------------------------------------------------------- lifecycle
    def warmup(self) -> float:
        """Compile/upload whatever the backend needs; return seconds spent.

        Idempotent and cheap after the first call.  Callers that care
        about latency (benchmark fixtures, pool workers before their
        first epoch) invoke this explicitly so compile time never lands
        inside a measured region.  Records ``core.jit_warmup_seconds``
        and ``core.backend_info`` when telemetry is enabled.
        """
        return 0.0

    def info(self) -> dict[str, object]:
        """Structured description for run reports / ``core.backend_info``."""
        return {"name": self.name, "rtol": self.rtol}

    # ---------------------------------------------------------- hot kernels
    def candidate_profits(
        self, ga: "GameArrays", user: int, counts_wo: np.ndarray
    ) -> np.ndarray:
        """``P_i(r_j, s_{-i})`` for every route of one user.

        ``counts_wo`` excludes the user's own contribution; each
        candidate evaluates at ``n_k(s_{-i}) + 1``.
        """
        raise NotImplementedError

    def batch_candidate_profits(
        self,
        ga: "GameArrays",
        counts: np.ndarray,
        choices: np.ndarray,
        users: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Candidate profits of all routes of many users in one pass.

        Returns ``(profits, flat_g, r_indptr)`` exactly as documented on
        :func:`repro.core.responses.batch_candidate_profits`.  ``counts``
        here are the *full* profile counts (each user's own contribution
        included); membership of a task in the user's current route
        decides whether the share term divides by ``n_k`` or
        ``n_k + 1``.
        """
        raise NotImplementedError

    def segmented_best(
        self, profits: np.ndarray, r_indptr: np.ndarray
    ) -> np.ndarray:
        """Per-segment maximum of ``profits`` (segments from ``r_indptr``).

        Segments are non-empty (every user owns >= 1 route).  Max of
        doubles is exact, so every backend returns identical bits here.
        """
        raise NotImplementedError

    def segmented_first_within(
        self,
        profits: np.ndarray,
        r_indptr: np.ndarray,
        thresholds: np.ndarray,
    ) -> np.ndarray:
        """First flat index per segment with ``profits >= thresholds[k]``.

        The deterministic ``pick="first"`` tie-break of the batched
        proposal engine.  Comparisons are exact, so backends agree
        bitwise given the same ``profits``.
        """
        raise NotImplementedError

    def chosen_profits(
        self, ga: "GameArrays", choices: np.ndarray, shares: np.ndarray
    ) -> np.ndarray:
        """``P_i(s)`` for every user from precomputed per-task shares."""
        raise NotImplementedError

    def profits_of_users(
        self,
        ga: "GameArrays",
        choices: np.ndarray,
        shares: np.ndarray,
        users: np.ndarray,
    ) -> np.ndarray:
        """Subset of :meth:`chosen_profits` — must match its entries
        bitwise *within this backend* (the incremental history recorder
        cross-checks them against each other)."""
        raise NotImplementedError

    def potential_delta(
        self, ga: "GameArrays", counts: np.ndarray, old_g: int, new_g: int
    ) -> float:
        """``phi(new, s_{-i}) - phi(s)`` telescoped over the symmetric
        difference of the two routes (Eq. 8)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r} rtol={self.rtol}>"
