"""CuPy backend: GPU offload for the dense batched candidate sweep.

Only :meth:`batch_candidate_profits` moves to the device — it is the one
kernel whose arithmetic intensity survives the PCIe round-trip, and only
because the game's static CSR arrays (task ids, costs, rewards) are
uploaded **once per game** and reused across every sweep of a dirty-mask
epoch.  Per-call traffic is just ``counts``/``choices``/``users`` up and
the profit vector down.  Everything else (single-user what-ifs, segment
reductions over small batches, potential deltas) inherits the numpy
reference — those kernels are latency-bound and a device hop would be a
pessimization.

Tolerance: device transcendentals (``log``) and the reduction order of
``cupy``'s segmented sum differ from the host, so this backend declares
``rtol = 1e-9`` rather than the numba backend's 1e-12.

The device-side static arrays are cached per :class:`GameArrays`
*instance* in a small keyed cache (``GameArrays`` has ``__slots__`` and
no ``__weakref__``, so the cache is bounded by count, not by liveness —
at most ``_CACHE_SLOTS`` games stay resident, LRU-evicted).
"""

from __future__ import annotations

import time
from collections import OrderedDict

import numpy as np

from repro.core.backend.numpy_backend import NumpyBackend

# Import at module scope so a missing/broken cupy fails at backend
# construction, where the registry catches it and falls back to numpy.
import cupy as cp  # noqa: E402

__all__ = ["CupyBackend"]

_CACHE_SLOTS = 4


class _DeviceGame:
    """The static (per-game) CSR arrays, resident on the device."""

    __slots__ = (
        "indptr", "task_ids", "task_ids_sorted", "route_len", "route_user",
        "route_cost", "alpha", "base_rewards", "reward_increments",
        "user_route_offset",
    )

    def __init__(self, ga) -> None:
        self.indptr = cp.asarray(ga.indptr)
        self.task_ids = cp.asarray(ga.task_ids)
        self.task_ids_sorted = cp.asarray(ga.task_ids_sorted)
        self.route_len = cp.asarray(ga.route_len)
        self.route_user = cp.asarray(ga.route_user)
        self.route_cost = cp.asarray(ga.route_cost)
        self.alpha = cp.asarray(ga.alpha)
        self.base_rewards = cp.asarray(ga.base_rewards)
        self.reward_increments = cp.asarray(ga.reward_increments)
        self.user_route_offset = cp.asarray(ga.user_route_offset)


class CupyBackend(NumpyBackend):
    """GPU dense-sweep backend; everything else falls through to numpy."""

    name = "cupy"
    rtol = 1e-9

    def __init__(self) -> None:
        # Fail now (not at first kernel) when no device is usable.
        cp.cuda.runtime.getDeviceCount()
        self._device_games: OrderedDict[tuple[int, int], _DeviceGame] = (
            OrderedDict()
        )
        self._warm = False

    # ------------------------------------------------------------ lifecycle
    def warmup(self) -> float:
        """Touch the device once (context creation + a tiny kernel launch)
        so first-epoch latency excludes CUDA context setup."""
        if self._warm:
            return 0.0
        t0 = time.perf_counter()
        x = cp.arange(8, dtype=cp.float64)
        float(cp.log(x + 1.0).sum())
        self._warm = True
        seconds = time.perf_counter() - t0
        from repro.core.backend import _record_warmup

        _record_warmup(self, seconds)
        return seconds

    def info(self) -> dict[str, object]:
        dev = cp.cuda.Device()
        return {
            "name": self.name,
            "rtol": self.rtol,
            "cupy_version": cp.__version__,
            "device": int(dev.id),
            "warm": self._warm,
        }

    def _device_game(self, ga) -> _DeviceGame:
        # id() plus num_elements guards against id reuse after gc: a
        # recycled address with a different CSR size misses the cache.
        key = (id(ga), int(ga.task_ids.size))
        cached = self._device_games.get(key)
        if cached is None:
            cached = _DeviceGame(ga)
            self._device_games[key] = cached
            while len(self._device_games) > _CACHE_SLOTS:
                self._device_games.popitem(last=False)
        else:
            self._device_games.move_to_end(key)
        return cached

    # ------------------------------------------------------------- kernels
    def batch_candidate_profits(self, ga, counts, choices, users):
        flat_g, r_indptr = ga.routes_of_users(users)
        if flat_g.size == 0:
            return super().batch_candidate_profits(ga, counts, choices, users)
        dg = self._device_game(ga)
        d_users = cp.asarray(users)
        d_counts = cp.asarray(counts)
        d_choices = cp.asarray(choices)
        d_flat_g = cp.asarray(flat_g)
        lengths = dg.route_len[d_flat_g]
        starts = dg.indptr[d_flat_g]
        # Flatten all candidate segments: a device-side expansion of the
        # host gather_segments (offset-within-segment + per-segment base).
        total = int(lengths.sum())
        if total == 0:
            profits = dg.alpha[dg.route_user[d_flat_g]] * 0.0
            profits = profits - dg.route_cost[d_flat_g]
            return cp.asnumpy(profits), flat_g, r_indptr
        seg_id = cp.repeat(cp.arange(d_flat_g.size), lengths)
        route_starts = cp.cumsum(lengths) - lengths
        offs = cp.arange(total) - route_starts[seg_id]
        flat_tasks = dg.task_ids[starts[seg_id] + offs]
        # Membership: binary search in each user's sorted chosen segment
        # via merged (user, task) keys, mirroring the host sparse path.
        nt = max(int(ga.num_tasks), 1)
        elem_user = dg.route_user[d_flat_g][seg_id]
        keys = elem_user.astype(cp.int64) * nt + flat_tasks
        chosen_g = dg.user_route_offset[d_users] + d_choices[d_users]
        chosen_len = dg.route_len[chosen_g]
        c_total = int(chosen_len.sum())
        if c_total:
            c_seg = cp.repeat(cp.arange(d_users.size), chosen_len)
            c_starts = cp.cumsum(chosen_len) - chosen_len
            c_offs = cp.arange(c_total) - c_starts[c_seg]
            chosen_tasks = dg.task_ids_sorted[dg.indptr[chosen_g][c_seg] + c_offs]
            chosen_keys = d_users[c_seg].astype(cp.int64) * nt + chosen_tasks
            pos = cp.searchsorted(chosen_keys, keys)
            pos_c = cp.minimum(pos, chosen_keys.size - 1)
            member = (pos < chosen_keys.size) & (chosen_keys[pos_c] == keys)
        else:
            member = cp.zeros(keys.size, dtype=bool)
        n_out = (d_counts + 1).astype(cp.float64)
        t_out = (dg.base_rewards + dg.reward_increments * cp.log(n_out)) / n_out
        n_in = cp.maximum(d_counts, 1).astype(cp.float64)
        t_in = (dg.base_rewards + dg.reward_increments * cp.log(n_in)) / n_in
        terms = cp.where(member, t_in[flat_tasks], t_out[flat_tasks])
        # Segmented sum via cumsum differences (device-friendly reduceat).
        csum = cp.concatenate((cp.zeros(1), cp.cumsum(terms)))
        rewards = csum[route_starts + lengths] - csum[route_starts]
        profits = (
            dg.alpha[dg.route_user[d_flat_g]] * rewards
            - dg.route_cost[d_flat_g]
        )
        return cp.asnumpy(profits), flat_g, r_indptr
