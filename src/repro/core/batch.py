"""Vectorized batch evaluation of many strategy profiles at once.

Exhaustive analyses (optimum search, equilibrium enumeration, Monte-Carlo
baselines) evaluate thousands of profiles; doing it one
:class:`StrategyProfile` at a time pays Python overhead per profile.  This
module evaluates a whole ``(P, M)`` choice matrix with NumPy gathers:

- per-user one-hot coverage tensors turn route choices into per-profile
  task counts and alpha-masses in two fancy-indexing passes;
- the total reward decomposes per task as ``alpha_mass_k * w_k(n_k)/n_k``,
  evaluated from a precomputed ``(N, M)`` share table;
- route costs are a single gather per user.

Used by :func:`exhaustive_total_profits` to drive
:func:`repro.core.enumeration.enumerate_equilibria`-style sweeps at
NumPy speed; cross-checked against the scalar path in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.utils.validation import require


class BatchEvaluator:
    """Precomputed tensors for evaluating profile batches of one game."""

    def __init__(self, game: RouteNavigationGame) -> None:
        self.game = game
        ga = game.arrays
        m, n = game.num_users, game.num_tasks
        # coverage[i]: (routes_i, N) float one-hot rows scattered straight
        # from the shared CSR segments; alpha-weighted variant too.
        self._cov: list[np.ndarray] = []
        self._cov_alpha: list[np.ndarray] = []
        self._costs: list[np.ndarray] = []
        for i in game.users:
            cov = ga.user_coverage_matrix(i)
            self._cov.append(cov)
            self._cov_alpha.append(cov * ga.alpha[i])
            self._costs.append(ga.route_cost[ga.user_slice(i)])
        # Per-user route counts, broadcast against whole choice matrices in
        # _validate so bounds checking is one comparison, not a column loop.
        self._route_counts = np.asarray(
            [game.num_routes(i) for i in game.users], dtype=np.intp
        )
        # share_table[k, q-1] = w_k(q)/q for q = 1..M; column 0 reused for
        # count 0 via masking.
        if n and m:
            q = np.arange(1, m + 1, dtype=float)
            self._share = (
                game.tasks.base_rewards[:, None]
                + game.tasks.reward_increments[:, None] * np.log(q)[None, :]
            ) / q[None, :]
        else:
            self._share = np.zeros((n, max(m, 1)))

    def _validate(self, choices: np.ndarray) -> np.ndarray:
        arr = np.asarray(choices, dtype=np.intp)
        if arr.ndim == 1:
            arr = arr[None, :]
        require(arr.ndim == 2 and arr.shape[1] == self.game.num_users,
                f"choices must be (P, {self.game.num_users})")
        ok = (arr >= 0) & (arr < self._route_counts[None, :])
        if not ok.all():
            bad = int(np.flatnonzero(~ok.all(axis=0))[0])
            require(False, f"route index out of range for user {bad}")
        return arr

    def counts(self, choices: np.ndarray) -> np.ndarray:
        """Per-profile task counts ``n_k``, shape ``(P, N)``."""
        arr = self._validate(choices)
        out = np.zeros((arr.shape[0], self.game.num_tasks))
        for i in self.game.users:
            out += self._cov[i][arr[:, i]]
        return out

    def total_profits(self, choices: np.ndarray) -> np.ndarray:
        """Total profit (Eq. 5) of each profile, shape ``(P,)``."""
        arr = self._validate(choices)
        p = arr.shape[0]
        n = self.game.num_tasks
        counts = np.zeros((p, n))
        mass = np.zeros((p, n))
        cost = np.zeros(p)
        for i in self.game.users:
            counts += self._cov[i][arr[:, i]]
            mass += self._cov_alpha[i][arr[:, i]]
            cost += self._costs[i][arr[:, i]]
        if n == 0:
            return -cost
        idx = np.clip(counts.astype(np.intp) - 1, 0, self._share.shape[1] - 1)
        shares = self._share[np.arange(n)[None, :], idx]
        shares = np.where(counts >= 1.0, shares, 0.0)
        return (mass * shares).sum(axis=1) - cost


def all_choice_matrix(game: RouteNavigationGame, *, limit: int = 2_000_000) -> np.ndarray:
    """Every profile of the strategy space as a ``(P, M)`` matrix."""
    sizes = [game.num_routes(i) for i in game.users]
    total = int(np.prod(sizes))
    require(total <= limit, f"strategy space too large to enumerate: {total}")
    grids = np.meshgrid(*[np.arange(s) for s in sizes], indexing="ij")
    return np.stack([g.reshape(-1) for g in grids], axis=1).astype(np.intp)


def exhaustive_total_profits(
    game: RouteNavigationGame,
) -> tuple[np.ndarray, np.ndarray]:
    """``(choices_matrix, total_profits)`` over the whole strategy space."""
    choices = all_choice_matrix(game)
    return choices, BatchEvaluator(game).total_profits(choices)
