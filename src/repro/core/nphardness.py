"""Theorem 1: reduction from maximum set cover.

The centralized profit-maximization problem (Eq. 5) contains maximum set
cover as a special case: ``mu_k = 0``, ``a_k = a`` for every task,
``phi = theta = 0``, ``alpha_i = 1``, and all users share one recommended
route collection.  Then each user's profit is ``sum_{k in L_{s_i}} a/n_k``
and the total profit equals ``a *`` (number of covered tasks), so choosing
``h = |U|`` routes to cover the most elements is exactly maximum set cover.

This module materializes that construction so tests can check the
correspondence: for every strategy profile of the constructed game,
``total_profit == a * covered_elements``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.utils.validation import require


@dataclass(frozen=True)
class SetCoverInstance:
    """A maximum-set-cover instance: pick ``h`` subsets covering most elements."""

    n_elements: int
    subsets: tuple[tuple[int, ...], ...]
    h: int

    def __post_init__(self) -> None:
        require(self.n_elements >= 1, "need at least one element")
        require(len(self.subsets) >= 1, "need at least one subset")
        require(1 <= self.h, "h must be >= 1")
        for s in self.subsets:
            require(
                all(0 <= e < self.n_elements for e in s),
                f"subset {s} references unknown elements",
            )

    def covered(self, selection: list[int]) -> set[int]:
        """Union of the selected subsets."""
        out: set[int] = set()
        for idx in selection:
            out.update(self.subsets[idx])
        return out


def game_from_set_cover(
    instance: SetCoverInstance, *, base_reward: float = 1.0
) -> RouteNavigationGame:
    """Theorem 1's special-case game for a set-cover instance.

    ``h`` users, all with the identical route set (one route per subset);
    total profit of any profile equals ``base_reward * |covered elements|``.
    """
    coverage = [
        [list(s) for s in instance.subsets] for _ in range(instance.h)
    ]
    return RouteNavigationGame.from_coverage(
        coverage,
        base_rewards=[base_reward] * instance.n_elements,
        reward_increments=0.0,
    )


def covered_elements(instance: SetCoverInstance, profile: StrategyProfile) -> int:
    """Number of elements covered by the profile's route selection."""
    return len(instance.covered([profile.route_of(i) for i in profile.game.users]))


def greedy_set_cover_value(instance: SetCoverInstance) -> int:
    """Classic (1 - 1/e)-approximate greedy max coverage value.

    Used as a reference point: the constructed game's CORN optimum must be
    >= the greedy value, and the greedy value >= (1 - 1/e) * optimum.
    """
    covered: set[int] = set()
    remaining = list(range(len(instance.subsets)))
    for _ in range(instance.h):
        best_idx, best_gain = -1, -1
        for idx in remaining:
            gain = len(set(instance.subsets[idx]) - covered)
            if gain > best_gain:
                best_idx, best_gain = idx, gain
        if best_idx < 0:
            break
        covered.update(instance.subsets[best_idx])
        # Users share the route catalogue, so the same subset may be picked
        # again by another user — but re-picking never helps coverage.
    return len(covered)
