"""Road-network serialization: bring-your-own-graph support.

The synthetic city builders cover the paper's evaluation, but a user with
a real road graph (e.g. exported from OpenStreetMap) can load it here and
run the identical pipeline — everything downstream of
:class:`~repro.network.graph.RoadNetwork` is graph-agnostic.

Format (JSON)::

    {
      "format_version": 1,
      "nodes": [[x_km, y_km], ...],
      "edges": [
        {"u": 0, "v": 1, "length_km": 0.42, "free_flow_kmh": 50.0,
         "bidirectional": true},
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.network.graph import RoadNetwork
from repro.utils.validation import require

FORMAT_VERSION = 1


def network_to_dict(net: RoadNetwork) -> dict[str, Any]:
    """Serialize a network (undirected edges deduplicated where symmetric)."""
    net.freeze()
    nodes = [[float(x), float(y)] for x, y in net.coords]
    # Detect symmetric arc pairs so they round-trip as bidirectional edges.
    arcs: dict[tuple[int, int], tuple[float, float]] = {}
    for e in net.edges():
        # Builders may register nodes as numpy ints; normalize for JSON.
        arcs[(int(e.u), int(e.v))] = (float(e.length_km), float(e.free_flow_kmh))
    edges = []
    done: set[tuple[int, int]] = set()
    for (u, v), (length, speed) in arcs.items():
        if (u, v) in done:
            continue
        reverse = arcs.get((v, u))
        if reverse == (length, speed) and (v, u) not in done:
            edges.append(
                {"u": u, "v": v, "length_km": length, "free_flow_kmh": speed,
                 "bidirectional": True}
            )
            done.add((u, v))
            done.add((v, u))
        else:
            edges.append(
                {"u": u, "v": v, "length_km": length, "free_flow_kmh": speed,
                 "bidirectional": False}
            )
            done.add((u, v))
    return {"format_version": FORMAT_VERSION, "nodes": nodes, "edges": edges}


def network_from_dict(data: dict[str, Any]) -> RoadNetwork:
    """Rebuild a frozen network from :func:`network_to_dict` output."""
    version = data.get("format_version")
    require(version == FORMAT_VERSION,
            f"unsupported format_version {version!r} (expected {FORMAT_VERSION})")
    net = RoadNetwork()
    for x, y in data["nodes"]:
        net.add_node(float(x), float(y))
    for edge in data["edges"]:
        net.add_edge(
            int(edge["u"]),
            int(edge["v"]),
            length_km=float(edge["length_km"]),
            free_flow_kmh=float(edge.get("free_flow_kmh", 50.0)),
            bidirectional=bool(edge.get("bidirectional", True)),
        )
    return net.freeze()


def save_network(net: RoadNetwork, path: str | Path) -> None:
    """Write the network as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(net)))


def load_network(path: str | Path) -> RoadNetwork:
    """Read a network written by :func:`save_network` (or hand-authored)."""
    return network_from_dict(json.loads(Path(path).read_text()))
