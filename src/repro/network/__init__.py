"""Road-network substrate.

Replaces the paper's use of the Google Maps API (Section 5.1): city-like
road graphs, shortest paths, Yen's k-shortest loopless paths as the route
recommender, and a background-traffic congestion model that yields the
per-route congestion level ``c(r)`` consumed by the game layer.
"""

from repro.network.graph import Edge, RoadNetwork
from repro.network.builders import (
    grid_city,
    radial_ring_city,
    random_geometric_city,
)
from repro.network.shortest_path import ShortestPathResult, dijkstra, shortest_path
from repro.network.ksp import k_shortest_paths
from repro.network.congestion import BackgroundTraffic, CongestionField
from repro.network.io import load_network, network_from_dict, network_to_dict, save_network
from repro.network.routing import Route, RoutePlanner

__all__ = [
    "BackgroundTraffic",
    "CongestionField",
    "Edge",
    "RoadNetwork",
    "Route",
    "RoutePlanner",
    "ShortestPathResult",
    "dijkstra",
    "grid_city",
    "k_shortest_paths",
    "load_network",
    "network_from_dict",
    "network_to_dict",
    "radial_ring_city",
    "random_geometric_city",
    "save_network",
    "shortest_path",
]
