"""Directed road-network graph with planar node coordinates.

The graph is intentionally self-contained (no networkx dependency in the hot
path): adjacency lists of ``(neighbour, edge_id)`` pairs plus NumPy-backed
edge attribute arrays, so route-level aggregates (length, congestion) are
vectorized gathers rather than per-edge Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.point import BoundingBox
from repro.utils.validation import check_index, check_positive


@dataclass(frozen=True, slots=True)
class Edge:
    """A directed road segment."""

    edge_id: int
    u: int
    v: int
    length_km: float
    free_flow_kmh: float


class RoadNetwork:
    """Mutable-then-frozen directed graph of road segments.

    Nodes carry planar ``(x, y)`` coordinates in kilometres.  Edges carry a
    length and a free-flow speed; the congestion model later attaches an
    *observed* speed per edge (see :mod:`repro.network.congestion`).
    """

    def __init__(self) -> None:
        self._xs: list[float] = []
        self._ys: list[float] = []
        self._adj: list[list[tuple[int, int]]] = []
        self._edge_u: list[int] = []
        self._edge_v: list[int] = []
        self._edge_len: list[float] = []
        self._edge_speed: list[float] = []
        self._frozen = False
        self._coords: np.ndarray | None = None
        self._len_arr: np.ndarray | None = None
        self._speed_arr: np.ndarray | None = None
        self.observed_kmh: np.ndarray | None = None

    # ------------------------------------------------------------------ build
    def add_node(self, x: float, y: float) -> int:
        """Add a node at planar position ``(x, y)`` km; returns its id."""
        self._check_mutable()
        self._xs.append(float(x))
        self._ys.append(float(y))
        self._adj.append([])
        return len(self._xs) - 1

    def add_edge(
        self,
        u: int,
        v: int,
        *,
        length_km: float | None = None,
        free_flow_kmh: float = 50.0,
        bidirectional: bool = True,
    ) -> int:
        """Add a road segment; returns the id of the ``u -> v`` arc.

        When ``length_km`` is omitted it defaults to the Euclidean distance
        between the endpoints.  ``bidirectional=True`` adds the reverse arc
        with identical attributes.
        """
        self._check_mutable()
        check_index("u", u, self.num_nodes)
        check_index("v", v, self.num_nodes)
        if u == v:
            raise ValueError(f"self-loop edges are not allowed (node {u})")
        if length_km is None:
            length_km = float(
                np.hypot(self._xs[v] - self._xs[u], self._ys[v] - self._ys[u])
            )
            length_km = max(length_km, 1e-9)
        check_positive("length_km", length_km)
        check_positive("free_flow_kmh", free_flow_kmh)
        eid = self._append_arc(u, v, length_km, free_flow_kmh)
        if bidirectional:
            self._append_arc(v, u, length_km, free_flow_kmh)
        return eid

    def _append_arc(self, u: int, v: int, length_km: float, speed: float) -> int:
        eid = len(self._edge_u)
        self._edge_u.append(u)
        self._edge_v.append(v)
        self._edge_len.append(float(length_km))
        self._edge_speed.append(float(speed))
        self._adj[u].append((v, eid))
        return eid

    def freeze(self) -> "RoadNetwork":
        """Materialize NumPy attribute arrays; further mutation is an error."""
        if not self._frozen:
            self._coords = np.column_stack(
                [np.asarray(self._xs, dtype=float), np.asarray(self._ys, dtype=float)]
            ) if self._xs else np.zeros((0, 2))
            self._len_arr = np.asarray(self._edge_len, dtype=float)
            self._speed_arr = np.asarray(self._edge_speed, dtype=float)
            if self.observed_kmh is None:
                self.observed_kmh = self._speed_arr.copy()
            self._frozen = True
        return self

    def _check_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError("RoadNetwork is frozen; build a new graph instead")

    # ------------------------------------------------------------------ query
    @property
    def num_nodes(self) -> int:
        return len(self._xs)

    @property
    def num_edges(self) -> int:
        """Number of directed arcs."""
        return len(self._edge_u)

    @property
    def coords(self) -> np.ndarray:
        """``(num_nodes, 2)`` planar coordinates (requires freeze)."""
        self._require_frozen()
        assert self._coords is not None
        return self._coords

    @property
    def edge_lengths(self) -> np.ndarray:
        self._require_frozen()
        assert self._len_arr is not None
        return self._len_arr

    @property
    def free_flow_kmh(self) -> np.ndarray:
        self._require_frozen()
        assert self._speed_arr is not None
        return self._speed_arr

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("call freeze() before reading attribute arrays")

    def node_xy(self, node: int) -> tuple[float, float]:
        check_index("node", node, self.num_nodes)
        return self._xs[node], self._ys[node]

    def neighbors(self, node: int) -> Sequence[tuple[int, int]]:
        """Outgoing ``(neighbour, edge_id)`` pairs of ``node``."""
        check_index("node", node, self.num_nodes)
        return self._adj[node]

    def edge(self, edge_id: int) -> Edge:
        check_index("edge_id", edge_id, self.num_edges)
        return Edge(
            edge_id,
            self._edge_u[edge_id],
            self._edge_v[edge_id],
            self._edge_len[edge_id],
            self._edge_speed[edge_id],
        )

    def edges(self) -> Iterator[Edge]:
        for eid in range(self.num_edges):
            yield self.edge(eid)

    def path_edge_ids(self, nodes: Sequence[int]) -> list[int]:
        """Edge ids along a node path; raises if consecutive nodes are not adjacent."""
        eids: list[int] = []
        for a, b in zip(nodes[:-1], nodes[1:]):
            for nbr, eid in self._adj[a]:
                if nbr == b:
                    eids.append(eid)
                    break
            else:
                raise ValueError(f"nodes {a} and {b} are not adjacent")
        return eids

    def path_length_km(self, nodes: Sequence[int]) -> float:
        """Total length of a node path in km."""
        if len(nodes) < 2:
            return 0.0
        eids = self.path_edge_ids(nodes)
        if self._frozen:
            assert self._len_arr is not None
            return float(self._len_arr[eids].sum())
        return float(sum(self._edge_len[e] for e in eids))

    def path_polyline(self, nodes: Sequence[int]) -> np.ndarray:
        """``(len(nodes), 2)`` coordinate array along a node path."""
        return np.array([[self._xs[n], self._ys[n]] for n in nodes], dtype=float)

    def bounding_box(self) -> BoundingBox:
        self._require_frozen()
        return BoundingBox.of_points(self.coords)

    def nearest_node(self, x: float, y: float) -> int:
        """Node closest to planar position ``(x, y)`` (vectorized scan)."""
        self._require_frozen()
        d2 = (self.coords[:, 0] - x) ** 2 + (self.coords[:, 1] - y) ** 2
        return int(np.argmin(d2))

    def nearest_nodes(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`nearest_node` for an ``(m, 2)`` query array."""
        self._require_frozen()
        queries = np.asarray(xy, dtype=float)
        if queries.ndim == 1:
            queries = queries[None, :]
        # (m, n) distance matrix is fine at city scale (n <= a few thousand).
        d2 = (
            (queries[:, 0:1] - self.coords[None, :, 0]) ** 2
            + (queries[:, 1:2] - self.coords[None, :, 1]) ** 2
        )
        return np.argmin(d2, axis=1)

    def __repr__(self) -> str:
        state = "frozen" if self._frozen else "building"
        return (
            f"RoadNetwork(nodes={self.num_nodes}, arcs={self.num_edges}, {state})"
        )
