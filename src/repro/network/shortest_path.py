"""Dijkstra shortest paths on :class:`~repro.network.graph.RoadNetwork`.

Supports the node/edge exclusion masks needed by Yen's algorithm, and two
edge-weight modes: geometric length (km) and travel time (hours, using the
congestion model's observed speeds).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Collection, Sequence

import numpy as np

from repro.network.graph import RoadNetwork
from repro.obs import counter as _obs_counter
from repro.obs.runtime import RUNTIME as _OBS

WeightFn = Callable[[int], float]


def length_weight(net: RoadNetwork) -> WeightFn:
    """Edge weight = geometric length in km."""
    lengths = net.edge_lengths
    return lambda eid: float(lengths[eid])


def travel_time_weight(net: RoadNetwork) -> WeightFn:
    """Edge weight = traversal time in hours at the observed speed."""
    lengths = net.edge_lengths
    observed = net.observed_kmh
    if observed is None:
        raise RuntimeError("network has no observed speeds; freeze() it first")
    return lambda eid: float(lengths[eid] / max(observed[eid], 1e-6))


@dataclass(frozen=True, slots=True)
class ShortestPathResult:
    """Single-source shortest-path tree."""

    source: int
    dist: np.ndarray
    parent: np.ndarray
    parent_edge: np.ndarray

    def distance_to(self, target: int) -> float:
        return float(self.dist[target])

    def reachable(self, target: int) -> bool:
        return bool(np.isfinite(self.dist[target]))

    def path_to(self, target: int) -> list[int]:
        """Node path from source to target; raises if unreachable."""
        if not self.reachable(target):
            raise ValueError(f"node {target} unreachable from {self.source}")
        path = [target]
        while path[-1] != self.source:
            path.append(int(self.parent[path[-1]]))
        path.reverse()
        return path


def dijkstra(
    net: RoadNetwork,
    source: int,
    *,
    weight: WeightFn | None = None,
    target: int | None = None,
    banned_nodes: Collection[int] = (),
    banned_edges: Collection[int] = (),
) -> ShortestPathResult:
    """Dijkstra from ``source`` with optional early exit and exclusions.

    ``banned_nodes``/``banned_edges`` are skipped entirely (Yen's spur-path
    machinery).  With ``target`` set, the search stops as soon as the target
    is settled.
    """
    n = net.num_nodes
    w = weight if weight is not None else length_weight(net)
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    done = np.zeros(n, dtype=bool)
    banned_n = frozenset(banned_nodes)
    banned_e = frozenset(banned_edges)
    if source in banned_n:
        return ShortestPathResult(source, dist, parent, parent_edge)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        if target is not None and u == target:
            break
        for v, eid in net.neighbors(u):
            if done[v] or v in banned_n or eid in banned_e:
                continue
            nd = d + w(eid)
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                parent_edge[v] = eid
                heapq.heappush(heap, (nd, v))
    if _OBS.enabled:
        _obs_counter("network.dijkstra_calls").inc()
        # Early exit settles far fewer nodes than a full sweep; the ratio
        # of these two counters is the effective pruning factor.
        _obs_counter("network.dijkstra_settled_nodes").inc(
            int(np.count_nonzero(done))
        )
    return ShortestPathResult(source, dist, parent, parent_edge)


def shortest_path(
    net: RoadNetwork,
    source: int,
    target: int,
    *,
    weight: WeightFn | None = None,
) -> tuple[list[int], float]:
    """Convenience wrapper: ``(node_path, cost)`` from source to target."""
    res = dijkstra(net, source, weight=weight, target=target)
    return res.path_to(target), res.distance_to(target)


def path_cost(net: RoadNetwork, nodes: Sequence[int], weight: WeightFn) -> float:
    """Total weight of a node path."""
    return sum(weight(eid) for eid in net.path_edge_ids(nodes))
