"""City-like road-graph generators.

Three families, mirroring the three evaluation cities' street morphologies:

- :func:`grid_city` — Manhattan-style lattice with jitter and random
  diagonal shortcuts (Shanghai-like dense regular core).
- :func:`radial_ring_city` — concentric rings plus radial avenues
  (Rome-like historic center).
- :func:`random_geometric_city` — random geometric graph connected to its
  k nearest neighbours (San Francisco Bay Area-like irregular mesh).

All builders return a frozen :class:`~repro.network.graph.RoadNetwork` that
is strongly connected (weakly-connected components are bridged).
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.graph import RoadNetwork
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, require


def grid_city(
    nx: int = 12,
    ny: int = 12,
    *,
    spacing_km: float = 0.5,
    jitter: float = 0.08,
    diagonal_prob: float = 0.08,
    arterial_every: int = 4,
    seed: SeedLike = None,
) -> RoadNetwork:
    """Build a jittered ``nx x ny`` lattice with occasional diagonals.

    Every ``arterial_every``-th row/column gets arterial speed (faster
    free-flow), giving the route recommender meaningfully distinct
    alternatives between the same OD pair.
    """
    require(nx >= 2 and ny >= 2, f"grid must be at least 2x2, got {nx}x{ny}")
    check_positive("spacing_km", spacing_km)
    rng = as_generator(seed)
    net = RoadNetwork()
    ids = np.empty((nx, ny), dtype=int)
    for i in range(nx):
        for j in range(ny):
            dx, dy = rng.normal(0.0, jitter * spacing_km, size=2)
            ids[i, j] = net.add_node(i * spacing_km + dx, j * spacing_km + dy)

    def speed_for(i: int, j: int, axis: int) -> float:
        idx = j if axis == 0 else i
        return 70.0 if arterial_every > 0 and idx % arterial_every == 0 else 45.0

    for i in range(nx):
        for j in range(ny):
            if i + 1 < nx:
                net.add_edge(ids[i, j], ids[i + 1, j], free_flow_kmh=speed_for(i, j, 0))
            if j + 1 < ny:
                net.add_edge(ids[i, j], ids[i, j + 1], free_flow_kmh=speed_for(i, j, 1))
            if i + 1 < nx and j + 1 < ny and rng.random() < diagonal_prob:
                net.add_edge(ids[i, j], ids[i + 1, j + 1], free_flow_kmh=55.0)
    return net.freeze()


def radial_ring_city(
    rings: int = 5,
    spokes: int = 12,
    *,
    ring_spacing_km: float = 0.7,
    seed: SeedLike = None,
) -> RoadNetwork:
    """Build concentric ring roads connected by radial avenues.

    Ring roads are slower near the center (historic core) and faster on the
    outer orbitals; radials are arterial-speed.
    """
    require(rings >= 1, f"need at least one ring, got {rings}")
    require(spokes >= 3, f"need at least three spokes, got {spokes}")
    check_positive("ring_spacing_km", ring_spacing_km)
    rng = as_generator(seed)
    net = RoadNetwork()
    center = net.add_node(0.0, 0.0)
    ring_nodes: list[list[int]] = []
    for r in range(1, rings + 1):
        radius = r * ring_spacing_km
        nodes = []
        for s in range(spokes):
            angle = 2.0 * math.pi * s / spokes + rng.normal(0.0, 0.02)
            nodes.append(net.add_node(radius * math.cos(angle), radius * math.sin(angle)))
        ring_nodes.append(nodes)

    for r, nodes in enumerate(ring_nodes):
        ring_speed = 35.0 + 8.0 * r  # outer orbitals are faster
        for s in range(spokes):
            net.add_edge(nodes[s], nodes[(s + 1) % spokes], free_flow_kmh=ring_speed)
    for s in range(spokes):
        net.add_edge(center, ring_nodes[0][s], free_flow_kmh=50.0)
        for r in range(rings - 1):
            net.add_edge(ring_nodes[r][s], ring_nodes[r + 1][s], free_flow_kmh=60.0)
    return net.freeze()


def random_geometric_city(
    n_nodes: int = 150,
    *,
    extent_km: float = 6.0,
    k_neighbors: int = 4,
    seed: SeedLike = None,
) -> RoadNetwork:
    """Random geometric graph: each node links to its k nearest neighbours.

    Weakly connected components are bridged by their closest node pairs so
    the result is always strongly connected (all edges are bidirectional).
    """
    require(n_nodes >= 2, f"need at least two nodes, got {n_nodes}")
    check_positive("extent_km", extent_km)
    require(k_neighbors >= 1, f"k_neighbors must be >= 1, got {k_neighbors}")
    rng = as_generator(seed)
    net = RoadNetwork()
    xy = rng.uniform(0.0, extent_km, size=(n_nodes, 2))
    for x, y in xy:
        net.add_node(float(x), float(y))

    d2 = ((xy[:, None, :] - xy[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    added: set[tuple[int, int]] = set()

    def link(u: int, v: int, speed: float) -> None:
        key = (min(u, v), max(u, v))
        if key not in added:
            added.add(key)
            net.add_edge(u, v, free_flow_kmh=speed)

    k = min(k_neighbors, n_nodes - 1)
    nearest = np.argsort(d2, axis=1)[:, :k]
    for u in range(n_nodes):
        for v in nearest[u]:
            link(u, int(v), float(rng.uniform(35.0, 65.0)))

    _bridge_components(net, xy, link)
    return net.freeze()


def _bridge_components(net: RoadNetwork, xy: np.ndarray, link) -> None:
    """Connect weakly-connected components via closest node pairs."""
    n = net.num_nodes
    comp = np.full(n, -1, dtype=int)
    n_comp = 0
    for start in range(n):
        if comp[start] >= 0:
            continue
        stack = [start]
        comp[start] = n_comp
        while stack:
            u = stack.pop()
            for v, _ in net.neighbors(u):
                if comp[v] < 0:
                    comp[v] = n_comp
                    stack.append(v)
        n_comp += 1
    while n_comp > 1:
        main = np.flatnonzero(comp == comp[0])
        other = np.flatnonzero(comp != comp[0])
        d2 = ((xy[main][:, None, :] - xy[other][None, :, :]) ** 2).sum(axis=2)
        i, j = np.unravel_index(int(np.argmin(d2)), d2.shape)
        u, v = int(main[i]), int(other[j])
        link(u, v, 50.0)
        comp[comp == comp[v]] = comp[0]
        n_comp -= 1
