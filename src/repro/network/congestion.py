"""Background-traffic congestion model.

The paper computes the congestion level ``c(r)`` of a route "by the velocity
of the vehicles on the route" (Section 5.1) and assumes it is *independent of
the players' route choices* (Section 3.1: the finite user population has
negligible impact on traffic).  We therefore model congestion as an exogenous
field: hotspots of slowdown (city-center rush, incidents) depress the observed
speed of nearby edges, and a route's congestion level aggregates the relative
slowdown of its edges, weighted by edge length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.graph import RoadNetwork
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, require


@dataclass(frozen=True, slots=True)
class CongestionField:
    """Sum-of-Gaussians slowdown field over the plane.

    ``slowdown(x, y)`` is in [0, 1): 0 means free flow, values near 1 mean
    near-standstill.  Observed speed = free-flow speed * (1 - slowdown).
    """

    centers: np.ndarray  # (h, 2)
    intensities: np.ndarray  # (h,) in [0, 1)
    radii_km: np.ndarray  # (h,)

    def __post_init__(self) -> None:
        c = np.asarray(self.centers, dtype=float)
        require(c.ndim == 2 and c.shape[1] == 2, "centers must be (h, 2)")
        require(len(self.intensities) == len(c), "intensities/centers mismatch")
        require(len(self.radii_km) == len(c), "radii/centers mismatch")
        require(bool(np.all(np.asarray(self.radii_km) > 0)), "radii must be > 0")
        inten = np.asarray(self.intensities, dtype=float)
        require(bool(np.all((inten >= 0) & (inten < 1))), "intensities must be in [0, 1)")

    def slowdown(self, xy: np.ndarray) -> np.ndarray:
        """Slowdown factor in [0, 1) at each of the ``(m, 2)`` query points."""
        pts = np.atleast_2d(np.asarray(xy, dtype=float))
        if len(self.centers) == 0:
            return np.zeros(pts.shape[0])
        d2 = (
            (pts[:, None, 0] - self.centers[None, :, 0]) ** 2
            + (pts[:, None, 1] - self.centers[None, :, 1]) ** 2
        )
        bumps = self.intensities[None, :] * np.exp(
            -d2 / (2.0 * self.radii_km[None, :] ** 2)
        )
        # Independent slowdowns compose multiplicatively on remaining speed.
        remaining = np.prod(1.0 - bumps, axis=1)
        return 1.0 - remaining

    @staticmethod
    def random(
        bbox_min: tuple[float, float],
        bbox_max: tuple[float, float],
        *,
        n_hotspots: int = 4,
        max_intensity: float = 0.75,
        radius_km: tuple[float, float] = (0.5, 2.0),
        seed: SeedLike = None,
    ) -> "CongestionField":
        """Sample a random field with ``n_hotspots`` Gaussian slowdowns."""
        require(n_hotspots >= 0, "n_hotspots must be >= 0")
        require(0.0 <= max_intensity < 1.0, "max_intensity must be in [0, 1)")
        rng = as_generator(seed)
        xs = rng.uniform(bbox_min[0], bbox_max[0], size=n_hotspots)
        ys = rng.uniform(bbox_min[1], bbox_max[1], size=n_hotspots)
        inten = rng.uniform(0.2, max_intensity, size=n_hotspots)
        radii = rng.uniform(radius_km[0], radius_km[1], size=n_hotspots)
        return CongestionField(np.column_stack([xs, ys]), inten, radii)


@dataclass
class BackgroundTraffic:
    """Applies a :class:`CongestionField` to a network and scores routes.

    ``scale`` converts the dimensionless length-weighted mean slowdown of a
    route into the congestion level ``c(r)`` consumed by the game; the
    default yields levels in roughly [0, 20], matching the magnitudes the
    paper reports in Table 5.
    """

    field: CongestionField
    scale: float = 20.0
    _edge_congestion: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive("scale", self.scale)

    def apply(self, net: RoadNetwork) -> np.ndarray:
        """Set ``net.observed_kmh`` from the field; returns per-edge slowdown."""
        net.freeze()
        coords = net.coords
        mid = np.empty((net.num_edges, 2))
        for e in net.edges():
            mid[e.edge_id] = 0.5 * (coords[e.u] + coords[e.v])
        slow = self.field.slowdown(mid)
        net.observed_kmh = net.free_flow_kmh * (1.0 - slow)
        self._edge_congestion = slow
        return slow

    def edge_congestion(self, net: RoadNetwork) -> np.ndarray:
        """Per-edge slowdown in [0, 1); computes lazily via :meth:`apply`."""
        if self._edge_congestion is None or len(self._edge_congestion) != net.num_edges:
            self.apply(net)
        assert self._edge_congestion is not None
        return self._edge_congestion

    def route_congestion(self, net: RoadNetwork, nodes: list[int]) -> float:
        """Congestion level ``c(r)``: scaled length-weighted mean slowdown."""
        if len(nodes) < 2:
            return 0.0
        slow = self.edge_congestion(net)
        eids = np.asarray(net.path_edge_ids(nodes), dtype=int)
        lengths = net.edge_lengths[eids]
        total = lengths.sum()
        if total <= 0:
            return 0.0
        return float(self.scale * np.dot(slow[eids], lengths) / total)

    @staticmethod
    def uniform(level: float = 0.0, scale: float = 20.0) -> "BackgroundTraffic":
        """Spatially-uniform congestion (handy for deterministic tests)."""
        require(0.0 <= level < 1.0, "level must be in [0, 1)")
        if level == 0.0:
            fld = CongestionField(np.zeros((0, 2)), np.zeros(0), np.ones(0))
        else:
            # One enormous hotspot approximates a constant field.
            fld = CongestionField(
                np.zeros((1, 2)), np.array([level]), np.array([1e6])
            )
        return BackgroundTraffic(fld, scale=scale)
