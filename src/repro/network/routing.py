"""Route recommendation: the navigation-platform side of the system model.

:class:`RoutePlanner` stands in for the Google Maps API of Section 5.1: given
an origin-destination pair it recommends up to ``k`` loopless routes, each
annotated with the quantities the game consumes — detour distance ``h(r)``
relative to the shortest route, and congestion level ``c(r)`` from the
background-traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.congestion import BackgroundTraffic
from repro.network.graph import RoadNetwork
from repro.network.ksp import k_shortest_paths
from repro.network.shortest_path import WeightFn, dijkstra, length_weight
from repro.utils.validation import require


@dataclass(frozen=True)
class Route:
    """A recommended route with its game-relevant annotations.

    Attributes
    ----------
    nodes:
        Node ids along the route.
    length_km:
        Total geometric length.
    detour_km:
        ``h(r)``: extra length relative to the shortest route of the same
        OD pair (Eq. 3's input).
    congestion:
        ``c(r)``: exogenous congestion level of the route (Eq. 4's input).
    task_ids:
        Tasks covered by this route (filled by
        :mod:`repro.tasks.assignment`); empty tuple until assignment runs.
    """

    nodes: tuple[int, ...]
    length_km: float
    detour_km: float
    congestion: float
    task_ids: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        require(len(self.nodes) >= 1, "route must have at least one node")
        require(self.length_km >= 0, f"negative length: {self.length_km}")
        require(self.detour_km >= -1e-9, f"negative detour: {self.detour_km}")
        require(self.congestion >= 0, f"negative congestion: {self.congestion}")

    @property
    def origin(self) -> int:
        return self.nodes[0]

    @property
    def destination(self) -> int:
        return self.nodes[-1]

    def with_tasks(self, task_ids: tuple[int, ...]) -> "Route":
        """Copy of this route with the covered-task set attached."""
        return Route(
            self.nodes, self.length_km, self.detour_km, self.congestion, task_ids
        )

    def polyline(self, net: RoadNetwork) -> np.ndarray:
        """Coordinates along the route, ``(len(nodes), 2)``."""
        return net.path_polyline(list(self.nodes))


class RoutePlanner:
    """Recommends diverse alternative routes for OD pairs.

    Two strategies:

    - ``method="penalty"`` (default): iterative edge-penalty alternatives —
      after each accepted route, the weights of its edges are multiplied by
      ``penalty_factor`` and Dijkstra re-runs, yielding genuinely different
      routes with growing detours (the behaviour of commercial navigation
      systems, whose alternatives differ by whole corridors).
    - ``method="ksp"``: Yen's k-shortest loopless paths — near-optimal
      alternatives that can be almost identical on regular grids.
    """

    def __init__(
        self,
        net: RoadNetwork,
        traffic: BackgroundTraffic | None = None,
        *,
        weight: WeightFn | None = None,
        method: str = "penalty",
        penalty_factor: float = 1.6,
    ) -> None:
        if method not in ("penalty", "ksp"):
            raise ValueError(f"unknown method {method!r}")
        self.net = net.freeze()
        self.traffic = traffic if traffic is not None else BackgroundTraffic.uniform()
        self._weight = weight if weight is not None else length_weight(self.net)
        self.method = method
        self.penalty_factor = float(penalty_factor)
        require(self.penalty_factor > 1.0, "penalty_factor must exceed 1")
        self.traffic.apply(self.net)

    def recommend(self, origin: int, destination: int, k: int) -> list[Route]:
        """Up to ``k`` routes for the OD pair, shortest first.

        Detours are measured against the first (shortest) route, so the
        shortest route always has ``detour_km == 0``.
        """
        require(k >= 1, f"k must be >= 1, got {k}")
        if origin == destination:
            return []
        if self.method == "penalty":
            paths = self._penalty_paths(origin, destination, k)
        else:
            paths = k_shortest_paths(
                self.net, origin, destination, k, weight=self._weight
            )
        if not paths:
            return []
        routes: list[Route] = []
        base_len = self.net.path_length_km(paths[0][0])
        for nodes, _cost in paths:
            length = self.net.path_length_km(nodes)
            routes.append(
                Route(
                    nodes=tuple(nodes),
                    length_km=length,
                    detour_km=max(0.0, length - base_len),
                    congestion=self.traffic.route_congestion(self.net, nodes),
                )
            )
        return routes

    def recommend_many(
        self, od_pairs: list[tuple[int, int]], k: int
    ) -> list[list[Route]]:
        """Route sets for several OD pairs (one list per pair)."""
        return [self.recommend(o, d, k) for o, d in od_pairs]

    # ----------------------------------------------------------- strategies
    def _penalty_paths(
        self, origin: int, destination: int, k: int
    ) -> list[tuple[list[int], float]]:
        """Iterative edge-penalty alternatives (loopless by construction)."""
        penalties: dict[int, float] = {}
        base_weight = self._weight

        def weight(eid: int) -> float:
            return base_weight(eid) * penalties.get(eid, 1.0)

        accepted: list[tuple[list[int], float]] = []
        seen: set[tuple[int, ...]] = set()
        # A few extra attempts tolerate duplicates before giving up.
        attempts = 0
        while len(accepted) < k and attempts < 3 * k:
            attempts += 1
            res = dijkstra(self.net, origin, weight=weight, target=destination)
            if not res.reachable(destination):
                break
            path = res.path_to(destination)
            key = tuple(path)
            for eid in self.net.path_edge_ids(path):
                penalties[eid] = penalties.get(eid, 1.0) * self.penalty_factor
            if key in seen:
                continue
            seen.add(key)
            # Report the un-penalized cost so ordering reflects true length.
            true_cost = sum(base_weight(e) for e in self.net.path_edge_ids(path))
            accepted.append((path, true_cost))
        accepted.sort(key=lambda pc: pc[1])
        return accepted
