"""End-to-end scenario construction.

Pipeline (Section 5.1): city profile -> road network + congestion field ->
synthetic taxi traces -> occupied-trip OD pairs snapped to network nodes ->
k-shortest-path route recommendation per user -> random tasks -> coverage
assignment -> :class:`~repro.core.game.RouteNavigationGame`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.game import RouteNavigationGame
from repro.core.weights import PlatformWeights, UserWeights
from repro.network.congestion import BackgroundTraffic, CongestionField
from repro.network.graph import RoadNetwork
from repro.network.routing import Route, RoutePlanner
from repro.scenario.config import ScenarioConfig
from repro.tasks.assignment import assign_tasks_to_routes
from repro.tasks.generator import generate_tasks
from repro.tasks.task import TaskSet
from repro.traces.cities import get_city
from repro.traces.model import TraceSet
from repro.traces.od import extract_od_pairs, od_pairs_to_nodes
from repro.traces.projection import GeoProjection
from repro.traces.speed_estimation import TraceDerivedTraffic
from repro.traces.synthetic import synthesize_traces
from repro.utils.rng import RngStream
from repro.utils.validation import require


class NoCandidateRoutesError(RuntimeError):
    """Raised when a user cannot be given any candidate route.

    Surfaced by the scenario builder (routing retry budget exhausted) and
    by the online serving layer's user factories instead of letting an
    empty route set become an opaque index error deep in the game core.
    """


@dataclass(frozen=True)
class Scenario:
    """A fully-materialized instance plus its substrate provenance."""

    config: ScenarioConfig
    game: RouteNavigationGame
    network: RoadNetwork
    planner: RoutePlanner
    tasks: TaskSet
    traces: TraceSet
    od_pairs: tuple[tuple[int, int], ...]

    @property
    def num_users(self) -> int:
        return self.game.num_users

    @property
    def num_tasks(self) -> int:
        return self.game.num_tasks


def build_scenario(
    config: ScenarioConfig,
    *,
    traces: TraceSet | None = None,
) -> Scenario:
    """Build a scenario; pass ``traces`` to use real parsed data instead of
    the synthetic generator."""
    stream = RngStream(config.seed)
    city = get_city(config.city)

    net = city.build_network(seed=stream.child("network"))
    projection = GeoProjection.fit(city.lonlat_box, net)

    if traces is None:
        traces = synthesize_traces(
            city,
            n_vehicles=config.n_vehicles,
            trips_per_vehicle=config.trips_per_vehicle,
            seed=stream.child("traces"),
        )

    if config.congestion_source == "traces":
        traffic: BackgroundTraffic | TraceDerivedTraffic = TraceDerivedTraffic(
            traces, projection, scale=config.congestion_scale
        )
    else:
        box = net.bounding_box()
        field = CongestionField.random(
            (box.min_x, box.min_y),
            (box.max_x, box.max_y),
            n_hotspots=config.congestion_hotspots,
            seed=stream.child("congestion"),
        )
        traffic = BackgroundTraffic(field, scale=config.congestion_scale)
    planner = RoutePlanner(
        net,
        traffic,
        method=config.route_method,
        penalty_factor=config.penalty_factor,
    )

    od_geo = extract_od_pairs(traces)
    require(len(od_geo) >= 1, "trace set yielded no usable OD pairs")
    od_nodes = od_pairs_to_nodes(
        net,
        od_geo,
        projection=projection,
        n_pairs=config.n_users,
        seed=stream.child("od"),
    )

    rng_routes = stream.child("routes")
    lo, hi = config.route_count_range
    route_sets: list[list[Route]] = []
    kept_pairs: list[tuple[int, int]] = []
    attempts = 0
    idx = 0
    all_pairs = list(od_nodes)
    while len(route_sets) < config.n_users:
        attempts += 1
        if attempts > 20 * config.n_users:
            raise NoCandidateRoutesError(
                f"could not route enough OD pairs: {len(route_sets)} of "
                f"{config.n_users} users have candidate routes after "
                f"{attempts - 1} routing attempts — the network may be too "
                "disconnected or route_count_range too narrow"
            )
        if idx >= len(all_pairs):
            # Recycle pairs (with different k draws) if routing failed often.
            idx = 0
        o, d = all_pairs[idx]
        idx += 1
        k = int(rng_routes.integers(lo, hi + 1))
        routes = planner.recommend(o, d, k)
        if routes:
            route_sets.append(routes)
            kept_pairs.append((o, d))

    tasks = generate_tasks(
        net,
        config.n_tasks,
        base_reward_range=config.base_reward_range,
        reward_increment_range=config.reward_increment_range,
        seed=stream.child("tasks"),
    )
    route_sets = assign_tasks_to_routes(
        net, route_sets, tasks, coverage_radius_km=config.coverage_radius_km
    )

    rng_weights = stream.child("weights")
    wlo, whi = config.user_weight_range
    user_weights = [
        UserWeights.random(rng_weights, low=wlo, high=whi)
        for _ in range(config.n_users)
    ]
    plo, phi_hi = config.platform_weight_range
    if config.phi is not None and config.theta is not None:
        platform = PlatformWeights(config.phi, config.theta)
    else:
        draw = PlatformWeights.random(rng_weights, low=plo, high=phi_hi)
        platform = PlatformWeights(
            config.phi if config.phi is not None else draw.phi,
            config.theta if config.theta is not None else draw.theta,
        )

    game = RouteNavigationGame.build(
        tasks, route_sets, user_weights, platform,
        detour_unit_km=config.detour_unit_km,
    )
    return Scenario(
        config=config,
        game=game,
        network=net,
        planner=planner,
        tasks=tasks,
        traces=traces,
        od_pairs=tuple(kept_pairs),
    )
