"""Instance construction: city substrate + traces + tasks -> game (Table 2)."""

from repro.scenario.config import ScenarioConfig
from repro.scenario.builder import Scenario, build_scenario

__all__ = ["Scenario", "ScenarioConfig", "build_scenario"]
