"""Instance construction: city substrate + traces + tasks -> game (Table 2)."""

from repro.scenario.config import ScenarioConfig
from repro.scenario.builder import (
    NoCandidateRoutesError,
    Scenario,
    build_scenario,
)

__all__ = [
    "NoCandidateRoutesError",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
]
