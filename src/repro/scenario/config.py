"""Scenario configuration mirroring the paper's Table 2.

| Table 2 parameter                           | Field                      |
|---------------------------------------------|----------------------------|
| Route number recommended to a user: 1-5     | ``route_count_range``      |
| Original reward of a task a_k: 10-20        | ``base_reward_range``      |
| Reward-increment parameter mu_k: 0-1        | ``reward_increment_range`` |
| User weights alpha, beta, gamma: 0.1-0.9    | ``user_weight_range``      |
| System weights phi, theta: 0.1-0.8          | ``platform_weight_range``  |
| Number of repeated simulations: 500         | (experiment-level knob)    |
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.utils.validation import check_in_range, check_positive, require


@dataclass(frozen=True)
class ScenarioConfig:
    """Declarative recipe for one simulated VCS instance."""

    city: str = "shanghai"
    n_users: int = 20
    n_tasks: int = 50
    seed: int | None = None

    # Route recommendation (Table 2 row 1).
    route_count_range: tuple[int, int] = (1, 5)
    coverage_radius_km: float = 0.35
    route_method: str = "penalty"
    penalty_factor: float = 2.2
    # Unit of the detour distance h(r) in the profit function: 0.1 km means
    # h counts 100 m blocks, putting detours on the paper's magnitude
    # (comparable to task rewards; see Fig. 12 / Table 5).
    detour_unit_km: float = 0.1

    # Task rewards (Table 2 rows 2-3).
    base_reward_range: tuple[float, float] = (10.0, 20.0)
    reward_increment_range: tuple[float, float] = (0.0, 1.0)

    # Preference weights (Table 2 rows 4-5).  ``phi``/``theta`` override the
    # random draw with fixed platform weights (used by the Fig. 12 sweeps).
    user_weight_range: tuple[float, float] = (0.1, 0.9)
    platform_weight_range: tuple[float, float] = (0.1, 0.8)
    phi: float | None = None
    theta: float | None = None

    # Congestion substrate: "field" synthesizes Gaussian slowdown hotspots;
    # "traces" estimates observed speeds from the taxi traces themselves
    # (the paper's own recipe, Section 5.1).
    congestion_source: str = "field"
    congestion_hotspots: int = 4
    congestion_scale: float = 20.0

    # Trace substrate: number of synthetic vehicles (None = the city's
    # paper-selected trace count) and trips per vehicle.
    n_vehicles: int | None = None
    trips_per_vehicle: int = 3

    def __post_init__(self) -> None:
        require(self.n_users >= 1, f"n_users must be >= 1, got {self.n_users}")
        require(self.n_tasks >= 0, f"n_tasks must be >= 0, got {self.n_tasks}")
        lo, hi = self.route_count_range
        require(1 <= lo <= hi <= 10, f"bad route_count_range: {self.route_count_range}")
        check_positive("coverage_radius_km", self.coverage_radius_km)
        require(self.route_method in ("penalty", "ksp"),
                f"bad route_method: {self.route_method!r}")
        require(self.penalty_factor > 1.0, "penalty_factor must exceed 1")
        check_positive("detour_unit_km", self.detour_unit_km)
        blo, bhi = self.base_reward_range
        require(0 < blo <= bhi, f"bad base_reward_range: {self.base_reward_range}")
        wlo, whi = self.user_weight_range
        require(0 < wlo <= whi, f"bad user_weight_range: {self.user_weight_range}")
        plo, phi_ = self.platform_weight_range
        require(0 <= plo <= phi_ < 1, f"bad platform_weight_range: {self.platform_weight_range}")
        if self.phi is not None:
            check_in_range("phi", self.phi, 0.0, 1.0)
        if self.theta is not None:
            check_in_range("theta", self.theta, 0.0, 1.0)
        require(self.congestion_source in ("field", "traces"),
                f"bad congestion_source: {self.congestion_source!r}")
        require(self.congestion_hotspots >= 0, "congestion_hotspots must be >= 0")
        check_positive("congestion_scale", self.congestion_scale)
        if self.n_vehicles is not None:
            require(self.n_vehicles >= 1,
                    f"n_vehicles must be >= 1, got {self.n_vehicles}")
        require(self.trips_per_vehicle >= 1,
                f"trips_per_vehicle must be >= 1, got {self.trips_per_vehicle}")

    def with_(self, **kwargs) -> "ScenarioConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)
