"""Asynchronous best-response dynamics (extension, not in the paper).

The paper's Algorithms 1-2 synchronize users into decision slots.  In a
real deployment phones act on their own clocks; this allocator models
that: each user carries an independent Poisson clock (rate ``rates[i]``,
default 1 per virtual time unit) and best-responds at its own ticks
against the then-current profile.  In a potential game, every improving
tick strictly raises ``phi``, so the process converges to the same Nash
equilibria as the slotted dynamics — without any coordination at all.

``decision_slots`` counts activations (comparable to BATS); the result's
``virtual_time`` records the continuous time of the last improving tick,
the natural latency measure for asynchronous deployments.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.responses import single_best_update
from repro.algorithms.base import AllocationResult, Allocator, MoveRecord, _HistoryRecorder
from repro.utils.validation import require


class AsyncBR(Allocator):
    """Poisson-clock asynchronous best response."""

    name = "ASYNC"

    def __init__(self, *, seed=None, config=None, backend=None,
                 rates: Sequence[float] | None = None,
                 quiet_window: float = 3.0):
        """``rates[i]``: user ``i``'s activation rate (default 1.0 each).
        The run stops once every user has ticked at least once since the
        last route change *and* ``quiet_window`` virtual time units passed
        without a change (a distributed-friendly stopping rule)."""
        super().__init__(seed=seed, config=config, backend=backend)
        self.rates = None if rates is None else [float(r) for r in rates]
        require(quiet_window > 0, "quiet_window must be positive")
        self.quiet_window = float(quiet_window)
        self.virtual_time = 0.0

    def run(
        self,
        game: RouteNavigationGame,
        *,
        initial: Sequence[int] | StrategyProfile | None = None,
    ) -> AllocationResult:
        m = game.num_users
        rates = np.ones(m) if self.rates is None else np.asarray(self.rates)
        require(rates.shape == (m,), f"rates must have shape ({m},)")
        require(bool(np.all(rates > 0)), "rates must be positive")

        profile = self._initial_profile(game, initial)
        recorder = _HistoryRecorder(
            profile,
            enabled=self.config.record_history,
            validate=self.config.validate,
        )
        ga = game.arrays
        moves: list[MoveRecord] = []
        # Next tick per user: exponential inter-arrival times.
        next_tick = self.rng.exponential(1.0 / rates)
        now = 0.0
        last_change = 0.0
        ticked_since_change = np.zeros(m, dtype=bool)
        activations = 0
        converged = False
        while activations < self.config.max_slots:
            if (
                bool(ticked_since_change.all())
                and now - last_change >= self.quiet_window
            ):
                converged = True
                break
            user = int(np.argmin(next_tick))
            now = float(next_tick[user])
            next_tick[user] += float(self.rng.exponential(1.0 / rates[user]))
            activations += 1
            prop = single_best_update(profile, user, pick="random", rng=self.rng)
            if prop is None:
                ticked_since_change[user] = True
                continue
            old = profile.move(prop.user, prop.new_route)
            moves.append(
                MoveRecord(activations, prop.user, old, prop.new_route, prop.gain)
            )
            last_change = now
            ticked_since_change[:] = False
            ticked_since_change[user] = True
            if self.config.validate:
                profile.validate()
            gained, lost = ga.changed_tasks(
                ga.route_id(user, old), ga.route_id(user, prop.new_route)
            )
            recorder.advance(
                profile,
                tau_sum=prop.tau,
                changed_tasks=np.concatenate([gained, lost]),
                movers=np.asarray([user], dtype=np.intp),
            )
        self.virtual_time = now
        return AllocationResult(
            algorithm=self.name,
            profile=profile,
            decision_slots=activations,
            converged=converged,
            moves=moves,
            **recorder.as_arrays(),
        )

    def _slot(self, profile: StrategyProfile, slot: int):  # pragma: no cover
        raise NotImplementedError("AsyncBR overrides run() directly")
