"""MUUN: Multi-User Update Navigation with PUU scheduling (Algorithm 3).

Per decision slot every improving user submits ``(tau_i, B_i)`` — the
potential gain of its best move and the tasks the move touches.  PUU sorts
requests by ``delta_i = tau_i / |B_i|`` (non-ascending) and greedily grants
a set with pairwise-disjoint ``B_i``; the granted users update concurrently.
Disjointness guarantees each granted move's gain remains exact when applied
together, so the potential rises by ``sum tau_i`` in one slot.
"""

from __future__ import annotations

from repro.core.profile import StrategyProfile
from repro.core.responses import UpdateProposal
from repro.algorithms.base import Allocator, ProposalCache


def puu_select(proposals: list[UpdateProposal]) -> list[UpdateProposal]:
    """Algorithm 3: greedy disjoint selection by non-ascending ``delta_i``.

    Users whose move touches no task at all (``B_i`` empty — a pure
    detour/congestion improvement) never conflict and are always granted.
    """
    order = sorted(
        proposals, key=lambda p: (-p.delta, p.user)
    )  # deterministic tie-break by user id
    granted: list[UpdateProposal] = []
    occupied: set[int] = set()
    for prop in order:
        if prop.touched_tasks & occupied:
            continue
        granted.append(prop)
        occupied |= prop.touched_tasks
    return granted


class MUUN(Allocator):
    """Best-response dynamics under PUU scheduling."""

    name = "MUUN"

    def __init__(self, *, seed=None, config=None, sort_key: str = "delta"):
        """``sort_key`` selects PUU's greedy order: ``"delta"`` (the paper's
        ``tau_i/|B_i|``) or ``"tau"`` (ablation: raw gain)."""
        super().__init__(seed=seed, config=config)
        if sort_key not in ("delta", "tau"):
            raise ValueError(f"unknown sort_key: {sort_key!r}")
        self.sort_key = sort_key
        # Per-run stats for the Table 3 experiment.
        self.granted_per_slot: list[int] = []

    def run(self, game, *, initial=None):
        self.granted_per_slot = []
        return super().run(game, initial=initial)

    def _begin_run(self, game):
        self._cache = ProposalCache(game, pick="random", rng=self.rng)

    def _note_move(self, user, old_route, new_route):
        self._cache.note_move(user, old_route, new_route)

    def _slot(self, profile: StrategyProfile, slot: int):
        proposals = self._cache.proposals(profile)
        if not proposals:
            return []
        if self.sort_key == "delta":
            granted = puu_select(proposals)
        else:
            granted = _select_by_tau(proposals)
        self.granted_per_slot.append(len(granted))
        return [(p.user, p.new_route, p.gain) for p in granted]


def _select_by_tau(proposals: list[UpdateProposal]) -> list[UpdateProposal]:
    """Ablation variant: greedy disjoint selection by raw ``tau_i``."""
    order = sorted(proposals, key=lambda p: (-p.tau, p.user))
    granted: list[UpdateProposal] = []
    occupied: set[int] = set()
    for prop in order:
        if prop.touched_tasks & occupied:
            continue
        granted.append(prop)
        occupied |= prop.touched_tasks
    return granted
