"""MUUN: Multi-User Update Navigation with PUU scheduling (Algorithm 3).

Per decision slot every improving user submits ``(tau_i, B_i)`` — the
potential gain of its best move and the tasks the move touches.  PUU sorts
requests by ``delta_i = tau_i / |B_i|`` (non-ascending) and greedily grants
a set with pairwise-disjoint ``B_i``; the granted users update concurrently.
Disjointness guarantees each granted move's gain remains exact when applied
together, so the potential rises by ``sum tau_i`` in one slot.

The production path is vectorized: the proposal batch arrives as
struct-of-arrays (:class:`~repro.core.responses.ProposalBatch`), the sort
is one stable ``argsort`` on ``delta_i``, and disjointness is resolved by
:func:`~repro.core.responses.greedy_disjoint`'s task-occupancy mask over
the touched-task CSR.  The Python-set implementations (:func:`puu_select`,
:func:`_select_by_tau`) survive as certification oracles — the vectorized
selection grants the same set on every input (``tests/algorithms/test_puu.py``,
``tests/core/test_proposal_batch.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import StrategyProfile
from repro.core.responses import ProposalBatch, UpdateProposal, greedy_disjoint
from repro.algorithms.base import Allocator, ProposalCache


def puu_select(proposals: list[UpdateProposal]) -> list[UpdateProposal]:
    """Algorithm 3: greedy disjoint selection by non-ascending ``delta_i``.

    Users whose move touches no task at all (``B_i`` empty — a pure
    detour/congestion improvement) never conflict and are always granted.

    Scalar oracle; the allocator itself runs :func:`puu_select_batch`.
    """
    order = sorted(
        proposals, key=lambda p: (-p.delta, p.user)
    )  # deterministic tie-break by user id
    granted: list[UpdateProposal] = []
    occupied: set[int] = set()
    for prop in order:
        if prop.touched_tasks & occupied:
            continue
        granted.append(prop)
        occupied |= prop.touched_tasks
    return granted


def puu_select_batch(
    batch: ProposalBatch, num_tasks: int, *, sort_key: str = "delta"
) -> list[int]:
    """Vectorized Algorithm 3 over a proposal batch.

    Returns granted row indices in grant (priority) order — the same
    grant set and order as :func:`puu_select` (or the ``tau`` ablation's
    :func:`_select_by_tau`) applied to ``batch.as_list()``.  Batch rows
    are user-ascending, so a *stable* descending argsort on the priority
    key reproduces the scalar path's ``(-key, user)`` tie-break.
    """
    key = batch.deltas if sort_key == "delta" else batch.taus
    order = np.argsort(-key, kind="stable")
    return greedy_disjoint(order, batch.b_indptr, batch.b_tasks, num_tasks)


class MUUN(Allocator):
    """Best-response dynamics under PUU scheduling."""

    name = "MUUN"

    def __init__(self, *, seed=None, config=None, backend=None,
                 sort_key: str = "delta"):
        """``sort_key`` selects PUU's greedy order: ``"delta"`` (the paper's
        ``tau_i/|B_i|``) or ``"tau"`` (ablation: raw gain)."""
        super().__init__(seed=seed, config=config, backend=backend)
        if sort_key not in ("delta", "tau"):
            raise ValueError(f"unknown sort_key: {sort_key!r}")
        self.sort_key = sort_key
        # Per-run stats for the Table 3 experiment.
        self.granted_per_slot: list[int] = []

    def run(self, game, *, initial=None):
        self.granted_per_slot = []
        return super().run(game, initial=initial)

    def _begin_run(self, game):
        self._cache = ProposalCache(game, pick="random", rng=self.rng)

    def _note_move(self, user, old_route, new_route):
        self._cache.note_move(user, old_route, new_route)

    def _slot(self, profile: StrategyProfile, slot: int):
        batch = self._cache.proposals(profile)
        if not len(batch):
            return []
        granted = puu_select_batch(
            batch, profile.game.num_tasks, sort_key=self.sort_key
        )
        self.granted_per_slot.append(len(granted))
        return [batch.triple(k) for k in granted]


def _select_by_tau(proposals: list[UpdateProposal]) -> list[UpdateProposal]:
    """Ablation oracle: greedy disjoint selection by raw ``tau_i``."""
    order = sorted(proposals, key=lambda p: (-p.tau, p.user))
    granted: list[UpdateProposal] = []
    occupied: set[int] = set()
    for prop in order:
        if prop.touched_tasks & occupied:
            continue
        granted.append(prop)
        occupied |= prop.touched_tasks
    return granted
