"""Centralized greedy baseline (not in the paper; ablation reference).

Users are assigned one at a time in decreasing-opportunity order: at each
step the unassigned user whose best available route yields the largest
marginal total-profit increase is committed.  Gives a cheap centralized
reference between RRN and CORN for sanity-checking experiment shapes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.profit import total_profit
from repro.algorithms.base import AllocationResult, Allocator, MoveRecord, _HistoryRecorder


class GreedyCentralized(Allocator):
    """Greedy marginal-total-profit assignment."""

    name = "GREEDY"

    def run(
        self,
        game: RouteNavigationGame,
        *,
        initial: Sequence[int] | StrategyProfile | None = None,
    ) -> AllocationResult:
        # Start everyone on route 0, then greedily re-commit users.
        profile = StrategyProfile(game, np.zeros(game.num_users, dtype=np.intp))
        recorder = _HistoryRecorder(profile, enabled=self.config.record_history)
        moves: list[MoveRecord] = []
        unassigned = set(game.users)
        slot = 0
        while unassigned:
            slot += 1
            best: tuple[float, int, int] | None = None
            base_total = total_profit(profile)
            for i in sorted(unassigned):
                for j in range(game.num_routes(i)):
                    old = profile.move(i, j)
                    delta = total_profit(profile) - base_total
                    profile.move(i, old)
                    if best is None or delta > best[0]:
                        best = (delta, i, j)
            assert best is not None
            _, user, route = best
            old = profile.move(user, route)
            if old != route:
                moves.append(MoveRecord(slot, user, old, route, best[0]))
            unassigned.discard(user)
            recorder.snapshot(profile)
        return AllocationResult(
            algorithm=self.name,
            profile=profile,
            decision_slots=slot,
            converged=True,
            moves=moves,
            **recorder.as_arrays(),
        )

    def _slot(self, profile: StrategyProfile, slot: int):  # pragma: no cover
        raise NotImplementedError("GreedyCentralized overrides run() directly")
