"""BUAU: Best Update of All Users (Section 5.2, item 4).

Per decision slot the platform inspects *every* user's best move and grants
the single user whose move maximizes the potential-function increase — by
Eq. (11) that is the user with the largest ``tau_i = gain_i / alpha_i``.
Greedy steepest ascent on the potential.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import StrategyProfile
from repro.algorithms.base import Allocator, ProposalCache


class BUAU(Allocator):
    """Steepest-ascent best-response dynamics (one user per slot)."""

    name = "BUAU"

    def _begin_run(self, game):
        self._cache = ProposalCache(game, pick="first")

    def _note_move(self, user, old_route, new_route):
        self._cache.note_move(user, old_route, new_route)

    def _slot(self, profile: StrategyProfile, slot: int):
        batch = self._cache.proposals(profile)
        if not len(batch):
            return []
        # argmax returns the first maximum; rows are user-ascending, so
        # this matches the scalar scan's strict-> tie-break by user id.
        return [batch.triple(int(np.argmax(batch.taus)))]
