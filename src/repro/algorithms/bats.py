"""BATS: Bayesian Asynchronous Task Selection, adapted (Section 5.2, item 5).

Adapted from the asynchronous task-selection scheme of Cheung et al. to the
route-selection setting, matching the paper's description: "the user updates
the decision in sequence to maximize the profit in each decision slot.  In
some decision slots, some users cannot increase the profits but still update
the decisions, which increases the number of decision slots for convergence."

Users are activated round-robin; every activation consumes a decision slot
whether or not the activated user can improve.  The run terminates once a
full round passes with no actual route change (the asynchronous analogue of
"no update request received").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.responses import single_best_update
from repro.algorithms.base import AllocationResult, Allocator, MoveRecord, _HistoryRecorder

_NO_TASKS = np.zeros(0, dtype=np.intp)
_NO_USERS = np.zeros(0, dtype=np.intp)


class BATS(Allocator):
    """Round-robin asynchronous best response; every activation costs a slot."""

    name = "BATS"

    def run(
        self,
        game: RouteNavigationGame,
        *,
        initial: Sequence[int] | StrategyProfile | None = None,
    ) -> AllocationResult:
        profile = self._initial_profile(game, initial)
        recorder = _HistoryRecorder(
            profile,
            enabled=self.config.record_history,
            validate=self.config.validate,
        )
        ga = game.arrays
        moves: list[MoveRecord] = []
        order = list(game.users)
        self.rng.shuffle(order)
        slot = 0
        idle_streak = 0  # consecutive activations without a route change
        converged = False
        while slot < self.config.max_slots:
            if idle_streak >= game.num_users:
                converged = True
                break
            user = order[slot % game.num_users]
            slot += 1
            prop = single_best_update(profile, user, pick="random", rng=self.rng)
            if prop is None:
                idle_streak += 1
                tau_sum, changed, movers = 0.0, _NO_TASKS, _NO_USERS
            else:
                idle_streak = 0
                old = profile.move(prop.user, prop.new_route)
                moves.append(
                    MoveRecord(slot, prop.user, old, prop.new_route, prop.gain)
                )
                gained, lost = ga.changed_tasks(
                    ga.route_id(user, old), ga.route_id(user, prop.new_route)
                )
                tau_sum = prop.tau
                changed = np.concatenate([gained, lost])
                movers = np.asarray([user], dtype=np.intp)
            if self.config.validate:
                profile.validate()
            recorder.advance(
                profile, tau_sum=tau_sum, changed_tasks=changed, movers=movers
            )
        return AllocationResult(
            algorithm=self.name,
            profile=profile,
            decision_slots=slot,
            converged=converged,
            moves=moves,
            **recorder.as_arrays(),
        )

    def _slot(self, profile: StrategyProfile, slot: int):  # pragma: no cover
        raise NotImplementedError("BATS overrides run() directly")
