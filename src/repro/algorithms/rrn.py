"""RRN: Random Route Navigation (Section 5.2, item 7).

Every user keeps a uniformly random route from its recommended set — no
dynamics, zero decision slots.  The floor baseline of Figs. 7-10.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.algorithms.base import AllocationResult, Allocator, _HistoryRecorder


class RRN(Allocator):
    """Uniform random selection, no updates."""

    name = "RRN"

    def run(
        self,
        game: RouteNavigationGame,
        *,
        initial: Sequence[int] | StrategyProfile | None = None,
    ) -> AllocationResult:
        profile = self._initial_profile(game, initial)
        recorder = _HistoryRecorder(profile, enabled=self.config.record_history)
        return AllocationResult(
            algorithm=self.name,
            profile=profile,
            decision_slots=0,
            converged=True,
            moves=[],
            **recorder.as_arrays(),
        )

    def _slot(self, profile: StrategyProfile, slot: int):  # pragma: no cover
        raise NotImplementedError("RRN overrides run() directly")
