"""CORN: Centralized Optimal Route Navigation (Section 5.2, item 6).

Exact maximization of the total profit (Eq. 5).  The problem is NP-hard
(Theorem 1); the paper evaluates CORN only on small instances (Fig. 7 and
Table 4 use 9-14 users), which a depth-first branch and bound handles:

- Users are assigned in order; at every node the children (routes of the
  next user) are re-ranked and pruned by a count-aware admissible bound.
- The bound uses the *suffix-max share table*
  ``SUF[k, n] = max_{n <= q <= M} w_k(q)/q``: once task ``k`` already has
  ``c_k`` assigned participants, no participant can ever earn more than
  ``SUF[k, c_k]`` from it (counts only grow down a DFS path), and a user
  yet to join earns at most ``SUF[k, c_k + 1]``.  Summing these caps over
  (a) the routes already fixed and (b) each remaining user's best route
  yields an upper bound that tightens as the path deepens — dramatically
  stronger than the static solo-share bound on contended instances.
- The incumbent is seeded with best-response dynamics (a Nash profile is
  usually within a few percent of optimal — the paper's thesis), so
  pruning bites immediately.

:func:`exhaustive_optimum` enumerates the full strategy space and is used
by tests to certify the branch and bound on small instances.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.arrays import segment_sums
from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.profit import total_profit
from repro.algorithms.base import AllocationResult, Allocator, RunConfig, _HistoryRecorder
from repro.algorithms.buau import BUAU


class CORNBudgetExceeded(RuntimeError):
    """Raised when the node budget is exhausted before the search completes."""


class CORN(Allocator):
    """Branch-and-bound exact solver for the centralized problem (Eq. 5)."""

    name = "CORN"

    def __init__(
        self,
        *,
        seed=None,
        config=None,
        backend=None,
        node_budget: int = 10_000_000,
        order_users: bool = True,
    ):
        """``order_users=False`` disables the most-constrained-first
        permutation (ablation knob: ~20x more nodes on typical instances)."""
        super().__init__(seed=seed, config=config, backend=backend)
        self.node_budget = int(node_budget)
        self.order_users = bool(order_users)
        self.nodes_expanded = 0

    def run(
        self,
        game: RouteNavigationGame,
        *,
        initial: Sequence[int] | StrategyProfile | None = None,
    ) -> AllocationResult:
        # Assign most-constrained users first (fewest routes, largest
        # coverage as tie-break): their forced/near-forced choices make the
        # count-aware bound realistic early, cutting the search ~20x.
        outer_game = game
        if self.order_users:
            order = sorted(
                game.users,
                key=lambda i: (
                    game.num_routes(i),
                    -max(
                        len(game.covered_tasks(i, j))
                        for j in range(game.num_routes(i))
                    ),
                ),
            )
        else:
            order = list(game.users)
        permuted = list(order) != list(game.users)
        if permuted:
            game = RouteNavigationGame(
                outer_game.tasks,
                tuple(outer_game.route_sets[i] for i in order),
                tuple(outer_game.user_weights[i] for i in order),
                outer_game.platform,
                outer_game.detour_unit_km,
            )
            if initial is not None:
                if isinstance(initial, StrategyProfile):
                    initial = [initial.route_of(i) for i in order]
                else:
                    initial = [initial[i] for i in order]
        m = game.num_users
        n = game.num_tasks
        base = game.tasks.base_rewards
        incs = game.tasks.reward_increments

        # SUF[k, q] = max share of task k over counts q..M (SUF[:, 0] unused;
        # one extra column so c+1 == M+1 safely maps to the empty max = SUF[:, M]).
        if n:
            q = np.arange(1, m + 1, dtype=float)
            share_table = (base[:, None] + incs[:, None] * np.log(q)[None, :]) / q
            suf = np.empty((n, m + 2))
            suf[:, m] = share_table[:, m - 1]
            suf[:, m + 1] = share_table[:, m - 1]  # counts never exceed M
            for col in range(m - 1, 0, -1):
                suf[:, col] = np.maximum(share_table[:, col - 1], suf[:, col + 1])
            suf[:, 0] = suf[:, 1]
        else:
            suf = np.zeros((0, m + 2))

        # Global flattened route structure: the game's compiled CSR layout
        # scores every route of every user in one segmented reduction (the
        # per-node bound is the hot path).
        ga = game.arrays
        alphas = ga.alpha

        # Incumbent: a Nash profile from steepest-ascent dynamics.
        seed_result = BUAU(
            seed=self.rng, config=RunConfig(record_history=False)
        ).run(game, initial=initial)
        self._best_choices = seed_result.profile.choices.copy()
        self._best_value = total_profit(seed_result.profile)

        self._game = game
        self._suf = suf
        self._task_idx = np.arange(n)
        self._alphas = alphas
        self._base = base
        self._incs = incs
        self._big_flat = ga.task_ids
        self._big_offsets = ga.indptr[:-1]
        self._route_lens = ga.route_len
        self._route_alpha = alphas[ga.route_user]
        self._route_cost_flat = ga.route_cost
        self._user_route_start = ga.user_route_offset
        self._counts = np.zeros(n, dtype=np.intp)
        self._alpha_mass = np.zeros(n)
        self._running_reward = 0.0
        self._running_cost = 0.0
        self._choices = np.zeros(m, dtype=np.intp)
        # chosen_global[i] = global route index of user i's current choice.
        self._chosen_global = ga.user_route_offset[:-1].copy()
        self.nodes_expanded = 0

        if m > 0:
            self._dfs(0)

        if permuted:
            # Map the permuted solution back to the caller's user order.
            unpermuted = np.zeros(m, dtype=np.intp)
            for pos, original in enumerate(order):
                unpermuted[original] = self._best_choices[pos]
            self._best_choices = unpermuted
        profile = StrategyProfile(outer_game, self._best_choices)
        recorder = _HistoryRecorder(profile, enabled=self.config.record_history)
        return AllocationResult(
            algorithm=self.name,
            profile=profile,
            decision_slots=0,
            converged=True,
            moves=[],
            **recorder.as_arrays(),
        )

    # ----------------------------------------------------------------- bound
    def _all_route_caps(self, v: np.ndarray) -> np.ndarray:
        """``alpha_r * sum v[ids_r] - cost_r`` for every route of every user.

        One vectorized segmented reduction over the game's CSR layout
        (:func:`repro.core.arrays.segment_sums` absorbs the empty-segment
        reduceat quirks).
        """
        sums = segment_sums(v[self._big_flat], self._big_offsets, self._route_lens)
        return self._route_alpha * sums - self._route_cost_flat

    # ------------------------------------------------------------------- DFS
    def _dfs(self, user: int) -> None:
        game = self._game
        m = game.num_users
        if user == m:
            value = self._running_reward - self._running_cost
            if value > self._best_value + 1e-12:
                self._best_value = value
                self._best_choices = self._choices.copy()
            return
        self.nodes_expanded += 1
        if self.nodes_expanded > self.node_budget:
            raise CORNBudgetExceeded(
                f"CORN exceeded node budget {self.node_budget}; "
                "use fewer users or a larger budget"
            )

        n = game.num_tasks
        starts = self._user_route_start
        if n:
            # Count-aware share caps at this node.
            v_cur = self._suf[self._task_idx, np.minimum(self._counts, m)]
            v_next = self._suf[self._task_idx, np.minimum(self._counts + 1, m + 1)]
        else:
            v_cur = v_next = np.zeros(0)

        caps_next = self._all_route_caps(v_next)
        # Cap on what the already-fixed routes can still be worth.
        if user > 0:
            caps_cur = self._all_route_caps(v_cur)
            assigned_bound = float(caps_cur[self._chosen_global[:user]].sum())
        else:
            assigned_bound = 0.0
        # Cap for each remaining user (> user): best route under v_next.
        remaining_after = 0.0
        if user + 1 < m:
            tail = np.maximum.reduceat(caps_next, starts[user + 1 : m])
            remaining_after = float(tail.sum())

        my_caps = caps_next[starts[user] : starts[user + 1]]
        order = np.argsort(-my_caps, kind="stable")
        base, incs = self._base, self._incs
        alpha = float(self._alphas[user])
        for j in order:
            j = int(j)
            ub = assigned_bound + float(my_caps[j]) + remaining_after
            if ub <= self._best_value + 1e-12:
                break  # caps are sorted descending: no later child can pass
            ids = game.covered_tasks(user, j)
            # ---- apply
            reward_delta = 0.0
            if ids.size:
                n_old = self._counts[ids].astype(float)
                mass_old = self._alpha_mass[ids]
                safe_n = np.maximum(n_old, 1.0)
                old_terms = np.where(
                    n_old >= 1.0,
                    (base[ids] + incs[ids] * np.log(safe_n)) / safe_n * mass_old,
                    0.0,
                )
                n_new = n_old + 1.0
                new_terms = (
                    (base[ids] + incs[ids] * np.log(n_new)) / n_new
                    * (mass_old + alpha)
                )
                reward_delta = float(new_terms.sum() - old_terms.sum())
                self._counts[ids] += 1
                self._alpha_mass[ids] += alpha
            cost = float(self._route_cost_flat[starts[user] + j])
            self._running_reward += reward_delta
            self._running_cost += cost
            self._choices[user] = j
            self._chosen_global[user] = starts[user] + j

            self._dfs(user + 1)

            # ---- undo
            self._running_cost -= cost
            self._running_reward -= reward_delta
            if ids.size:
                self._counts[ids] -= 1
                self._alpha_mass[ids] -= alpha

    def _slot(self, profile: StrategyProfile, slot: int):  # pragma: no cover
        raise NotImplementedError("CORN overrides run() directly")


def exhaustive_optimum(game: RouteNavigationGame) -> tuple[StrategyProfile, float]:
    """Enumerate the whole strategy space; returns ``(argmax, max_total)``.

    Exponential — only for small games (tests, Fig. 1/2 scale).
    """
    best_profile: StrategyProfile | None = None
    best_value = -np.inf
    for profile in StrategyProfile.all_profiles(game):
        value = total_profit(profile)
        if value > best_value:
            best_value = value
            best_profile = profile
    assert best_profile is not None
    return best_profile, float(best_value)
