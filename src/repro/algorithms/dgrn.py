"""DGRN: Distributed Game-theoretical Route Navigation (Section 5.2, item 1).

Per decision slot, every user with a non-empty best route set
``Delta_i(t)`` sends an update request; the platform's Single User Update
(SUU) scheduler grants exactly one request uniformly at random, and the
granted user switches to a route drawn from its best route set.

Proposals are cached between slots and invalidated by touched tasks
(:class:`~repro.algorithms.base.ProposalCache`): a user whose route tasks
did not change keeps the same best route set, so only the conflict
neighbourhood of the last move is recomputed — in one batched
best-response sweep (:func:`~repro.core.responses.batch_best_updates`)
rather than a per-user Python loop.
"""

from __future__ import annotations

from repro.core.profile import StrategyProfile
from repro.algorithms.base import Allocator, ProposalCache


class DGRN(Allocator):
    """Best-response dynamics under SUU scheduling."""

    name = "DGRN"

    def _begin_run(self, game):
        self._cache = ProposalCache(game, pick="random", rng=self.rng)

    def _note_move(self, user, old_route, new_route):
        self._cache.note_move(user, old_route, new_route)

    def _slot(self, profile: StrategyProfile, slot: int):
        batch = self._cache.proposals(profile)
        if not len(batch):
            return []
        return [batch.triple(int(self.rng.integers(0, len(batch))))]
