"""Allocator interface and the shared decision-slot driver.

Response-dynamics algorithms (DGRN, MUUN, BRUN, BUAU, BATS) share one loop:
per decision slot, collect the users that could improve ("update requests"),
let a scheduler grant some of them, apply the granted moves, and stop when a
slot produces no requests.  Subclasses implement :meth:`Allocator._slot`.

Centralized algorithms (CORN, greedy, RRN) override :meth:`Allocator.run`
directly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.equilibrium import is_nash_equilibrium
from repro.core.potential import potential
from repro.core.profile import StrategyProfile
from repro.core.profit import all_profits
from repro.core.responses import ProposalBatch, batch_best_updates
from repro.obs import counter as _obs_counter
from repro.obs import histogram as _obs_histogram
from repro.obs.runtime import RUNTIME as _OBS
from repro.obs.tracing import record as _obs_record
from repro.obs.tracing import trace
from repro.utils.rng import SeedLike, as_generator

_EMPTY_TASKS = np.zeros(0, dtype=np.intp)


@dataclass(frozen=True, slots=True)
class MoveRecord:
    """One granted route switch."""

    slot: int
    user: int
    old_route: int
    new_route: int
    gain: float


@dataclass(frozen=True, slots=True)
class RunConfig:
    """Run-level knobs shared by all allocators."""

    max_slots: int = 100_000
    record_history: bool = True
    validate: bool = False  # re-verify counters after every slot (tests)


@dataclass
class AllocationResult:
    """Outcome of one allocator run."""

    algorithm: str
    profile: StrategyProfile
    decision_slots: int
    converged: bool
    moves: list[MoveRecord] = field(default_factory=list)
    # Histories are indexed by slot; entry 0 is the initial profile.
    potential_history: np.ndarray | None = None
    total_profit_history: np.ndarray | None = None
    profit_history: np.ndarray | None = None  # (slots+1, num_users)
    # Lazily cached derived scalars: summary() and the experiment tables
    # read them repeatedly per repetition, and the profile is final once
    # the run returns.
    _total_profit: float | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _is_nash: bool | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def total_profit(self) -> float:
        if self._total_profit is None:
            self._total_profit = float(all_profits(self.profile).sum())
        return self._total_profit

    @property
    def is_nash(self) -> bool:
        if self._is_nash is None:
            self._is_nash = is_nash_equilibrium(self.profile)
        return self._is_nash

    def summary(self) -> dict[str, float]:
        """Scalar summary used by the experiment result tables."""
        return {
            "algorithm": self.algorithm,  # type: ignore[dict-item]
            "decision_slots": float(self.decision_slots),
            "total_profit": self.total_profit,
            "converged": float(self.converged),
            "moves": float(len(self.moves)),
        }


class Allocator(ABC):
    """Base class for allocation algorithms."""

    name: str = "base"

    def __init__(
        self,
        *,
        seed: SeedLike = None,
        config: RunConfig | None = None,
        backend: str | None = None,
    ):
        self.rng = as_generator(seed)
        self.config = config if config is not None else RunConfig()
        #: Kernel-backend name to pin on the game before running
        #: (``None`` = leave the game on the ambient default; see
        #: :mod:`repro.core.backend`).
        self.backend = backend

    # ------------------------------------------------------------------- API
    def run(
        self,
        game: RouteNavigationGame,
        *,
        initial: Sequence[int] | StrategyProfile | None = None,
    ) -> AllocationResult:
        """Run decision-slot dynamics from a (random by default) profile."""
        if self.backend is not None:
            game.arrays.set_backend(self.backend)
            game.arrays.backend.warmup()
        profile = self._initial_profile(game, initial)
        self._begin_run(game)
        recorder = _HistoryRecorder(
            profile,
            enabled=self.config.record_history,
            validate=self.config.validate,
        )
        ga = game.arrays
        moves: list[MoveRecord] = []
        slot = 0
        converged = False
        with trace("allocator.run", algorithm=self.name):
            while slot < self.config.max_slots:
                t0 = time.perf_counter() if _OBS.enabled else 0.0
                granted = self._slot(profile, slot)
                if _OBS.enabled:
                    dt = time.perf_counter() - t0
                    # One stopwatch feeds both views: the span table
                    # ("allocator.run/allocator.slot") and the quantile
                    # histogram.
                    _obs_record("allocator.slot", dt)
                    _obs_histogram(
                        "allocator.slot_seconds", algorithm=self.name
                    ).observe(dt)
                    _obs_counter(
                        "allocator.slots_total", algorithm=self.name
                    ).inc()
                    if granted:
                        _obs_counter(
                            "allocator.grants_total", algorithm=self.name
                        ).inc(len(granted))
                        delta = sum(g for _, _, g in granted)
                        if delta > 0:
                            _obs_counter(
                                "allocator.potential_delta_total",
                                algorithm=self.name,
                            ).inc(delta)
                if not granted:
                    converged = True
                    break
                slot += 1
                tau_sum = 0.0
                changed: list[np.ndarray] = []
                for user, new_route, gain in granted:
                    old = profile.move(user, new_route)
                    moves.append(MoveRecord(slot, user, old, new_route, gain))
                    self._note_move(user, old, new_route)
                    if recorder.enabled:
                        tau_sum += gain / float(ga.alpha[user])
                        gained, lost = ga.changed_tasks(
                            ga.route_id(user, old), ga.route_id(user, new_route)
                        )
                        changed.append(gained)
                        changed.append(lost)
                if self.config.validate:
                    profile.validate()
                recorder.advance(
                    profile,
                    tau_sum=tau_sum,
                    changed_tasks=(
                        np.concatenate(changed) if changed else
                        np.zeros(0, dtype=np.intp)
                    ),
                    movers=np.asarray([m[0] for m in granted], dtype=np.intp),
                )
        return AllocationResult(
            algorithm=self.name,
            profile=profile,
            decision_slots=slot,
            converged=converged,
            moves=moves,
            **recorder.as_arrays(),
        )

    @abstractmethod
    def _slot(
        self, profile: StrategyProfile, slot: int
    ) -> list[tuple[int, int, float]]:
        """Moves granted this slot as ``(user, new_route, gain)`` triples.

        Returning an empty list signals convergence (no update requests).
        Granted moves are applied *after* this method returns, so gains
        computed against the entry profile stay valid as long as the granted
        users' touched-task sets are disjoint (PUU's constraint) or a single
        move is granted.
        """

    # ------------------------------------------------------------------ hooks
    def _begin_run(self, game: RouteNavigationGame) -> None:
        """Called once per run before the first slot (cache setup)."""

    def _note_move(self, user: int, old_route: int, new_route: int) -> None:
        """Called after each executed move (cache invalidation)."""

    # -------------------------------------------------------------- plumbing
    def _initial_profile(
        self,
        game: RouteNavigationGame,
        initial: Sequence[int] | StrategyProfile | None,
    ) -> StrategyProfile:
        if initial is None:
            return StrategyProfile.random(game, self.rng)
        if isinstance(initial, StrategyProfile):
            if initial.game is not game:
                raise ValueError("initial profile belongs to a different game")
            return initial.copy()
        return StrategyProfile(game, list(initial))


class ProposalCache:
    """Per-user update proposals with touched-task invalidation.

    A user's best response depends only on (a) its own current route and
    (b) the participant counts of tasks its routes cover.  After a slot's
    moves execute, only the movers and the users whose route tasks
    intersect the tasks with *changed counts* — the symmetric difference
    of the old and new route, not the union — can have changed proposals;
    everyone else's cached proposal stays exact.  On dense instances this
    cuts the per-slot best-response sweep from O(M) to O(conflict
    neighbourhood).

    The sweep itself is batched: every dirty user goes through
    :func:`~repro.core.responses.batch_best_updates` in **one** NumPy
    pipeline per slot (bit-for-bit equal to the old per-user
    ``best_update`` loop, RNG stream included), and the cache keeps the
    surviving proposals as struct-of-arrays state rather than objects.
    :meth:`proposals` returns a
    :class:`~repro.core.responses.ProposalBatch` over all currently
    improving users; its touched-task CSR is assembled lazily so
    single-grant schedulers (SUU) never pay for it.

    The ``task -> users`` incidence is the game's shared CSR
    (:meth:`~repro.core.arrays.GameArrays.task_user_csr`); dirtiness is a
    boolean mask, so invalidation is a gather + scatter with no Python
    set algebra.
    """

    def __init__(
        self,
        game: RouteNavigationGame,
        *,
        pick: str = "first",
        rng: np.random.Generator | None = None,
    ) -> None:
        self.game = game
        self.pick = pick
        self.rng = rng
        self._arrays = game.arrays
        self._tu_indptr, self._tu_users = game.arrays.task_user_csr()
        m = game.num_users
        self._has = np.zeros(m, dtype=bool)
        self._route = np.zeros(m, dtype=np.intp)
        self._gain = np.zeros(m)
        self._tau = np.zeros(m)
        self._touched: list[np.ndarray] = [_EMPTY_TASKS] * m
        self._dirty = np.ones(m, dtype=bool)

    def proposals(self, profile: StrategyProfile) -> ProposalBatch:
        """Current update proposals of all improving users, as a batch."""
        dirty_ids = np.flatnonzero(self._dirty)
        if _OBS.enabled:
            _obs_counter("allocator.proposals_generated").inc(len(dirty_ids))
            _obs_counter("allocator.cache_hits").inc(
                self.game.num_users - len(dirty_ids)
            )
            _obs_histogram("allocator.batch_size").observe(float(len(dirty_ids)))
        if dirty_ids.size:
            t0 = time.perf_counter() if _OBS.enabled else 0.0
            fresh = batch_best_updates(
                profile, dirty_ids, pick=self.pick, rng=self.rng
            )
            self._has[dirty_ids] = False
            if len(fresh):
                u = fresh.users
                self._has[u] = True
                self._route[u] = fresh.new_routes
                self._gain[u] = fresh.gains
                self._tau[u] = fresh.taus
                b_indptr, b_tasks = fresh.b_indptr, fresh.b_tasks
                for j, ui in enumerate(u):
                    self._touched[ui] = b_tasks[b_indptr[j] : b_indptr[j + 1]]
            self._dirty[:] = False
            if _OBS.enabled:
                _obs_histogram("allocator.sweep_seconds").observe(
                    time.perf_counter() - t0
                )
        users = np.flatnonzero(self._has)
        return ProposalBatch(
            users,
            self._route[users],
            self._gain[users],
            self._tau[users],
            touched_builder=lambda: _assemble_csr(
                [self._touched[ui] for ui in users]
            ),
        )

    def note_move(self, user: int, old_route: int, new_route: int) -> None:
        """Invalidate the mover and every user sharing a changed-count task.

        Only the symmetric difference of the two routes' task sets changes
        counters; tasks covered by both routes keep ``n_k`` and cannot
        perturb anyone's cached proposal.
        """
        ga = self._arrays
        before = int(np.count_nonzero(self._dirty)) if _OBS.enabled else 0
        self._dirty[user] = True
        gained, lost = ga.changed_tasks(
            ga.route_id(user, old_route), ga.route_id(user, new_route)
        )
        changed = np.concatenate([gained, lost])
        if changed.size:
            users = ga.gather_rows(self._tu_indptr, self._tu_users, changed)
            self._dirty[users] = True
        if _OBS.enabled:
            _obs_counter("allocator.cache_invalidations").inc(
                int(np.count_nonzero(self._dirty)) - before
            )

    def invalidate_tasks(self, tasks: np.ndarray) -> None:
        """Invalidate every user covering any of ``tasks``.

        The external-change entry point: the serving layer calls this when
        a task's count moved for a reason outside this cache's game — a
        foreign shard's grant or a churn event folded in as an ``ext``
        count offset — so the affected users' proposals are re-swept.
        """
        tasks = np.asarray(tasks, dtype=np.intp)
        if tasks.size == 0:
            return
        users = self._arrays.gather_rows(self._tu_indptr, self._tu_users, tasks)
        self._dirty[users] = True

    # ------------------------------------------------------ snapshot support
    def export_state(self) -> dict[str, object]:
        """Picklable cache state (proposals + dirtiness), for the serving
        layer's shard snapshots — restoring it skips the full re-sweep a
        fresh cache would need and preserves the RNG-consumption sequence."""
        # The touched-task lists travel as one CSR pair instead of a list
        # of per-user ndarrays: pickling N tiny arrays costs ~150 bytes of
        # header each, which dominated shard snapshot payloads.
        from repro.core.shm import compact_ints

        touched_indptr, touched_ids = _assemble_csr(self._touched)
        return {
            "has": self._has.copy(),
            "route": compact_ints(self._route),
            "gain": self._gain.copy(),
            "tau": self._tau.copy(),
            "touched_indptr": compact_ints(touched_indptr),
            "touched_ids": compact_ints(touched_ids),
            "dirty": self._dirty.copy(),
        }

    def import_state(self, state: dict[str, object]) -> None:
        """Restore :meth:`export_state` output into this cache."""
        self._has = np.asarray(state["has"], dtype=bool).copy()
        self._route = np.asarray(state["route"], dtype=np.intp).copy()
        self._gain = np.asarray(state["gain"], dtype=float).copy()
        self._tau = np.asarray(state["tau"], dtype=float).copy()
        if "touched_indptr" in state:
            indptr = np.asarray(state["touched_indptr"], dtype=np.intp)
            ids = np.asarray(state["touched_ids"], dtype=np.intp)
            self._touched = [
                ids[indptr[i] : indptr[i + 1]].copy()
                for i in range(indptr.size - 1)
            ]
        else:  # legacy list-of-arrays form
            self._touched = [
                np.asarray(t, dtype=np.intp) for t in state["touched"]  # type: ignore[union-attr]
            ]
        self._dirty = np.asarray(state["dirty"], dtype=bool).copy()


def _assemble_csr(segments: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """CSR ``(indptr, data)`` from a list of per-row id arrays."""
    if not segments:
        return np.zeros(1, dtype=np.intp), _EMPTY_TASKS
    lengths = np.asarray([seg.size for seg in segments], dtype=np.intp)
    indptr = np.concatenate([[0], np.cumsum(lengths)]).astype(np.intp)
    data = np.concatenate(segments) if indptr[-1] else _EMPTY_TASKS
    return indptr, data


class _HistoryRecorder:
    """Accumulates per-slot potential / profit trajectories incrementally.

    Per slot the recorder does **not** re-evaluate the whole game:

    - the potential advances by the summed granted ``tau_i`` — exactly
      the per-move potential increase of Eq. 11 (moves granted together
      have pairwise-disjoint ``B_i``, so their deltas add);
    - per-user profits are recomputed only for the movers and the users
      whose route tasks intersect a *changed-count* task (everyone
      else's reward shares are untouched, so their cached profit is
      bitwise identical to a full re-evaluation);
    - the total-profit entry is the sum of the maintained profit vector.

    ``validate=True`` (``RunConfig.validate``) cross-checks every slot
    against an exact full recompute — asserting the incremental profits
    match bitwise and the potential drift stays within float tolerance —
    and then records the exact values.
    """

    #: Allowed |incremental - exact| potential drift per trajectory in
    #: validate mode (pure float-summation noise; any real bookkeeping
    #: bug shows up orders of magnitude above this).
    _DRIFT_TOL = 1e-6

    def __init__(
        self, profile: StrategyProfile, *, enabled: bool, validate: bool = False
    ) -> None:
        self.enabled = enabled
        self.validate = validate
        self._potential: list[float] = []
        self._total: list[float] = []
        self._profit_rows: list[np.ndarray] = []
        if enabled:
            ga = profile.game.arrays
            self._tu_indptr, self._tu_users = ga.task_user_csr()
            self._profits = all_profits(profile)
            self._potential.append(potential(profile))
            self._total.append(float(self._profits.sum()))
            self._profit_rows.append(self._profits.copy())

    def advance(
        self,
        profile: StrategyProfile,
        *,
        tau_sum: float,
        changed_tasks: np.ndarray,
        movers: np.ndarray,
    ) -> None:
        """Record the state after one slot's granted moves executed."""
        if not self.enabled:
            return
        ga = profile.game.arrays
        if changed_tasks.size:
            neighbours = ga.gather_rows(
                self._tu_indptr, self._tu_users, np.unique(changed_tasks)
            )
            affected = np.union1d(neighbours, movers)
        else:
            affected = np.unique(movers)
        if affected.size:
            self._profits[affected] = _profits_of_users(profile, affected)
        phi = self._potential[-1] + tau_sum
        if self.validate:
            exact_phi = potential(profile)
            exact_profits = all_profits(profile)
            if not np.array_equal(exact_profits, self._profits):
                raise AssertionError(
                    "incremental profit history diverged from full recompute"
                )
            if abs(phi - exact_phi) > self._DRIFT_TOL * max(1.0, abs(exact_phi)):
                raise AssertionError(
                    f"incremental potential drifted: {phi} vs exact {exact_phi}"
                )
            phi = exact_phi
        self._potential.append(phi)
        self._total.append(float(self._profits.sum()))
        self._profit_rows.append(self._profits.copy())

    def snapshot(self, profile: StrategyProfile) -> None:
        """Exact full-recompute snapshot (non-incremental entry point)."""
        if not self.enabled:
            return
        self._profits = all_profits(profile)
        self._potential.append(potential(profile))
        self._total.append(float(self._profits.sum()))
        self._profit_rows.append(self._profits.copy())

    def as_arrays(self) -> dict[str, np.ndarray | None]:
        if not self.enabled:
            return {
                "potential_history": None,
                "total_profit_history": None,
                "profit_history": None,
            }
        return {
            "potential_history": np.asarray(self._potential),
            "total_profit_history": np.asarray(self._total),
            "profit_history": np.vstack(self._profit_rows),
        }


def _profits_of_users(profile: StrategyProfile, users: np.ndarray) -> np.ndarray:
    """``P_i(s)`` for a subset of users, bitwise equal to the matching
    entries of :func:`~repro.core.profit.all_profits`.

    Dispatches to the same kernel backend as ``all_profits`` — the
    history recorder's validate mode compares the two bitwise, so they
    must always run on the same implementation.
    """
    game = profile.game
    ga = game.arrays
    shares = game.tasks.shares(profile.counts)
    return ga.backend.profits_of_users(ga, profile.choices, shares, users)
