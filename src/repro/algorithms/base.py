"""Allocator interface and the shared decision-slot driver.

Response-dynamics algorithms (DGRN, MUUN, BRUN, BUAU, BATS) share one loop:
per decision slot, collect the users that could improve ("update requests"),
let a scheduler grant some of them, apply the granted moves, and stop when a
slot produces no requests.  Subclasses implement :meth:`Allocator._slot`.

Centralized algorithms (CORN, greedy, RRN) override :meth:`Allocator.run`
directly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.equilibrium import is_nash_equilibrium
from repro.core.potential import potential
from repro.core.profile import StrategyProfile
from repro.core.profit import all_profits
from repro.obs import counter as _obs_counter
from repro.obs import histogram as _obs_histogram
from repro.obs.runtime import RUNTIME as _OBS
from repro.obs.tracing import record as _obs_record
from repro.obs.tracing import trace
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True, slots=True)
class MoveRecord:
    """One granted route switch."""

    slot: int
    user: int
    old_route: int
    new_route: int
    gain: float


@dataclass(frozen=True, slots=True)
class RunConfig:
    """Run-level knobs shared by all allocators."""

    max_slots: int = 100_000
    record_history: bool = True
    validate: bool = False  # re-verify counters after every slot (tests)


@dataclass
class AllocationResult:
    """Outcome of one allocator run."""

    algorithm: str
    profile: StrategyProfile
    decision_slots: int
    converged: bool
    moves: list[MoveRecord] = field(default_factory=list)
    # Histories are indexed by slot; entry 0 is the initial profile.
    potential_history: np.ndarray | None = None
    total_profit_history: np.ndarray | None = None
    profit_history: np.ndarray | None = None  # (slots+1, num_users)

    @property
    def total_profit(self) -> float:
        return float(all_profits(self.profile).sum())

    @property
    def is_nash(self) -> bool:
        return is_nash_equilibrium(self.profile)

    def summary(self) -> dict[str, float]:
        """Scalar summary used by the experiment result tables."""
        return {
            "algorithm": self.algorithm,  # type: ignore[dict-item]
            "decision_slots": float(self.decision_slots),
            "total_profit": self.total_profit,
            "converged": float(self.converged),
            "moves": float(len(self.moves)),
        }


class Allocator(ABC):
    """Base class for allocation algorithms."""

    name: str = "base"

    def __init__(self, *, seed: SeedLike = None, config: RunConfig | None = None):
        self.rng = as_generator(seed)
        self.config = config if config is not None else RunConfig()

    # ------------------------------------------------------------------- API
    def run(
        self,
        game: RouteNavigationGame,
        *,
        initial: Sequence[int] | StrategyProfile | None = None,
    ) -> AllocationResult:
        """Run decision-slot dynamics from a (random by default) profile."""
        profile = self._initial_profile(game, initial)
        self._begin_run(game)
        recorder = _HistoryRecorder(profile, enabled=self.config.record_history)
        moves: list[MoveRecord] = []
        slot = 0
        converged = False
        with trace("allocator.run", algorithm=self.name):
            while slot < self.config.max_slots:
                t0 = time.perf_counter() if _OBS.enabled else 0.0
                granted = self._slot(profile, slot)
                if _OBS.enabled:
                    dt = time.perf_counter() - t0
                    # One stopwatch feeds both views: the span table
                    # ("allocator.run/allocator.slot") and the quantile
                    # histogram.
                    _obs_record("allocator.slot", dt)
                    _obs_histogram(
                        "allocator.slot_seconds", algorithm=self.name
                    ).observe(dt)
                    _obs_counter(
                        "allocator.slots_total", algorithm=self.name
                    ).inc()
                    if granted:
                        _obs_counter(
                            "allocator.grants_total", algorithm=self.name
                        ).inc(len(granted))
                        delta = sum(g for _, _, g in granted)
                        if delta > 0:
                            _obs_counter(
                                "allocator.potential_delta_total",
                                algorithm=self.name,
                            ).inc(delta)
                if not granted:
                    converged = True
                    break
                slot += 1
                for user, new_route, gain in granted:
                    old = profile.move(user, new_route)
                    moves.append(MoveRecord(slot, user, old, new_route, gain))
                    self._note_move(user, old, new_route)
                if self.config.validate:
                    profile.validate()
                recorder.snapshot(profile)
        return AllocationResult(
            algorithm=self.name,
            profile=profile,
            decision_slots=slot,
            converged=converged,
            moves=moves,
            **recorder.as_arrays(),
        )

    @abstractmethod
    def _slot(
        self, profile: StrategyProfile, slot: int
    ) -> list[tuple[int, int, float]]:
        """Moves granted this slot as ``(user, new_route, gain)`` triples.

        Returning an empty list signals convergence (no update requests).
        Granted moves are applied *after* this method returns, so gains
        computed against the entry profile stay valid as long as the granted
        users' touched-task sets are disjoint (PUU's constraint) or a single
        move is granted.
        """

    # ------------------------------------------------------------------ hooks
    def _begin_run(self, game: RouteNavigationGame) -> None:
        """Called once per run before the first slot (cache setup)."""

    def _note_move(self, user: int, old_route: int, new_route: int) -> None:
        """Called after each executed move (cache invalidation)."""

    # -------------------------------------------------------------- plumbing
    def _initial_profile(
        self,
        game: RouteNavigationGame,
        initial: Sequence[int] | StrategyProfile | None,
    ) -> StrategyProfile:
        if initial is None:
            return StrategyProfile.random(game, self.rng)
        if isinstance(initial, StrategyProfile):
            if initial.game is not game:
                raise ValueError("initial profile belongs to a different game")
            return initial.copy()
        return StrategyProfile(game, list(initial))


class ProposalCache:
    """Per-user update proposals with touched-task invalidation.

    A user's best response depends only on (a) its own current route and
    (b) the participant counts of tasks its routes cover.  After a slot's
    moves execute, only the movers and the users whose route tasks
    intersect the tasks with *changed counts* — the symmetric difference
    of the old and new route, not the union — can have changed proposals;
    everyone else's cached proposal stays exact.  On dense instances this
    cuts the per-slot best-response sweep from O(M) to O(conflict
    neighbourhood).

    The ``task -> users`` incidence is the game's shared CSR
    (:meth:`~repro.core.arrays.GameArrays.task_user_csr`); dirtiness is a
    boolean mask, so invalidation is a gather + scatter with no Python
    set algebra.
    """

    def __init__(
        self,
        game: RouteNavigationGame,
        *,
        pick: str = "first",
        rng: np.random.Generator | None = None,
    ) -> None:
        self.game = game
        self.pick = pick
        self.rng = rng
        self._arrays = game.arrays
        self._tu_indptr, self._tu_users = game.arrays.task_user_csr()
        self._cache: list[object | None] = [None] * game.num_users
        self._dirty = np.ones(game.num_users, dtype=bool)

    def proposals(self, profile: StrategyProfile) -> list:
        """Current update proposals of all improving users."""
        from repro.core.responses import best_update

        dirty_ids = np.flatnonzero(self._dirty)
        if _OBS.enabled:
            _obs_counter("allocator.proposals_generated").inc(len(dirty_ids))
            _obs_counter("allocator.cache_hits").inc(
                self.game.num_users - len(dirty_ids)
            )
        for i in dirty_ids:
            self._cache[i] = best_update(
                profile, int(i), pick=self.pick, rng=self.rng
            )
        self._dirty[:] = False
        return [p for p in self._cache if p is not None]

    def note_move(self, user: int, old_route: int, new_route: int) -> None:
        """Invalidate the mover and every user sharing a changed-count task.

        Only the symmetric difference of the two routes' task sets changes
        counters; tasks covered by both routes keep ``n_k`` and cannot
        perturb anyone's cached proposal.
        """
        ga = self._arrays
        before = int(np.count_nonzero(self._dirty)) if _OBS.enabled else 0
        self._dirty[user] = True
        gained, lost = ga.changed_tasks(
            ga.route_id(user, old_route), ga.route_id(user, new_route)
        )
        changed = np.concatenate([gained, lost])
        if changed.size:
            users = ga.gather_rows(self._tu_indptr, self._tu_users, changed)
            self._dirty[users] = True
        if _OBS.enabled:
            _obs_counter("allocator.cache_invalidations").inc(
                int(np.count_nonzero(self._dirty)) - before
            )


class _HistoryRecorder:
    """Accumulates per-slot potential / profit trajectories."""

    def __init__(self, profile: StrategyProfile, *, enabled: bool) -> None:
        self.enabled = enabled
        self._potential: list[float] = []
        self._total: list[float] = []
        self._profits: list[np.ndarray] = []
        if enabled:
            self.snapshot(profile)

    def snapshot(self, profile: StrategyProfile) -> None:
        if not self.enabled:
            return
        profits = all_profits(profile)
        self._potential.append(potential(profile))
        self._total.append(float(profits.sum()))
        self._profits.append(profits)

    def as_arrays(self) -> dict[str, np.ndarray | None]:
        if not self.enabled:
            return {
                "potential_history": None,
                "total_profit_history": None,
                "profit_history": None,
            }
        return {
            "potential_history": np.asarray(self._potential),
            "total_profit_history": np.asarray(self._total),
            "profit_history": np.vstack(self._profits),
        }
