"""BRUN: Better Response Update Navigation (Section 5.2, item 3).

Like DGRN's SUU scheduling, but the granted user switches to a *uniformly
random strictly-better* route rather than a best one — the better-response
update of Definition 1.  Still converges (finite improvement property) but
typically needs more decision slots than best response.
"""

from __future__ import annotations

from repro.core.profile import StrategyProfile
from repro.core.responses import better_responses, make_proposal
from repro.algorithms.base import Allocator


class BRUN(Allocator):
    """Better-response dynamics under SUU scheduling."""

    name = "BRUN"

    def _slot(self, profile: StrategyProfile, slot: int):
        requesters = [
            i for i in profile.game.users if better_responses(profile, i)
        ]
        if not requesters:
            return []
        user = requesters[int(self.rng.integers(0, len(requesters)))]
        options = better_responses(profile, user)
        new_route = options[int(self.rng.integers(0, len(options)))]
        prop = make_proposal(profile, user, new_route)
        return [(prop.user, prop.new_route, prop.gain)]
