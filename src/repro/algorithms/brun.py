"""BRUN: Better Response Update Navigation (Section 5.2, item 3).

Like DGRN's SUU scheduling, but the granted user switches to a *uniformly
random strictly-better* route rather than a best one — the better-response
update of Definition 1.  Still converges (finite improvement property) but
typically needs more decision slots than best response.

The per-slot requester sweep runs through the batched candidate-profit
kernel (:func:`~repro.core.responses.batch_candidate_profits`): one flat
evaluation of every user's every route, then a segmented comparison
against each user's current profit — no per-user Python calls.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import StrategyProfile
from repro.core.responses import (
    IMPROVEMENT_EPS,
    batch_candidate_profits,
    make_proposal,
)
from repro.algorithms.base import Allocator


class BRUN(Allocator):
    """Better-response dynamics under SUU scheduling."""

    name = "BRUN"

    def _slot(self, profile: StrategyProfile, slot: int):
        game = profile.game
        users = np.arange(game.num_users, dtype=np.intp)
        profits, _, r_indptr = batch_candidate_profits(profile, users)
        starts = r_indptr[:-1]
        cur = profits[starts + profile.choices]
        better = profits > np.repeat(cur + IMPROVEMENT_EPS, np.diff(r_indptr))
        requesters = np.flatnonzero(
            np.bitwise_or.reduceat(better, starts)
        )
        if requesters.size == 0:
            return []
        user = int(requesters[int(self.rng.integers(0, requesters.size))])
        seg = slice(int(r_indptr[user]), int(r_indptr[user + 1]))
        options = np.flatnonzero(better[seg])
        new_route = int(options[int(self.rng.integers(0, options.size))])
        prop = make_proposal(profile, user, new_route)
        return [(prop.user, prop.new_route, prop.gain)]
