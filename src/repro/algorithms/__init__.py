"""Allocation engines: the paper's algorithm and all comparison baselines.

- :class:`~repro.algorithms.dgrn.DGRN` — distributed game-theoretical route
  navigation with Single User Update scheduling (the paper's Algorithm 1+2,
  SUU variant).
- :class:`~repro.algorithms.muun.MUUN` — Parallel User Update scheduling
  (Algorithm 3).
- :class:`~repro.algorithms.brun.BRUN` — better-response update navigation.
- :class:`~repro.algorithms.buau.BUAU` — best update of all users.
- :class:`~repro.algorithms.bats.BATS` — Bayesian asynchronous task
  selection, adapted per Section 5.2.
- :class:`~repro.algorithms.corn.CORN` — centralized optimal (branch and
  bound; exhaustive cross-check).
- :class:`~repro.algorithms.rrn.RRN` — random route navigation.
- :class:`~repro.algorithms.greedy.GreedyCentralized` — extra baseline.
"""

from repro.algorithms.base import AllocationResult, Allocator, MoveRecord, RunConfig
from repro.algorithms.async_br import AsyncBR
from repro.algorithms.dgrn import DGRN
from repro.algorithms.muun import MUUN, puu_select, puu_select_batch
from repro.algorithms.brun import BRUN
from repro.algorithms.buau import BUAU
from repro.algorithms.bats import BATS
from repro.algorithms.corn import CORN, exhaustive_optimum
from repro.algorithms.rrn import RRN
from repro.algorithms.greedy import GreedyCentralized

ALGORITHM_REGISTRY: dict[str, type[Allocator]] = {
    "DGRN": DGRN,
    "MUUN": MUUN,
    "BRUN": BRUN,
    "BUAU": BUAU,
    "BATS": BATS,
    "CORN": CORN,
    "RRN": RRN,
    "GREEDY": GreedyCentralized,
    "ASYNC": AsyncBR,
}


def make_allocator(name: str, **kwargs) -> Allocator:
    """Instantiate an allocator by registry name (case-insensitive)."""
    key = name.upper()
    if key not in ALGORITHM_REGISTRY:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHM_REGISTRY)}"
        )
    return ALGORITHM_REGISTRY[key](**kwargs)


__all__ = [
    "ALGORITHM_REGISTRY",
    "AllocationResult",
    "Allocator",
    "AsyncBR",
    "BATS",
    "BRUN",
    "BUAU",
    "CORN",
    "DGRN",
    "GreedyCentralized",
    "MUUN",
    "MoveRecord",
    "RRN",
    "RunConfig",
    "exhaustive_optimum",
    "make_allocator",
    "puu_select",
    "puu_select_batch",
]
