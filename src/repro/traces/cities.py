"""Evaluation-city profiles (Section 5.1).

Geometry and fleet statistics of the three datasets, used to calibrate the
synthetic trace generators and to choose a matching road-graph morphology:

- **Shanghai** (HERO, Zhu et al. 2009): GPS traces of taxis, Aug-Oct 2006;
  the paper selects 200 one-day traces.  Dense regular core -> grid graph.
- **Roma** (CRAWDAD roma/taxi): 320 taxis over 30 days; the paper selects
  150 traces in the city center.  Historic radial center -> ring/spoke
  graph.
- **Epfl** (CRAWDAD epfl/mobility, cabspotting): ~500 cabs in the San
  Francisco Bay Area over 30 days; the paper selects 200 same-period
  traces.  Irregular mesh -> random geometric graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import BoundingBox
from repro.network.builders import grid_city, radial_ring_city, random_geometric_city
from repro.network.graph import RoadNetwork
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class CityProfile:
    """Everything the substrate needs to impersonate one evaluation city."""

    name: str
    display_name: str
    # WGS-84 box of the modeled central area (x = lon, y = lat).
    lonlat_box: BoundingBox
    fleet_size: int  # taxis in the original dataset
    paper_trace_count: int  # traces the paper selects
    morphology: str  # "grid" | "radial" | "geometric"
    mean_trip_km: float
    trip_km_sigma: float  # lognormal sigma of trip length
    mean_speed_kmh: float
    fix_interval_s: float  # GPS sampling period

    @property
    def center(self) -> tuple[float, float]:
        """``(lat, lon)`` of the modeled area's center."""
        cx, cy = self.lonlat_box.center
        return cy, cx

    def build_network(self, seed: SeedLike = None) -> RoadNetwork:
        """City-matched road graph in the local planar frame."""
        if self.morphology == "grid":
            return grid_city(12, 12, spacing_km=0.55, seed=seed)
        if self.morphology == "radial":
            return radial_ring_city(rings=5, spokes=14, ring_spacing_km=0.65, seed=seed)
        if self.morphology == "geometric":
            return random_geometric_city(170, extent_km=6.5, k_neighbors=4, seed=seed)
        raise ValueError(f"unknown morphology: {self.morphology!r}")


CITY_PROFILES: dict[str, CityProfile] = {
    "shanghai": CityProfile(
        name="shanghai",
        display_name="Shanghai",
        lonlat_box=BoundingBox(121.40, 31.17, 121.50, 31.26),
        fleet_size=4000,
        paper_trace_count=200,
        morphology="grid",
        mean_trip_km=4.5,
        trip_km_sigma=0.5,
        mean_speed_kmh=30.0,
        fix_interval_s=60.0,
    ),
    "roma": CityProfile(
        name="roma",
        display_name="Roma",
        lonlat_box=BoundingBox(12.44, 41.86, 12.54, 41.93),
        fleet_size=320,
        paper_trace_count=150,
        morphology="radial",
        mean_trip_km=3.5,
        trip_km_sigma=0.55,
        mean_speed_kmh=25.0,
        fix_interval_s=15.0,
    ),
    "epfl": CityProfile(
        name="epfl",
        display_name="Epfl",
        lonlat_box=BoundingBox(-122.45, 37.74, -122.38, 37.81),
        fleet_size=500,
        paper_trace_count=200,
        morphology="geometric",
        mean_trip_km=4.0,
        trip_km_sigma=0.6,
        mean_speed_kmh=28.0,
        fix_interval_s=60.0,
    ),
}


def get_city(name: str) -> CityProfile:
    """Look up a city profile by (case-insensitive) name."""
    key = name.lower()
    if key not in CITY_PROFILES:
        raise KeyError(f"unknown city {name!r}; known: {sorted(CITY_PROFILES)}")
    return CITY_PROFILES[key]
