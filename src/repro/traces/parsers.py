"""Parsers and writers for the three real trace formats.

Real data can therefore be dropped in unchanged; the synthetic generator
uses the writers so round-trip fidelity is tested end-to-end.

Formats
-------
**Roma** (CRAWDAD roma/taxi, one file for all taxis)::

    156;2014-02-01 00:00:00.739166+01;POINT(41.8883 12.4839)

**Epfl** (cabspotting, one file per cab, reverse-chronological)::

    37.75134 -122.39488 0 1213084687     # lat lon occupied unix_time

**Shanghai** (HERO-style CSV, one file for all taxis)::

    taxi_id,unix_time,lon,lat,speed_kmh,heading_deg,occupied
"""

from __future__ import annotations

import re
from collections import defaultdict
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.traces.model import TraceSet, Trajectory

_ROMA_POINT = re.compile(r"POINT\(\s*(-?\d+(?:\.\d+)?)\s+(-?\d+(?:\.\d+)?)\s*\)")


# --------------------------------------------------------------------- Roma
def parse_roma_file(path: str | Path, *, name: str = "roma") -> TraceSet:
    """Parse the CRAWDAD roma/taxi semicolon format."""
    rows: dict[str, list[tuple[float, float, float]]] = defaultdict(list)
    for line_no, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.split(";")
        if len(parts) != 3:
            raise ValueError(f"{path}:{line_no}: expected 3 ';'-fields, got {len(parts)}")
        taxi_id, stamp, point = parts
        m = _ROMA_POINT.search(point)
        if m is None:
            raise ValueError(f"{path}:{line_no}: malformed POINT: {point!r}")
        lat, lon = float(m.group(1)), float(m.group(2))
        rows[taxi_id].append((_parse_roma_timestamp(stamp), lat, lon))
    return _rows_to_traceset(name, rows)


def _parse_roma_timestamp(stamp: str) -> float:
    """Roma timestamps look like ``2014-02-01 00:00:00.739166+01``."""
    s = stamp.strip()
    # Normalize "+01" -> "+01:00" for fromisoformat.
    if re.search(r"[+-]\d{2}$", s):
        s += ":00"
    return datetime.fromisoformat(s).timestamp()


def write_roma_file(path: str | Path, traces: TraceSet) -> None:
    """Write trajectories in the Roma format (UTC timestamps)."""
    lines = []
    for traj in traces:
        for t, la, lo in zip(traj.times, traj.lats, traj.lons):
            stamp = datetime.fromtimestamp(float(t), tz=timezone.utc)
            text = stamp.strftime("%Y-%m-%d %H:%M:%S.%f") + "+00"
            lines.append(f"{traj.vehicle_id};{text};POINT({la:.6f} {lo:.6f})")
    Path(path).write_text("\n".join(lines) + "\n")


# --------------------------------------------------------------------- Epfl
def parse_epfl_cab_file(
    path: str | Path, *, vehicle_id: str | None = None
) -> Trajectory:
    """Parse one cabspotting per-cab file (``new_<id>.txt``)."""
    p = Path(path)
    vid = vehicle_id
    if vid is None:
        stem = p.stem
        vid = stem[4:] if stem.startswith("new_") else stem
    lats, lons, occs, times = [], [], [], []
    for line_no, line in enumerate(p.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 4:
            raise ValueError(f"{p}:{line_no}: expected 4 fields, got {len(parts)}")
        lats.append(float(parts[0]))
        lons.append(float(parts[1]))
        occs.append(bool(int(parts[2])))
        times.append(float(parts[3]))
    order = np.argsort(times, kind="stable")  # files are reverse-chronological
    return Trajectory(
        vehicle_id=vid,
        times=np.asarray(times)[order],
        lats=np.asarray(lats)[order],
        lons=np.asarray(lons)[order],
        occupied=np.asarray(occs, dtype=bool)[order],
    )


def parse_epfl_directory(directory: str | Path, *, name: str = "epfl") -> TraceSet:
    """Parse every ``new_*.txt`` cab file in a cabspotting directory."""
    files = sorted(Path(directory).glob("new_*.txt"))
    if not files:
        raise FileNotFoundError(f"no new_*.txt cab files under {directory}")
    return TraceSet(name, [parse_epfl_cab_file(f) for f in files])


def write_epfl_cab_file(path: str | Path, traj: Trajectory) -> None:
    """Write one trajectory in cabspotting format (reverse-chronological)."""
    lines = [
        f"{la:.5f} {lo:.5f} {int(oc)} {int(t)}"
        for t, la, lo, oc in zip(traj.times, traj.lats, traj.lons, traj.occupied)
    ]
    Path(path).write_text("\n".join(reversed(lines)) + "\n")


# ----------------------------------------------------------------- Shanghai
def parse_shanghai_file(path: str | Path, *, name: str = "shanghai") -> TraceSet:
    """Parse the HERO-style Shanghai CSV (header optional)."""
    rows: dict[str, list[tuple[float, float, float, bool]]] = defaultdict(list)
    for line_no, line in enumerate(Path(path).read_text().splitlines(), start=1):
        line = line.strip()
        if not line or line.lower().startswith("taxi_id"):
            continue
        parts = line.split(",")
        if len(parts) != 7:
            raise ValueError(f"{path}:{line_no}: expected 7 CSV fields, got {len(parts)}")
        taxi_id, t, lon, lat, _speed, _heading, occ = parts
        rows[taxi_id].append((float(t), float(lat), float(lon), bool(int(occ))))
    trajs = []
    for vid, pts in rows.items():
        pts.sort(key=lambda r: r[0])
        arr = np.asarray(pts, dtype=float)
        trajs.append(
            Trajectory(
                vehicle_id=vid,
                times=arr[:, 0],
                lats=arr[:, 1],
                lons=arr[:, 2],
                occupied=arr[:, 3].astype(bool),
            )
        )
    return TraceSet(name, trajs)


def write_shanghai_file(path: str | Path, traces: TraceSet) -> None:
    """Write trajectories in the Shanghai CSV format (with header).

    Speed is back-computed from consecutive fixes; heading is the bearing
    of the displacement (0 for the first fix).
    """
    from repro.geometry.point import haversine_km

    lines = ["taxi_id,unix_time,lon,lat,speed_kmh,heading_deg,occupied"]
    for traj in traces:
        prev = None
        for t, la, lo, oc in zip(traj.times, traj.lats, traj.lons, traj.occupied):
            speed = 0.0
            heading = 0.0
            if prev is not None:
                dt_h = (t - prev[0]) / 3600.0
                if dt_h > 0:
                    speed = haversine_km(prev[1], prev[2], la, lo) / dt_h
                heading = float(
                    np.degrees(np.arctan2(lo - prev[2], la - prev[1])) % 360.0
                )
            lines.append(
                f"{traj.vehicle_id},{t:.0f},{lo:.6f},{la:.6f},"
                f"{speed:.2f},{heading:.1f},{int(oc)}"
            )
            prev = (t, la, lo)
    Path(path).write_text("\n".join(lines) + "\n")


# ------------------------------------------------------------------ helpers
def _rows_to_traceset(
    name: str, rows: dict[str, list[tuple[float, float, float]]]
) -> TraceSet:
    trajs = []
    for vid, pts in rows.items():
        pts.sort(key=lambda r: r[0])
        arr = np.asarray(pts, dtype=float)
        trajs.append(
            Trajectory(
                vehicle_id=vid, times=arr[:, 0], lats=arr[:, 1], lons=arr[:, 2]
            )
        )
    return TraceSet(name, trajs)
