"""Trace data model: trajectories of timestamped GPS fixes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.geometry.point import BoundingBox
from repro.utils.validation import require


@dataclass(frozen=True)
class Trajectory:
    """One vehicle's ordered GPS track.

    Attributes
    ----------
    vehicle_id:
        Stable identifier (taxi id in the real datasets).
    times:
        ``(n,)`` POSIX timestamps, non-decreasing.
    lats, lons:
        ``(n,)`` WGS-84 coordinates.
    occupied:
        ``(n,)`` boolean passenger flag (cabspotting carries it; synthetic
        traces set it per trip; parsers without the field default to True).
    """

    vehicle_id: str
    times: np.ndarray
    lats: np.ndarray
    lons: np.ndarray
    occupied: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=float)
        la = np.asarray(self.lats, dtype=float)
        lo = np.asarray(self.lons, dtype=float)
        require(t.shape == la.shape == lo.shape, "times/lats/lons shape mismatch")
        require(t.ndim == 1 and t.size >= 1, "trajectory needs >= 1 point")
        require(bool(np.all(np.diff(t) >= 0)), "timestamps must be non-decreasing")
        occ = np.asarray(self.occupied, dtype=bool)
        if occ.size == 0:
            occ = np.ones(t.size, dtype=bool)
        require(occ.shape == t.shape, "occupied shape mismatch")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "lats", la)
        object.__setattr__(self, "lons", lo)
        object.__setattr__(self, "occupied", occ)

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def duration_s(self) -> float:
        return float(self.times[-1] - self.times[0])

    @property
    def origin(self) -> tuple[float, float]:
        """First fix as ``(lat, lon)``."""
        return float(self.lats[0]), float(self.lons[0])

    @property
    def destination(self) -> tuple[float, float]:
        """Last fix as ``(lat, lon)``."""
        return float(self.lats[-1]), float(self.lons[-1])

    def bounding_box(self) -> BoundingBox:
        """Lat/lon bounding box (x = lon, y = lat)."""
        return BoundingBox(
            float(self.lons.min()),
            float(self.lats.min()),
            float(self.lons.max()),
            float(self.lats.max()),
        )

    def trips(self, *, gap_s: float = 600.0) -> list["Trajectory"]:
        """Split into trips at occupancy drops or large time gaps.

        A new trip starts when the vehicle transitions to occupied or after
        a silent period longer than ``gap_s``.  Single-point fragments are
        dropped.
        """
        if len(self) < 2:
            return []
        breaks = [0]
        for i in range(1, len(self)):
            time_gap = self.times[i] - self.times[i - 1] > gap_s
            pickup = self.occupied[i] and not self.occupied[i - 1]
            if time_gap or pickup:
                breaks.append(i)
        breaks.append(len(self))
        out: list[Trajectory] = []
        for a, b in zip(breaks[:-1], breaks[1:]):
            if b - a >= 2:
                out.append(
                    Trajectory(
                        vehicle_id=f"{self.vehicle_id}#t{len(out)}",
                        times=self.times[a:b],
                        lats=self.lats[a:b],
                        lons=self.lons[a:b],
                        occupied=self.occupied[a:b],
                    )
                )
        return out


class TraceSet:
    """A named collection of trajectories (one evaluation dataset)."""

    def __init__(self, name: str, trajectories: Iterable[Trajectory]) -> None:
        self.name = name
        self._trajs = list(trajectories)
        require(len(self._trajs) >= 1, f"trace set {name!r} is empty")

    def __len__(self) -> int:
        return len(self._trajs)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self._trajs)

    def __getitem__(self, idx: int) -> Trajectory:
        return self._trajs[idx]

    def select(self, n: int, *, seed=None) -> "TraceSet":
        """Random sub-sample of ``n`` trajectories (paper: "we select 200
        traces")."""
        from repro.utils.rng import as_generator

        rng = as_generator(seed)
        n = min(n, len(self._trajs))
        idx = rng.choice(len(self._trajs), size=n, replace=False)
        return TraceSet(self.name, [self._trajs[int(i)] for i in sorted(idx)])

    def bounding_box(self) -> BoundingBox:
        boxes = [t.bounding_box() for t in self._trajs]
        return BoundingBox(
            min(b.min_x for b in boxes),
            min(b.min_y for b in boxes),
            max(b.max_x for b in boxes),
            max(b.max_y for b in boxes),
        )

    def total_points(self) -> int:
        return sum(len(t) for t in self._trajs)

    def __repr__(self) -> str:
        return (
            f"TraceSet({self.name!r}, vehicles={len(self)}, "
            f"points={self.total_points()})"
        )
