"""Calibrated synthetic taxi traces.

Generates per-city trace sets statistically matched to the real datasets'
published characteristics: fleet size, GPS fix interval, lognormal trip
lengths, and hotspot-biased pickups (taxis concentrate around a small number
of attraction points).  Trips are straight-line interpolations with GPS
noise — the game layer only consumes origin/destination pairs, so street-
level realism is unnecessary (see DESIGN.md, substitution 2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.point import BoundingBox
from repro.traces.cities import CityProfile
from repro.traces.model import TraceSet, Trajectory
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require

KM_PER_DEG_LAT = 111.32


def synthesize_traces(
    city: CityProfile,
    *,
    n_vehicles: int | None = None,
    trips_per_vehicle: int = 3,
    n_hotspots: int = 5,
    start_time: float = 1_155_600_000.0,  # 2006-08-15, the Shanghai epoch
    gps_noise_deg: float = 2e-4,
    seed: SeedLike = None,
) -> TraceSet:
    """Generate a synthetic trace set for ``city``.

    ``n_vehicles`` defaults to the number of traces the paper selects for
    that city (200 / 150 / 200).
    """
    if n_vehicles is None:
        n_vehicles = city.paper_trace_count
    require(n_vehicles >= 1, "need at least one vehicle")
    require(trips_per_vehicle >= 1, "need at least one trip per vehicle")
    rng = as_generator(seed)
    box = city.lonlat_box
    hotspots = box.sample(rng, max(n_hotspots, 1))

    km_per_deg_lon = KM_PER_DEG_LAT * math.cos(math.radians(box.center[1]))
    trajs: list[Trajectory] = []
    for v in range(n_vehicles):
        times, lats, lons, occs = [], [], [], []
        clock = start_time + float(rng.uniform(0, 3600.0))
        pos = _sample_near_hotspot(rng, box, hotspots)
        for _trip in range(trips_per_vehicle):
            dest = _sample_destination(rng, box, hotspots, pos, city, km_per_deg_lon)
            trip_pts = _interpolate_trip(
                rng, pos, dest, clock, city, km_per_deg_lon, gps_noise_deg
            )
            for t, la, lo in trip_pts:
                times.append(t)
                lats.append(la)
                lons.append(lo)
                occs.append(True)
            clock = trip_pts[-1][0] + float(rng.uniform(120.0, 900.0))
            pos = dest
            # idle fix between trips (vacant cruising)
            times.append(clock)
            lats.append(pos[0])
            lons.append(pos[1])
            occs.append(False)
            clock += city.fix_interval_s
        trajs.append(
            Trajectory(
                vehicle_id=f"{city.name}-{v:04d}",
                times=np.asarray(times),
                lats=np.asarray(lats),
                lons=np.asarray(lons),
                occupied=np.asarray(occs, dtype=bool),
            )
        )
    return TraceSet(city.name, trajs)


def _sample_near_hotspot(
    rng: np.random.Generator, box: BoundingBox, hotspots: np.ndarray
) -> tuple[float, float]:
    """A point near a random hotspot, clamped into the box; (lat, lon)."""
    h = hotspots[int(rng.integers(0, len(hotspots)))]
    lon = h[0] + rng.normal(0.0, 0.15 * box.width)
    lat = h[1] + rng.normal(0.0, 0.15 * box.height)
    lon, lat = box.clamp(lon, lat)
    return float(lat), float(lon)


def _sample_destination(
    rng: np.random.Generator,
    box: BoundingBox,
    hotspots: np.ndarray,
    origin: tuple[float, float],
    city: CityProfile,
    km_per_deg_lon: float,
) -> tuple[float, float]:
    """Destination at a lognormal trip distance in a random direction."""
    mu = math.log(city.mean_trip_km) - city.trip_km_sigma**2 / 2.0
    for _attempt in range(20):
        dist_km = float(rng.lognormal(mu, city.trip_km_sigma))
        angle = float(rng.uniform(0.0, 2.0 * math.pi))
        dlat = dist_km * math.sin(angle) / KM_PER_DEG_LAT
        dlon = dist_km * math.cos(angle) / km_per_deg_lon
        lat, lon = origin[0] + dlat, origin[1] + dlon
        if box.contains(lon, lat):
            return lat, lon
    lon, lat = box.clamp(origin[1] + dlon, origin[0] + dlat)
    return float(lat), float(lon)


def _interpolate_trip(
    rng: np.random.Generator,
    origin: tuple[float, float],
    dest: tuple[float, float],
    start: float,
    city: CityProfile,
    km_per_deg_lon: float,
    noise_deg: float,
) -> list[tuple[float, float, float]]:
    """Fixes along the trip at the city's GPS sampling interval."""
    d_km = math.hypot(
        (dest[0] - origin[0]) * KM_PER_DEG_LAT,
        (dest[1] - origin[1]) * km_per_deg_lon,
    )
    speed = max(5.0, city.mean_speed_kmh * float(rng.uniform(0.7, 1.3)))
    duration_s = max(city.fix_interval_s, d_km / speed * 3600.0)
    n_fixes = max(2, int(duration_s / city.fix_interval_s) + 1)
    frac = np.linspace(0.0, 1.0, n_fixes)
    lats = origin[0] + frac * (dest[0] - origin[0])
    lons = origin[1] + frac * (dest[1] - origin[1])
    # Noise on intermediate fixes only: endpoints are the true OD pair.
    if n_fixes > 2:
        lats[1:-1] += rng.normal(0.0, noise_deg, size=n_fixes - 2)
        lons[1:-1] += rng.normal(0.0, noise_deg, size=n_fixes - 2)
    times = start + frac * duration_s
    return [(float(t), float(la), float(lo)) for t, la, lo in zip(times, lats, lons)]
