"""Trace-derived congestion: the paper's own recipe.

Section 5.1: "the congestion level is calculated by the velocity of the
vehicles on the route."  This module implements exactly that pipeline on
parsed trace sets:

1. per-trajectory segment speeds from consecutive GPS fixes;
2. snap each segment midpoint to its nearest road edge (simple
   nearest-midpoint map matching — adequate at city GPS densities);
3. average observed speed per edge; edges no taxi visited fall back to
   free flow;
4. edge congestion = relative slowdown ``1 - observed/free-flow``,
   aggregated along a route length-weighted (same convention as the
   synthetic :class:`~repro.network.congestion.BackgroundTraffic`).

:class:`TraceDerivedTraffic` duck-types ``BackgroundTraffic`` (``apply`` /
``edge_congestion`` / ``route_congestion``), so
:class:`~repro.network.routing.RoutePlanner` and the scenario builder can
swap it in via ``ScenarioConfig(congestion_source="traces")``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.point import haversine_km
from repro.network.graph import RoadNetwork
from repro.traces.model import TraceSet
from repro.traces.projection import GeoProjection
from repro.utils.validation import check_positive, require


def segment_speeds(
    traces: TraceSet,
    *,
    max_gap_s: float = 300.0,
    max_speed_kmh: float = 150.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Speeds of consecutive-fix segments across a trace set.

    Returns ``(midpoints_latlon, speeds_kmh)`` where midpoints is
    ``(n, 2)`` as (lat, lon).  Segments spanning silent gaps longer than
    ``max_gap_s`` or implying speeds above ``max_speed_kmh`` (GPS glitches)
    are discarded; zero-duration segments are skipped.
    """
    check_positive("max_gap_s", max_gap_s)
    check_positive("max_speed_kmh", max_speed_kmh)
    mids: list[tuple[float, float]] = []
    speeds: list[float] = []
    for traj in traces:
        dt = np.diff(traj.times)
        for i in range(len(traj) - 1):
            if dt[i] <= 0 or dt[i] > max_gap_s:
                continue
            dist = haversine_km(
                traj.lats[i], traj.lons[i], traj.lats[i + 1], traj.lons[i + 1]
            )
            speed = dist / (dt[i] / 3600.0)
            if speed > max_speed_kmh:
                continue
            mids.append(
                (
                    float((traj.lats[i] + traj.lats[i + 1]) / 2),
                    float((traj.lons[i] + traj.lons[i + 1]) / 2),
                )
            )
            speeds.append(float(speed))
    if not mids:
        return np.zeros((0, 2)), np.zeros(0)
    return np.asarray(mids), np.asarray(speeds)


def estimate_edge_speeds(
    net: RoadNetwork,
    traces: TraceSet,
    projection: GeoProjection,
    *,
    max_snap_km: float = 0.5,
    min_observations: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Average observed speed per directed edge from trace segments.

    Returns ``(observed_kmh, n_observations)``.  Unobserved edges (or
    edges with fewer than ``min_observations`` snapped segments) keep
    their free-flow speed.  Observed speeds are capped at free flow —
    taxis can't certify a road is *faster* than its limit.
    """
    check_positive("max_snap_km", max_snap_km)
    require(min_observations >= 1, "min_observations must be >= 1")
    net.freeze()
    mids_latlon, speeds = segment_speeds(traces)
    sums = np.zeros(net.num_edges)
    counts = np.zeros(net.num_edges, dtype=np.intp)
    if len(speeds):
        xy = projection.to_xy(mids_latlon[:, 0], mids_latlon[:, 1])
        edge_mid = np.empty((net.num_edges, 2))
        for e in net.edges():
            edge_mid[e.edge_id] = 0.5 * (net.coords[e.u] + net.coords[e.v])
        # (m, E) snap matrix is fine at city scale.
        d2 = (
            (xy[:, None, 0] - edge_mid[None, :, 0]) ** 2
            + (xy[:, None, 1] - edge_mid[None, :, 1]) ** 2
        )
        nearest = np.argmin(d2, axis=1)
        dist = np.sqrt(d2[np.arange(len(nearest)), nearest])
        ok = dist <= max_snap_km
        np.add.at(sums, nearest[ok], speeds[ok])
        np.add.at(counts, nearest[ok], 1)
    observed = net.free_flow_kmh.copy()
    seen = counts >= min_observations
    observed[seen] = np.minimum(
        sums[seen] / counts[seen], net.free_flow_kmh[seen]
    )
    observed = np.maximum(observed, 1e-3)
    return observed, counts


@dataclass
class TraceDerivedTraffic:
    """Congestion model estimated from taxi-trace velocities.

    Drop-in replacement for
    :class:`~repro.network.congestion.BackgroundTraffic` (same trio of
    methods), with observed speeds measured rather than synthesized.
    """

    traces: TraceSet
    projection: GeoProjection
    scale: float = 20.0
    max_snap_km: float = 0.5
    observation_counts: np.ndarray | None = field(default=None, repr=False)
    _edge_congestion: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        check_positive("scale", self.scale)

    def apply(self, net: RoadNetwork) -> np.ndarray:
        """Estimate and install observed speeds; returns per-edge slowdown."""
        net.freeze()
        observed, counts = estimate_edge_speeds(
            net, self.traces, self.projection, max_snap_km=self.max_snap_km
        )
        net.observed_kmh = observed
        self.observation_counts = counts
        self._edge_congestion = np.clip(
            1.0 - observed / np.maximum(net.free_flow_kmh, 1e-9), 0.0, 1.0
        )
        return self._edge_congestion

    def edge_congestion(self, net: RoadNetwork) -> np.ndarray:
        if self._edge_congestion is None or len(self._edge_congestion) != net.num_edges:
            self.apply(net)
        assert self._edge_congestion is not None
        return self._edge_congestion

    def route_congestion(self, net: RoadNetwork, nodes: list[int]) -> float:
        """``c(r)``: scaled length-weighted mean slowdown along the route."""
        if len(nodes) < 2:
            return 0.0
        slow = self.edge_congestion(net)
        eids = np.asarray(net.path_edge_ids(nodes), dtype=int)
        lengths = net.edge_lengths[eids]
        total = lengths.sum()
        if total <= 0:
            return 0.0
        return float(self.scale * np.dot(slow[eids], lengths) / total)

    @property
    def coverage_fraction(self) -> float:
        """Fraction of edges with at least one speed observation."""
        if self.observation_counts is None:
            return 0.0
        return float(np.mean(self.observation_counts >= 1))
