"""Geographic-to-planar mapping shared by OD snapping and congestion
estimation.

The synthetic road graphs live in a local planar frame; the traces live in
WGS-84.  Both are city-scale rectangles, so an affine map of the city's
lat/lon box onto the network's planar bounding box aligns them (DESIGN.md,
substitution 2: only relative geometry matters to the game layer).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.point import BoundingBox
from repro.network.graph import RoadNetwork
from repro.utils.validation import require


@dataclass(frozen=True)
class GeoProjection:
    """Affine map from a lat/lon box onto a planar box."""

    lon0: float
    lat0: float
    lon_width: float
    lat_height: float
    planar: BoundingBox

    def __post_init__(self) -> None:
        require(self.lon_width > 0 and self.lat_height > 0,
                "degenerate geographic box")

    @staticmethod
    def fit(lonlat_box: BoundingBox, net: RoadNetwork) -> "GeoProjection":
        """Map ``lonlat_box`` (x = lon, y = lat) onto the network's extent."""
        net.freeze()
        return GeoProjection(
            lon0=lonlat_box.min_x,
            lat0=lonlat_box.min_y,
            lon_width=lonlat_box.width,
            lat_height=lonlat_box.height,
            planar=net.bounding_box(),
        )

    def to_xy(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Project lat/lon arrays to an ``(n, 2)`` planar array (clamped)."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        u = np.clip((lons - self.lon0) / self.lon_width, 0.0, 1.0)
        v = np.clip((lats - self.lat0) / self.lat_height, 0.0, 1.0)
        x = self.planar.min_x + u * self.planar.width
        y = self.planar.min_y + v * self.planar.height
        return np.column_stack([np.atleast_1d(x), np.atleast_1d(y)])

    @property
    def km_per_deg(self) -> tuple[float, float]:
        """Planar kilometres represented by one degree of (lon, lat)."""
        return (
            self.planar.width / self.lon_width,
            self.planar.height / self.lat_height,
        )
