"""Taxi GPS trace substrate.

The paper draws origin-destination pairs from three CRAWDAD taxi datasets
(Shanghai, Roma, Epfl/cabspotting).  Those datasets cannot be redistributed,
so this package provides (a) parsers/writers for the real on-disk formats,
letting users drop in the actual data unchanged, and (b) synthetic trace
generators calibrated to each city's published fleet size and geometry.
"""

from repro.traces.model import TraceSet, Trajectory
from repro.traces.cities import CITY_PROFILES, CityProfile, get_city
from repro.traces.parsers import (
    parse_epfl_cab_file,
    parse_roma_file,
    parse_shanghai_file,
    write_epfl_cab_file,
    write_roma_file,
    write_shanghai_file,
)
from repro.traces.synthetic import synthesize_traces
from repro.traces.od import extract_od_pairs, od_pairs_to_nodes
from repro.traces.projection import GeoProjection
from repro.traces.speed_estimation import (
    TraceDerivedTraffic,
    estimate_edge_speeds,
    segment_speeds,
)

__all__ = [
    "CITY_PROFILES",
    "CityProfile",
    "GeoProjection",
    "TraceDerivedTraffic",
    "TraceSet",
    "Trajectory",
    "estimate_edge_speeds",
    "extract_od_pairs",
    "get_city",
    "od_pairs_to_nodes",
    "segment_speeds",
    "parse_epfl_cab_file",
    "parse_roma_file",
    "parse_shanghai_file",
    "synthesize_traces",
    "write_epfl_cab_file",
    "write_roma_file",
    "write_shanghai_file",
]
