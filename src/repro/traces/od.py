"""Origin-destination extraction (Section 5.1: "We extract the origin and
the destination from the traces").

Trajectories are split into occupied trips; each trip's endpoints form an
OD pair.  :func:`od_pairs_to_nodes` projects lat/lon pairs into the road
network's planar frame and snaps them to the nearest nodes, rejecting pairs
that collapse onto the same node (no route to recommend).
"""

from __future__ import annotations

import numpy as np

from repro.network.graph import RoadNetwork
from repro.traces.model import TraceSet
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require


def extract_od_pairs(
    traces: TraceSet,
    *,
    min_trip_km: float = 0.5,
    gap_s: float = 600.0,
) -> list[tuple[float, float, float, float]]:
    """OD pairs as ``(o_lat, o_lon, d_lat, d_lon)``, one per occupied trip.

    Trips shorter (great-circle) than ``min_trip_km`` are discarded — GPS
    jitter, not journeys.
    """
    from repro.geometry.point import haversine_km

    out: list[tuple[float, float, float, float]] = []
    for traj in traces:
        for trip in traj.trips(gap_s=gap_s):
            if not bool(trip.occupied[0]):
                continue
            o_lat, o_lon = trip.origin
            d_lat, d_lon = trip.destination
            if haversine_km(o_lat, o_lon, d_lat, d_lon) >= min_trip_km:
                out.append((o_lat, o_lon, d_lat, d_lon))
    return out


def od_pairs_to_nodes(
    net: RoadNetwork,
    od_lonlat: list[tuple[float, float, float, float]],
    *,
    origin_latlon: tuple[float, float] | None = None,
    bbox_latlon_width: tuple[float, float] | None = None,
    projection: "GeoProjection | None" = None,
    n_pairs: int | None = None,
    seed: SeedLike = None,
) -> list[tuple[int, int]]:
    """Snap geographic OD pairs to network nodes.

    The geographic box is mapped affinely onto the network's planar
    bounding box via a :class:`~repro.traces.projection.GeoProjection`
    (pass one directly, or give ``origin_latlon`` + ``bbox_latlon_width``
    to build it), then endpoints snap to their nearest node.  Degenerate
    pairs (same node) are dropped.  When ``n_pairs`` is given, a random
    subset of the surviving pairs of that size is returned (with
    replacement only if there are too few).
    """
    from repro.geometry.point import BoundingBox
    from repro.traces.projection import GeoProjection

    require(len(od_lonlat) >= 1, "no OD pairs supplied")
    net.freeze()
    if projection is None:
        require(
            origin_latlon is not None and bbox_latlon_width is not None,
            "pass either a projection or origin_latlon + bbox_latlon_width",
        )
        o_lat0, o_lon0 = origin_latlon
        lat_w, lon_w = bbox_latlon_width
        projection = GeoProjection.fit(
            BoundingBox(o_lon0, o_lat0, o_lon0 + lon_w, o_lat0 + lat_w), net
        )

    arr = np.asarray(od_lonlat, dtype=float)
    origins = net.nearest_nodes(projection.to_xy(arr[:, 0], arr[:, 1]))
    dests = net.nearest_nodes(projection.to_xy(arr[:, 2], arr[:, 3]))
    pairs = [(int(o), int(d)) for o, d in zip(origins, dests) if o != d]
    require(len(pairs) >= 1, "all OD pairs collapsed to a single node")
    if n_pairs is None:
        return pairs
    rng = as_generator(seed)
    if n_pairs <= len(pairs):
        idx = rng.choice(len(pairs), size=n_pairs, replace=False)
    else:
        idx = rng.choice(len(pairs), size=n_pairs, replace=True)
    return [pairs[int(i)] for i in idx]
