"""Sensing-task substrate: the reward law of Eq. (1), spatial task
placement, and route-coverage assignment."""

from repro.tasks.task import Task, TaskSet, reward, reward_share, shared_reward_prefix_sum
from repro.tasks.generator import generate_tasks
from repro.tasks.assignment import assign_tasks_to_routes, coverage_matrix

__all__ = [
    "Task",
    "TaskSet",
    "assign_tasks_to_routes",
    "coverage_matrix",
    "generate_tasks",
    "reward",
    "reward_share",
    "shared_reward_prefix_sum",
]
