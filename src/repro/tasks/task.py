"""Sensing tasks and the shared-reward law of Eq. (1).

A task ``k`` performed by ``x`` users pays the *pool* ``w_k(x) = a_k +
mu_k * ln(x)``, shared equally: each participant receives ``w_k(x)/x``
(Eq. 2).  The potential function needs the prefix sums
``sum_{q=1}^{n} w_k(q)/q`` (Eq. 8), computed vectorized here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.utils.validation import check_in_range, check_positive, require


@dataclass(frozen=True, slots=True)
class Task:
    """One sensing task.

    Attributes
    ----------
    task_id:
        Dense index into the instance's task set.
    x, y:
        Planar location in km.
    base_reward:
        ``a_k``: the reward when a single user performs the task
        (Table 2: uniform in [10, 20]).
    reward_increment:
        ``mu_k`` in [0, 1]: marginal pool growth per ln(participants).
    """

    task_id: int
    x: float
    y: float
    base_reward: float
    reward_increment: float

    def __post_init__(self) -> None:
        check_positive("base_reward", self.base_reward)
        check_in_range("reward_increment", self.reward_increment, 0.0, 1.0)

    def reward(self, x: int) -> float:
        """Pool ``w_k(x)`` for ``x >= 1`` participants."""
        return reward(self.base_reward, self.reward_increment, x)

    def share(self, x: int) -> float:
        """Per-participant share ``w_k(x)/x``."""
        return reward_share(self.base_reward, self.reward_increment, x)


def reward(a: float, mu: float, x: int | np.ndarray) -> float | np.ndarray:
    """Eq. (1): ``w(x) = a + mu * ln(x)``, defined for ``x >= 1``."""
    x_arr = np.asarray(x)
    if np.any(x_arr < 1):
        raise ValueError(f"participant count must be >= 1, got {x}")
    out = a + mu * np.log(x_arr)
    return float(out) if np.isscalar(x) or x_arr.ndim == 0 else out


def reward_share(a: float, mu: float, x: int | np.ndarray) -> float | np.ndarray:
    """Per-user share ``w(x)/x``."""
    x_arr = np.asarray(x, dtype=float)
    w = reward(a, mu, x)
    out = np.asarray(w) / x_arr
    return float(out) if np.isscalar(x) or x_arr.ndim == 0 else out


def shared_reward_prefix_sum(a: float, mu: float, n: int) -> float:
    """``sum_{q=1}^{n} w(q)/q`` — the task's term in the potential (Eq. 8)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if n == 0:
        return 0.0
    q = np.arange(1, n + 1, dtype=float)
    return float(np.sum((a + mu * np.log(q)) / q))


class TaskSet:
    """Immutable indexed collection of tasks with vectorized attribute views."""

    def __init__(self, tasks: Sequence[Task]) -> None:
        require(
            all(t.task_id == i for i, t in enumerate(tasks)),
            "task ids must be dense 0..N-1 in order",
        )
        self._tasks = tuple(tasks)
        n = len(tasks)
        self.xy = np.array([[t.x, t.y] for t in tasks], dtype=float).reshape(n, 2)
        self.base_rewards = np.array([t.base_reward for t in tasks], dtype=float)
        self.reward_increments = np.array(
            [t.reward_increment for t in tasks], dtype=float
        )

    def __len__(self) -> int:
        return len(self._tasks)

    def __getitem__(self, task_id: int) -> Task:
        return self._tasks[task_id]

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def shares(self, counts: np.ndarray) -> np.ndarray:
        """Per-task share ``w_k(n_k)/n_k`` for a full count vector.

        Tasks with count 0 get share 0.  Vectorized over all tasks.
        """
        c = np.asarray(counts, dtype=float)
        if c.shape != (len(self),):
            raise ValueError(f"counts must have shape ({len(self)},), got {c.shape}")
        out = np.zeros(len(self))
        active = c >= 1
        ca = c[active]
        out[active] = (
            self.base_rewards[active] + self.reward_increments[active] * np.log(ca)
        ) / ca
        return out

    def potential_terms(self, counts: np.ndarray) -> np.ndarray:
        """Per-task prefix sums ``sum_{q<=n_k} w_k(q)/q`` (Eq. 8 first term)."""
        c = np.asarray(counts, dtype=int)
        if c.shape != (len(self),):
            raise ValueError(f"counts must have shape ({len(self)},), got {c.shape}")
        if np.any(c < 0):
            raise ValueError("counts must be non-negative")
        out = np.zeros(len(self))
        max_n = int(c.max()) if len(c) else 0
        if max_n == 0:
            return out
        # shares_table[k, q-1] = w_k(q)/q for q = 1..max_n, built in one shot.
        q = np.arange(1, max_n + 1, dtype=float)
        table = (
            self.base_rewards[:, None] + self.reward_increments[:, None] * np.log(q)[None, :]
        ) / q[None, :]
        csum = np.cumsum(table, axis=1)
        active = c >= 1
        out[active] = csum[active, c[active] - 1]
        return out
