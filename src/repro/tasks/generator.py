"""Random task placement (Section 5.1: "tasks are randomly generated").

Tasks are placed either uniformly in the network's bounding box or biased
toward the road network (a random point near a random edge midpoint), with
rewards drawn per Table 2: ``a_k`` uniform in [10, 20], ``mu_k`` uniform in
[0, 1].
"""

from __future__ import annotations

import numpy as np

from repro.network.graph import RoadNetwork
from repro.tasks.task import Task, TaskSet
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, require


def generate_tasks(
    net: RoadNetwork,
    n_tasks: int,
    *,
    base_reward_range: tuple[float, float] = (10.0, 20.0),
    reward_increment_range: tuple[float, float] = (0.0, 1.0),
    on_road_fraction: float = 0.8,
    road_jitter_km: float = 0.15,
    seed: SeedLike = None,
) -> TaskSet:
    """Generate ``n_tasks`` tasks over the network's extent.

    ``on_road_fraction`` of tasks are scattered near road segments (where
    vehicular sensing is plausible); the remainder are uniform in the
    bounding box.  Reward parameters follow Table 2's ranges by default.
    """
    require(n_tasks >= 0, f"n_tasks must be >= 0, got {n_tasks}")
    lo, hi = base_reward_range
    require(0 < lo <= hi, f"bad base_reward_range: {base_reward_range}")
    ilo, ihi = reward_increment_range
    check_in_range("reward_increment_range[0]", ilo, 0.0, 1.0)
    check_in_range("reward_increment_range[1]", ihi, ilo, 1.0)
    rng = as_generator(seed)
    net.freeze()
    bbox = net.bounding_box()

    n_road = int(round(on_road_fraction * n_tasks))
    coords = np.empty((n_tasks, 2))
    if n_road > 0 and net.num_edges > 0:
        eids = rng.integers(0, net.num_edges, size=n_road)
        mids = np.empty((n_road, 2))
        for i, eid in enumerate(eids):
            e = net.edge(int(eid))
            t = rng.random()
            mids[i] = (1 - t) * net.coords[e.u] + t * net.coords[e.v]
        coords[:n_road] = mids + rng.normal(0.0, road_jitter_km, size=(n_road, 2))
    else:
        n_road = 0
    if n_tasks - n_road > 0:
        coords[n_road:] = bbox.sample(rng, n_tasks - n_road)

    a = rng.uniform(lo, hi, size=n_tasks)
    mu = rng.uniform(ilo, ihi, size=n_tasks)
    tasks = [
        Task(
            task_id=i,
            x=float(coords[i, 0]),
            y=float(coords[i, 1]),
            base_reward=float(a[i]),
            reward_increment=float(mu[i]),
        )
        for i in range(n_tasks)
    ]
    return TaskSet(tasks)
