"""Route/task coverage: which tasks does a recommended route cover?

A route covers a task when the task's location lies within
``coverage_radius_km`` of the route polyline — the vehicular-sensing analogue
of "each route may cover some MCS tasks" (Section 3.1).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.polyline import polyline_point_distance
from repro.network.graph import RoadNetwork
from repro.network.routing import Route
from repro.tasks.task import TaskSet
from repro.utils.validation import check_positive


def route_covers(
    net: RoadNetwork,
    route: Route,
    tasks: TaskSet,
    coverage_radius_km: float,
) -> tuple[int, ...]:
    """Task ids within ``coverage_radius_km`` of the route polyline."""
    check_positive("coverage_radius_km", coverage_radius_km)
    if len(tasks) == 0:
        return ()
    dist = polyline_point_distance(route.polyline(net), tasks.xy)
    return tuple(int(k) for k in np.flatnonzero(dist <= coverage_radius_km))


def assign_tasks_to_routes(
    net: RoadNetwork,
    route_sets: list[list[Route]],
    tasks: TaskSet,
    *,
    coverage_radius_km: float = 0.3,
) -> list[list[Route]]:
    """Attach covered-task tuples to every route of every user's route set.

    Returns new :class:`Route` objects (routes are immutable); the nested
    list structure mirrors the input.
    """
    out: list[list[Route]] = []
    for routes in route_sets:
        out.append(
            [
                r.with_tasks(route_covers(net, r, tasks, coverage_radius_km))
                for r in routes
            ]
        )
    return out


def coverage_matrix(route_sets: list[list[Route]], n_tasks: int) -> np.ndarray:
    """Boolean tensor flattened to a ragged-friendly matrix.

    Returns an ``(n_routes_total, n_tasks)`` boolean matrix where rows are
    all routes of all users in order, useful for vectorized what-if
    evaluation across an entire instance.
    """
    rows = []
    for routes in route_sets:
        for r in routes:
            row = np.zeros(n_tasks, dtype=bool)
            if r.task_ids:
                row[list(r.task_ids)] = True
            rows.append(row)
    if not rows:
        return np.zeros((0, n_tasks), dtype=bool)
    return np.vstack(rows)
