"""Lightweight wall-clock timing for experiment bookkeeping.

Lap percentiles share their quantile implementation with the telemetry
histograms (:mod:`repro.obs.quantiles`), so ``Timer.p95`` and
``Histogram.p95`` report the same statistic over the same data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.quantiles import quantile


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        """Average duration of completed laps (0.0 when none)."""
        return sum(self.laps) / len(self.laps) if self.laps else 0.0

    def percentile(self, p: float) -> float:
        """Interpolated lap-duration percentile, ``p`` in [0, 100].

        Returns 0.0 when no laps completed (mirrors :attr:`mean_lap`).
        """
        return quantile(self.laps, p / 100.0) if self.laps else 0.0

    @property
    def p50(self) -> float:
        """Median lap duration (0.0 when none)."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        """95th-percentile lap duration (0.0 when none)."""
        return self.percentile(95.0)
