"""Lightweight wall-clock timing for experiment bookkeeping."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating stopwatch usable as a context manager.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def reset(self) -> None:
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def mean_lap(self) -> float:
        """Average duration of completed laps (0.0 when none)."""
        return sum(self.laps) / len(self.laps) if self.laps else 0.0
