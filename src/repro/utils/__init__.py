"""Shared utilities: RNG management, validation, timing.

Timing percentiles (``Timer.p50``/``p95``) are backed by the telemetry
layer's quantile helper; see :mod:`repro.obs` for the full observability
subsystem (metrics registry, span tracing, structured events).
"""

from repro.utils.rng import RngStream, as_generator, spawn_children
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    require,
)
from repro.utils.timer import Timer

__all__ = [
    "RngStream",
    "Timer",
    "as_generator",
    "check_in_range",
    "check_positive",
    "check_probability",
    "require",
    "spawn_children",
]
