"""Deterministic random-number management.

Every stochastic component in the library receives an explicit
:class:`numpy.random.Generator` (or a seed convertible to one).  Experiments
that repeat a simulation 500 times (the paper's protocol, Table 2) derive one
independent child generator per repetition via :func:`spawn_children`, so runs
are reproducible regardless of execution order or process placement.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

SeedLike = Union[int, None, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence``
    or an existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` so children never overlap, which makes
    process-parallel repetition runs reproducible: repetition ``j`` always
    sees the same stream no matter which worker executes it.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of children: {n}")
    if isinstance(seed, np.random.Generator):
        ss = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class RngStream:
    """A named hierarchy of reproducible random generators.

    A stream hands out child generators keyed by label.  Asking twice for the
    same label returns generators seeded identically, so components can be
    re-instantiated without perturbing each other's randomness::

        stream = RngStream(42)
        rng_tasks = stream.child("tasks")
        rng_traces = stream.child("traces")
    """

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, np.random.SeedSequence):
            self._entropy: object = seed.entropy
        elif isinstance(seed, np.random.Generator):
            self._entropy = seed.bit_generator.seed_seq.entropy  # type: ignore[attr-defined]
        else:
            self._entropy = seed if seed is not None else np.random.SeedSequence().entropy

    @property
    def entropy(self) -> object:
        """Root entropy of the stream (stable across calls)."""
        return self._entropy

    def child(self, *labels: object) -> np.random.Generator:
        """Return a generator deterministically derived from ``labels``."""
        key = _labels_to_ints(labels)
        ss = np.random.SeedSequence(entropy=self._entropy, spawn_key=key)
        return np.random.default_rng(ss)

    def children(self, label: object, n: int) -> list[np.random.Generator]:
        """Return ``n`` independent generators under a single label."""
        key = _labels_to_ints((label,))
        ss = np.random.SeedSequence(entropy=self._entropy, spawn_key=key)
        return [np.random.default_rng(c) for c in ss.spawn(n)]


def _labels_to_ints(labels: Iterable[object]) -> tuple[int, ...]:
    """Hash arbitrary labels into a stable spawn-key tuple."""
    out: list[int] = []
    for lab in labels:
        if isinstance(lab, (int, np.integer)):
            out.append(int(lab) & 0xFFFFFFFF)
        else:
            h = 2166136261
            for byte in str(lab).encode():
                h = ((h ^ byte) * 16777619) & 0xFFFFFFFF
            out.append(h)
    return tuple(out)


def choice_without_replacement(
    rng: np.random.Generator, items: Sequence, k: int
) -> list:
    """Sample ``k`` distinct items (k may exceed len(items); then all items)."""
    k = min(k, len(items))
    idx = rng.choice(len(items), size=k, replace=False)
    return [items[int(i)] for i in idx]
