"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any

import numpy as np


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is (strictly) positive and finite."""
    v = float(value)
    if not np.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if strict and v <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and v < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate ``low <= value <= high`` (or strict bounds)."""
    v = float(value)
    if not np.isfinite(v):
        raise ValueError(f"{name} must be finite, got {value!r}")
    ok = (low <= v <= high) if inclusive else (low < v < high)
    if not ok:
        op = "<=" if inclusive else "<"
        raise ValueError(f"{name} must satisfy {low} {op} {name} {op} {high}, got {value!r}")
    return v


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` lies in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_index(name: str, value: int, size: int) -> int:
    """Validate that ``value`` is a valid index into a container of ``size``."""
    i = int(value)
    if not 0 <= i < size:
        raise IndexError(f"{name}={value!r} out of range for size {size}")
    return i


def check_type(name: str, value: Any, expected: type) -> Any:
    """Validate ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value
