"""Decision-slot driver for the distributed protocol.

Orchestrates the message phases of one run:

1. handshake — platform sends recommendations/annotations; users pick and
   report random initial routes; platform counts and broadcasts.
2. per decision slot — users recompute their best route sets and request
   updates; platform grants via SUU or PUU; granted users report; platform
   re-counts and re-broadcasts.
3. termination — a slot with zero requests ends the run.

The driver only moves messages and steps agents; all decisions are made
inside the agents from their local state.

Two drivers share the construction above (``docs/robustness.md``):

- the *paper-faithful* loop (``fault_plan=None``) — exactly the three
  phases, reliable in-order delivery (optionally the fig15 lossy
  telemetry), and
- the *hardened* loop (``fault_plan=...``) — the bus runs a
  :class:`~repro.faults.injector.FaultInjector`, agents carry a
  :class:`~repro.distributed.resilience.ResilienceConfig` (acks, retries,
  leases), crash/restart events fire between slots, and termination goes
  through a reliably-acked count-sync round so the run only quiesces on
  confirmed-fresh views.  With the *null* plan the hardened loop
  reproduces the paper-faithful trajectories bit-for-bit (asserted by
  ``tests/distributed/test_zero_fault_identity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.profit import all_profits
from repro.distributed.bus import MessageBus
from repro.distributed.platform_agent import PlatformAgent
from repro.distributed.resilience import ResilienceConfig
from repro.distributed.user_agent import UserAgent
from repro.obs import counter as _obs_counter
from repro.obs import event as _obs_event
from repro.obs import gauge as _obs_gauge
from repro.obs.runtime import RUNTIME as _OBS
from repro.obs.tracing import trace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require


@dataclass
class DistributedOutcome:
    """Result of one protocol run."""

    profile: StrategyProfile
    decision_slots: int
    converged: bool
    message_traffic: dict[str, int]
    total_messages: int
    granted_per_slot: list[int] = field(default_factory=list)
    profit_history: np.ndarray | None = None  # (slots+1, num_users)
    # Messages actually lost in transit (sent - delivered), total and by
    # type — ``message_traffic`` counts *sent* messages, dropped included.
    dropped_messages: int = 0
    dropped_by_type: dict[str, int] = field(default_factory=dict)
    mailbox_high_water: int = 0
    # Why the run stopped: "converged" (quiescent Nash, confirmed under
    # the hardened protocol), "max_slots" (slot budget exhausted while
    # still making progress), or "stalled" (hardened only: no protocol
    # progress for a full stall window).
    stop_reason: str = "converged"
    # Hardened-protocol accounting (zeros on the paper-faithful path).
    lease_revocations: int = 0
    redelivered_messages: int = 0
    duplicated_messages: int = 0
    crashes: int = 0
    rejoins: int = 0
    permanently_crashed: tuple[int, ...] = ()
    faults_injected: dict[str, int] = field(default_factory=dict)

    @property
    def total_profit(self) -> float:
        return float(all_profits(self.profile).sum())


class DistributedSimulation:
    """Run Algorithms 1-3 over the message bus for a given game."""

    def __init__(
        self,
        game: RouteNavigationGame,
        *,
        scheduler: str = "suu",
        seed: SeedLike = None,
        max_slots: int = 100_000,
        record_history: bool = True,
        validate_local_views: bool = False,
        drop_prob: float = 0.0,
        shuffle_service_order: bool = False,
        fault_plan=None,
        resilience: ResilienceConfig | None = None,
        check_invariants: bool = False,
    ) -> None:
        """``shuffle_service_order=True`` randomizes the order agents are
        stepped within each phase — modelling arbitrary message-arrival
        interleavings; outcomes must still converge to Nash equilibria.

        ``fault_plan`` (a :class:`~repro.faults.plan.FaultPlan`) switches
        to the hardened protocol; ``resilience`` tunes it (default:
        :meth:`ResilienceConfig.for_plan`); ``check_invariants`` attaches
        an :class:`~repro.faults.invariants.InvariantChecker` (available
        afterwards as ``self.invariants``).
        """
        require(max_slots >= 1, "max_slots must be >= 1")
        if drop_prob > 0.0 and validate_local_views:
            raise ValueError(
                "validate_local_views requires reliable delivery: with "
                "drop_prob > 0 agents act on deliberately stale counts"
            )
        if fault_plan is not None and drop_prob > 0.0:
            raise ValueError(
                "fault_plan and drop_prob are mutually exclusive: model "
                "telemetry loss inside the plan (loss={'TaskCountUpdate': p})"
            )
        if fault_plan is not None and validate_local_views:
            raise ValueError(
                "validate_local_views requires reliable delivery; use "
                "check_invariants for fault runs"
            )
        if fault_plan is None and resilience is not None:
            raise ValueError(
                "resilience config without a fault_plan has no effect; pass "
                "fault_plan=FaultPlan() to harden a fault-free run"
            )
        if fault_plan is None and check_invariants:
            raise ValueError("check_invariants requires a fault_plan")
        self.game = game
        self.scheduler = scheduler
        self.max_slots = max_slots
        self.record_history = record_history
        self.validate_local_views = validate_local_views
        self.fault_plan = fault_plan
        self.injector = None
        self.invariants = None
        root = as_generator(seed)
        # The bus seed is drawn unconditionally so enabling/disabling the
        # lossy extension never shifts the root RNG stream, but only
        # passed through when the lossy path will actually use it.
        bus_seed = root.integers(2**63)
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector

            self.injector = FaultInjector(fault_plan.compile(game.num_users))
            if resilience is None:
                resilience = ResilienceConfig.for_plan(fault_plan)
            self.resilience = resilience
            self.bus = MessageBus(injector=self.injector)
        else:
            self.resilience = None
            self.bus = MessageBus(
                drop_prob=drop_prob,
                seed=bus_seed if drop_prob > 0.0 else None,
            )
        self.platform = PlatformAgent(
            game, self.bus, root, scheduler=scheduler, resilience=self.resilience
        )
        self.users = [
            UserAgent(
                i,
                game.user_weights[i],
                self.bus,
                as_generator(root.integers(2**63)),
                resilience=self.resilience,
            )
            for i in game.users
        ]
        self._shuffle = shuffle_service_order
        self._order_rng = as_generator(root.integers(2**63))
        if check_invariants:
            from repro.faults.invariants import InvariantChecker

            self.invariants = InvariantChecker(game)

    def _service_order(self) -> list[UserAgent]:
        if not self._shuffle:
            return self.users
        order = list(self.users)
        self._order_rng.shuffle(order)  # type: ignore[arg-type]
        return order

    def run(self) -> DistributedOutcome:
        if self.fault_plan is not None:
            return self._run_hardened()
        return self._run_legacy()

    # ---------------------------------------------------- paper-faithful loop
    def _run_legacy(self) -> DistributedOutcome:
        self._handshake()
        history: list[np.ndarray] = []
        if self.record_history:
            history.append(self._profits_snapshot())

        # ---- decision slots (Alg. 2 lines 5-12, Alg. 1 lines 8-18)
        slot = 0
        converged = False
        while slot < self.max_slots:
            slot += 1
            with trace("distributed.slot"):
                with trace("distributed.requests"):
                    for agent in self._service_order():
                        agent.begin_slot(slot)
                    requests, _ = self.platform.process_inbox()
                if not requests:
                    self.platform.terminate(slot)
                    for agent in self._service_order():
                        agent.process_inbox()
                    converged = True
                    slot -= 1  # the empty slot only carries the termination
                    break
                with trace("distributed.grant"):
                    self.platform.grant(slot, requests)
                    for agent in self._service_order():
                        agent.process_inbox()  # granted agents switch + report
                with trace("distributed.broadcast"):
                    _, reports = self.platform.process_inbox()
                    self.platform.apply_reports(reports)
                    self.platform.broadcast_counts(slot)
                    for agent in self._service_order():
                        agent.process_inbox()
            if self.validate_local_views:
                self._check_local_views()
            if self.record_history:
                history.append(self._profits_snapshot())

        stop_reason = "converged" if converged else "max_slots"
        return self._build_outcome(slot, converged, stop_reason, history)

    # ---------------------------------------------------------- hardened loop
    def _run_hardened(self) -> DistributedOutcome:
        assert self.injector is not None and self.resilience is not None
        self._handshake()
        if self.invariants is not None:
            self.invariants.start(dict(self.platform.decisions))
        history: list[np.ndarray] = []
        if self.record_history:
            history.append(self._profits_snapshot())

        injector = self.injector
        slot = 0
        converged = False
        stop_reason = "max_slots"
        last_active = 0
        last_progress = 0
        confirming = False
        while slot < self.max_slots:
            slot += 1
            moves_before = len(self.platform.move_log)
            with trace("distributed.slot"):
                self.bus.advance(slot)
                for u in injector.crashes_at(slot):
                    self.users[u].crash()
                    self.bus.set_crashed(self.users[u].name)
                for u in injector.restarts_at(slot):
                    self.bus.set_crashed(self.users[u].name, crashed=False)
                    self.users[u].restart()
                with trace("distributed.requests"):
                    for agent in self._service_order():
                        agent.process_inbox()  # late grants/counts/snapshots
                    for agent in self._service_order():
                        agent.begin_slot(slot)
                    requests, early_reports = self.platform.process_inbox()
                    # Delayed or retried reports land here: fold them in
                    # before granting so grant-time counts are fresh.
                    self.platform.apply_reports(early_reports)
                if requests:
                    confirming = False
                    with trace("distributed.grant"):
                        self.platform.grant(slot, requests)
                        for agent in self._service_order():
                            agent.process_inbox()
                    with trace("distributed.broadcast"):
                        _, reports = self.platform.process_inbox()
                        self.platform.apply_reports(reports)
                        self.platform.broadcast_counts(slot)
                        for agent in self._service_order():
                            agent.process_inbox()
                elif self._quiet():
                    # Two-phase termination: first a reliably-acked count
                    # sync, then — once every alive user confirmed it and
                    # still stayed silent for a slot — the termination.
                    if confirming and self.platform.confirm_ok():
                        self.platform.terminate(slot)
                        for agent in self._service_order():
                            agent.process_inbox()
                        converged = True
                        stop_reason = "converged"
                        break
                    if not confirming or (
                        self.platform.channel_pending() == 0
                        and not self.platform.confirm_ok()
                    ):
                        # First quiet slot — or a confirm round abandoned
                        # by retry exhaustion: start a fresh one.
                        self.platform.broadcast_counts_reliable(
                            slot, self._alive_users()
                        )
                        confirming = True
                        for agent in self._service_order():
                            agent.process_inbox()  # absorb + ack the sync
                        self.platform.process_inbox()  # collect the acks
                # end-of-slot housekeeping: lease expiry, then retries —
                # after inbox processing so fresh acks cancel retries first.
                self.platform.tick(slot)
                for agent in self._service_order():
                    agent.tick(slot)
            moved = len(self.platform.move_log) > moves_before
            if requests or early_reports or moved:
                last_active = slot
            # Reliability machinery still draining (retries backing off,
            # leases running, delayed messages in flight, snapshots due)
            # counts as progress: each of those resolves in bounded time,
            # so only a genuine livelock trips the stall window.
            busy = (
                bool(self.platform.outstanding)
                or self.platform.channel_pending() > 0
                or self.bus.in_flight() > 0
                or injector.restart_pending()
                or any(
                    not a.crashed
                    and (a.channel_pending() > 0 or a.awaiting_snapshot)
                    for a in self.users
                )
            )
            if requests or early_reports or moved or confirming or busy:
                last_progress = slot
            if self.invariants is not None:
                rejoined = [
                    a
                    for a in self.users
                    if a.rejoined_at == slot and not a.awaiting_snapshot
                ]
                self.invariants.on_slot_end(slot, self.platform, rejoined)
            if self.record_history:
                history.append(self._profits_snapshot())
            if slot - last_progress >= self.resilience.stall_window:
                stop_reason = "stalled"
                break

        if converged:
            slot = last_active  # trailing quiet slots only carried the sync
        if self.record_history and history:
            history = history[: slot + 1]
        if self.invariants is not None:
            self.invariants.at_end(
                stop_reason, self.platform, self.users, self._alive_users()
            )
        return self._build_outcome(slot, converged, stop_reason, history)

    # ------------------------------------------------------------ run pieces
    def _handshake(self) -> None:
        """Alg. 2 lines 1-4, Alg. 1 lines 1-7 (shared by both loops)."""
        with trace("distributed.handshake", users=self.game.num_users):
            self.platform.send_recommendations()
            for agent in self._service_order():
                agent.process_inbox()  # pick + report initial routes
            _requests, reports = self.platform.process_inbox()
            self.platform.apply_reports(reports)
            self.platform.broadcast_counts(slot=0)
            for agent in self._service_order():
                agent.process_inbox()  # absorb initial counts
        require(
            len(self.platform.decisions) == self.game.num_users,
            "handshake incomplete: missing initial decision reports",
        )

    def _alive_users(self) -> list[int]:
        return [a.user_id for a in self.users if not a.crashed]

    def _quiet(self) -> bool:
        """No requests arrived, and nothing is still in flight anywhere.

        Crashed users are excluded — a scheduled restart blocks quiescence
        via ``restart_pending`` instead, and a permanent departure must
        not hold the run hostage.
        """
        assert self.injector is not None
        if self.injector.restart_pending():
            return False
        if self.platform.outstanding or self.bus.in_flight() > 0:
            return False
        for agent in self.users:
            if agent.crashed:
                continue
            if agent.awaiting_snapshot or agent.channel_pending() > 0:
                return False
        return True

    def _build_outcome(
        self,
        slot: int,
        converged: bool,
        stop_reason: str,
        history: list[np.ndarray],
    ) -> DistributedOutcome:
        profile = StrategyProfile(
            self.game, [self.platform.decisions[i] for i in self.game.users]
        )
        crashes = 0
        rejoins = self.platform.rejoins
        permanent: tuple[int, ...] = ()
        faults: dict[str, int] = {}
        if self.injector is not None:
            crashes = len(self.injector.compiled.events)
            permanent = self.injector.compiled.permanent_crashes
            faults = self.injector.summary()
        if _OBS.enabled:
            _obs_counter("distributed.runs_total", scheduler=self.scheduler).inc()
            _obs_counter("distributed.slots_total").inc(slot)
            _obs_counter("distributed.grants_total").inc(
                sum(self.platform.granted_per_slot)
            )
            _obs_gauge("bus.mailbox_high_water").max_of(
                self.bus.mailbox_high_water
            )
            _obs_event(
                "distributed.run_done",
                scheduler=self.scheduler,
                slots=slot,
                converged=converged,
                stop_reason=stop_reason,
                messages=self.bus.total_sent,
                dropped=self.bus.total_dropped,
            )
        return DistributedOutcome(
            profile=profile,
            decision_slots=slot,
            converged=converged,
            message_traffic=self.bus.traffic_summary(),
            total_messages=self.bus.total_sent,
            granted_per_slot=list(self.platform.granted_per_slot),
            profit_history=np.vstack(history) if history else None,
            dropped_messages=self.bus.total_dropped,
            dropped_by_type=self.bus.drop_summary(),
            mailbox_high_water=self.bus.mailbox_high_water,
            stop_reason=stop_reason,
            lease_revocations=self.platform.lease_revocations,
            redelivered_messages=self.bus.total_redelivered,
            duplicated_messages=self.bus.total_duplicated,
            crashes=crashes,
            rejoins=rejoins,
            permanently_crashed=permanent,
            faults_injected=faults,
        )

    # ------------------------------------------------------------ validation
    def _profits_snapshot(self) -> np.ndarray:
        """Ground-truth per-user profits of the platform's decision view."""
        profile = StrategyProfile(
            self.game,
            [self.platform.decisions[i] for i in self.game.users],
        )
        return all_profits(profile)

    def _check_local_views(self) -> None:
        """Assert every agent's local profit equals the global computation."""
        truth = self._profits_snapshot()
        for agent in self._service_order():
            local = agent.profit()
            if abs(local - truth[agent.user_id]) > 1e-9:
                raise AssertionError(
                    f"user {agent.user_id}: local profit {local} != "
                    f"global {truth[agent.user_id]}"
                )
