"""Decision-slot driver for the distributed protocol.

Orchestrates the message phases of one run:

1. handshake — platform sends recommendations/annotations; users pick and
   report random initial routes; platform counts and broadcasts.
2. per decision slot — users recompute their best route sets and request
   updates; platform grants via SUU or PUU; granted users report; platform
   re-counts and re-broadcasts.
3. termination — a slot with zero requests ends the run.

The driver only moves messages and steps agents; all decisions are made
inside the agents from their local state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.profit import all_profits
from repro.distributed.bus import MessageBus
from repro.distributed.platform_agent import PlatformAgent
from repro.distributed.user_agent import UserAgent
from repro.obs import counter as _obs_counter
from repro.obs import event as _obs_event
from repro.obs import gauge as _obs_gauge
from repro.obs.runtime import RUNTIME as _OBS
from repro.obs.tracing import trace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require


@dataclass
class DistributedOutcome:
    """Result of one protocol run."""

    profile: StrategyProfile
    decision_slots: int
    converged: bool
    message_traffic: dict[str, int]
    total_messages: int
    granted_per_slot: list[int] = field(default_factory=list)
    profit_history: np.ndarray | None = None  # (slots+1, num_users)
    # Messages actually lost in transit (sent - delivered), total and by
    # type — ``message_traffic`` counts *sent* messages, dropped included.
    dropped_messages: int = 0
    dropped_by_type: dict[str, int] = field(default_factory=dict)
    mailbox_high_water: int = 0

    @property
    def total_profit(self) -> float:
        return float(all_profits(self.profile).sum())


class DistributedSimulation:
    """Run Algorithms 1-3 over the message bus for a given game."""

    def __init__(
        self,
        game: RouteNavigationGame,
        *,
        scheduler: str = "suu",
        seed: SeedLike = None,
        max_slots: int = 100_000,
        record_history: bool = True,
        validate_local_views: bool = False,
        drop_prob: float = 0.0,
        shuffle_service_order: bool = False,
    ) -> None:
        """``shuffle_service_order=True`` randomizes the order agents are
        stepped within each phase — modelling arbitrary message-arrival
        interleavings; outcomes must still converge to Nash equilibria."""
        require(max_slots >= 1, "max_slots must be >= 1")
        if drop_prob > 0.0 and validate_local_views:
            raise ValueError(
                "validate_local_views requires reliable delivery: with "
                "drop_prob > 0 agents act on deliberately stale counts"
            )
        self.game = game
        self.scheduler = scheduler
        self.max_slots = max_slots
        self.record_history = record_history
        self.validate_local_views = validate_local_views
        root = as_generator(seed)
        self.bus = MessageBus(drop_prob=drop_prob, seed=root.integers(2**63))
        self.platform = PlatformAgent(game, self.bus, root, scheduler=scheduler)
        self.users = [
            UserAgent(i, game.user_weights[i], self.bus, as_generator(root.integers(2**63)))
            for i in game.users
        ]
        self._shuffle = shuffle_service_order
        self._order_rng = as_generator(root.integers(2**63))

    def _service_order(self) -> list[UserAgent]:
        if not self._shuffle:
            return self.users
        order = list(self.users)
        self._order_rng.shuffle(order)  # type: ignore[arg-type]
        return order

    def run(self) -> DistributedOutcome:
        # ---- handshake (Alg. 2 lines 1-4, Alg. 1 lines 1-7)
        with trace("distributed.handshake", users=self.game.num_users):
            self.platform.send_recommendations()
            for agent in self._service_order():
                agent.process_inbox()  # pick + report initial routes
            _requests, reports = self.platform.process_inbox()
            self.platform.apply_reports(reports)
            self.platform.broadcast_counts(slot=0)
            for agent in self._service_order():
                agent.process_inbox()  # absorb initial counts

        history: list[np.ndarray] = []
        if self.record_history:
            history.append(self._profits_snapshot())

        # ---- decision slots (Alg. 2 lines 5-12, Alg. 1 lines 8-18)
        slot = 0
        converged = False
        while slot < self.max_slots:
            slot += 1
            with trace("distributed.slot"):
                with trace("distributed.requests"):
                    for agent in self._service_order():
                        agent.begin_slot(slot)
                    requests, _ = self.platform.process_inbox()
                if not requests:
                    self.platform.terminate(slot)
                    for agent in self._service_order():
                        agent.process_inbox()
                    converged = True
                    slot -= 1  # the empty slot only carries the termination
                    break
                with trace("distributed.grant"):
                    self.platform.grant(slot, requests)
                    for agent in self._service_order():
                        agent.process_inbox()  # granted agents switch + report
                with trace("distributed.broadcast"):
                    _, reports = self.platform.process_inbox()
                    self.platform.apply_reports(reports)
                    self.platform.broadcast_counts(slot)
                    for agent in self._service_order():
                        agent.process_inbox()
            if self.validate_local_views:
                self._check_local_views()
            if self.record_history:
                history.append(self._profits_snapshot())

        profile = StrategyProfile(
            self.game, [self.platform.decisions[i] for i in self.game.users]
        )
        if _OBS.enabled:
            _obs_counter("distributed.runs_total", scheduler=self.scheduler).inc()
            _obs_counter("distributed.slots_total").inc(slot)
            _obs_counter("distributed.grants_total").inc(
                sum(self.platform.granted_per_slot)
            )
            _obs_gauge("bus.mailbox_high_water").max_of(
                self.bus.mailbox_high_water
            )
            _obs_event(
                "distributed.run_done",
                scheduler=self.scheduler,
                slots=slot,
                converged=converged,
                messages=self.bus.total_sent,
                dropped=self.bus.total_dropped,
            )
        return DistributedOutcome(
            profile=profile,
            decision_slots=slot,
            converged=converged,
            message_traffic=self.bus.traffic_summary(),
            total_messages=self.bus.total_sent,
            granted_per_slot=list(self.platform.granted_per_slot),
            profit_history=np.vstack(history) if history else None,
            dropped_messages=self.bus.total_dropped,
            dropped_by_type=self.bus.drop_summary(),
            mailbox_high_water=self.bus.mailbox_high_water,
        )

    # ------------------------------------------------------------ validation
    def _profits_snapshot(self) -> np.ndarray:
        """Ground-truth per-user profits of the platform's decision view."""
        profile = StrategyProfile(
            self.game,
            [self.platform.decisions[i] for i in self.game.users],
        )
        return all_profits(profile)

    def _check_local_views(self) -> None:
        """Assert every agent's local profit equals the global computation."""
        truth = self._profits_snapshot()
        for agent in self._service_order():
            local = agent.profit()
            if abs(local - truth[agent.user_id]) > 1e-9:
                raise AssertionError(
                    f"user {agent.user_id}: local profit {local} != "
                    f"global {truth[agent.user_id]}"
                )
