"""Typed protocol messages exchanged between user agents and the platform.

The protocol follows Algorithms 1 and 2 line by line:

==========================  =======================================  =========
Message                     Paper step                               Direction
==========================  =======================================  =========
RouteRecommendation         Alg. 2 line 1 / Alg. 1 line 2            P -> U
DecisionReport(initial)     Alg. 1 line 4 / Alg. 2 line 2            U -> P
RouteAnnotation             Alg. 2 line 4 / Alg. 1 line 7            P -> U
TaskCountUpdate             Alg. 2 lines 4, 10 / Alg. 1 lines 5, 9   P -> U
UpdateRequest               Alg. 1 line 12 / Alg. 2 line 6           U -> P
UpdateGrant                 Alg. 2 line 9 / Alg. 1 line 13           P -> U
DecisionReport              Alg. 1 line 15 / Alg. 2 line 10          U -> P
Termination                 Alg. 2 line 12 / Alg. 1 line 18          P -> U
==========================  =======================================  =========

Task counts are sent *only for the tasks covered by the recipient's own
recommended routes* — the platform never shares other users' identities or
full strategy information (the privacy point of Section 1).

Robustness extension (not in the paper; ``docs/robustness.md``): the
control-plane messages carry optional reliability metadata so the hardened
protocol survives loss, duplication, reordering, and agent crashes:

- ``msg_id`` — sender-scoped monotone id used for ack/retry and receiver
  dedup.  ``-1`` (the default) marks a fire-and-forget message; every
  paper-faithful code path leaves it untouched.
- ``DecisionReport.seq`` — per-user monotone report number; the platform
  ignores duplicates and stale reorders.  ``-1`` means *unsequenced*
  (always applied), preserving the paper's semantics for hand-built
  streams.
- ``Ack`` / ``RejoinRequest`` / ``StateSnapshot`` — new message types for
  the retry channel and crashed-agent rejoin (the platform snapshot
  carries everything a restarted phone needs to re-sync, including the
  last report sequence number it had accepted from that user).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Message:
    """Base class: every message carries its sender."""

    sender: str


@dataclass(frozen=True, slots=True)
class RouteRecommendation(Message):
    """P -> U: the recommended route set ``R_i``.

    ``routes[j]`` is the tuple of task ids covered by route ``j``;
    ``task_params`` maps each of those task ids to its published reward
    parameters ``(a_k, mu_k)`` (task adverts are public in MCS).
    """

    routes: tuple[tuple[int, ...], ...]
    task_params: dict[int, tuple[float, float]] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class RouteAnnotation(Message):
    """P -> U: per-route detour cost ``d(r)`` and congestion cost ``b(r)``."""

    detour_costs: tuple[float, ...]
    congestion_costs: tuple[float, ...]


@dataclass(frozen=True, slots=True)
class TaskCountUpdate(Message):
    """P -> U: participant counts for the tasks the user's routes cover.

    Counts are absolute, so duplicates are naturally idempotent; the
    ``slot`` doubles as a version — receivers discard updates older than
    the newest one they applied.  ``msg_id >= 0`` only during the hardened
    protocol's reliable pre-termination sync round.
    """

    slot: int
    counts: dict[int, int] = field(default_factory=dict)
    msg_id: int = -1


@dataclass(frozen=True, slots=True)
class UpdateRequest(Message):
    """U -> P: request to update; carries ``tau_i`` and ``B_i`` for PUU."""

    slot: int
    user: int
    tau: float
    touched_tasks: frozenset[int]
    msg_id: int = -1


@dataclass(frozen=True, slots=True)
class UpdateGrant(Message):
    """P -> U: the user won this slot's update opportunity.

    Under the hardened protocol the grant also carries the platform's
    authoritative ``counts`` for the user's visible tasks (grant-time
    refresh: the user revalidates its move on fresh counts before
    switching) and the grant's ``lease_slots`` so late deliveries are
    declined deterministically.
    """

    slot: int
    counts: dict[int, int] | None = None
    lease_slots: int = 0
    msg_id: int = -1


@dataclass(frozen=True, slots=True)
class DecisionReport(Message):
    """U -> P: the user's (initial or updated) route decision.

    ``seq`` is the user's monotone report counter (``-1`` = unsequenced,
    always applied); the platform drops duplicates and stale reorders.
    """

    slot: int
    user: int
    route: int
    seq: int = -1
    msg_id: int = -1


@dataclass(frozen=True, slots=True)
class Termination(Message):
    """P -> U: equilibrium reached; stop updating."""

    slot: int


@dataclass(frozen=True, slots=True)
class Ack(Message):
    """Receiver -> sender: confirms delivery of control message ``msg_id``.

    Robustness extension: stops the sender's retry timer.  Receivers
    re-ack duplicates (the previous ack may itself have been lost) but
    process the payload only once.
    """

    msg_id: int


@dataclass(frozen=True, slots=True)
class RejoinRequest(Message):
    """U -> P: a restarted (previously crashed) agent asks to re-sync.

    Robustness extension: the agent lost its local state and must not
    trust anything it remembers; the platform answers with a
    :class:`StateSnapshot`.
    """

    user: int


@dataclass(frozen=True, slots=True)
class StateSnapshot(Message):
    """P -> U: full re-sync payload for a rejoining agent.

    Robustness extension: recommendation + annotation + authoritative
    visible counts + the platform's decision on record for this user +
    the last report ``seq`` the platform accepted (the agent resumes its
    counter from there so post-rejoin reports are not mistaken for stale
    duplicates).
    """

    user: int
    slot: int
    routes: tuple[tuple[int, ...], ...]
    task_params: dict[int, tuple[float, float]]
    detour_costs: tuple[float, ...]
    congestion_costs: tuple[float, ...]
    counts: dict[int, int]
    decision: int
    last_seq: int
