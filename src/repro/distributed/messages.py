"""Typed protocol messages exchanged between user agents and the platform.

The protocol follows Algorithms 1 and 2 line by line:

==========================  =======================================  =========
Message                     Paper step                               Direction
==========================  =======================================  =========
RouteRecommendation         Alg. 2 line 1 / Alg. 1 line 2            P -> U
DecisionReport(initial)     Alg. 1 line 4 / Alg. 2 line 2            U -> P
RouteAnnotation             Alg. 2 line 4 / Alg. 1 line 7            P -> U
TaskCountUpdate             Alg. 2 lines 4, 10 / Alg. 1 lines 5, 9   P -> U
UpdateRequest               Alg. 1 line 12 / Alg. 2 line 6           U -> P
UpdateGrant                 Alg. 2 line 9 / Alg. 1 line 13           P -> U
DecisionReport              Alg. 1 line 15 / Alg. 2 line 10          U -> P
Termination                 Alg. 2 line 12 / Alg. 1 line 18          P -> U
==========================  =======================================  =========

Task counts are sent *only for the tasks covered by the recipient's own
recommended routes* — the platform never shares other users' identities or
full strategy information (the privacy point of Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Message:
    """Base class: every message carries its sender."""

    sender: str


@dataclass(frozen=True, slots=True)
class RouteRecommendation(Message):
    """P -> U: the recommended route set ``R_i``.

    ``routes[j]`` is the tuple of task ids covered by route ``j``;
    ``task_params`` maps each of those task ids to its published reward
    parameters ``(a_k, mu_k)`` (task adverts are public in MCS).
    """

    routes: tuple[tuple[int, ...], ...]
    task_params: dict[int, tuple[float, float]] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class RouteAnnotation(Message):
    """P -> U: per-route detour cost ``d(r)`` and congestion cost ``b(r)``."""

    detour_costs: tuple[float, ...]
    congestion_costs: tuple[float, ...]


@dataclass(frozen=True, slots=True)
class TaskCountUpdate(Message):
    """P -> U: participant counts for the tasks the user's routes cover."""

    slot: int
    counts: dict[int, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class UpdateRequest(Message):
    """U -> P: request to update; carries ``tau_i`` and ``B_i`` for PUU."""

    slot: int
    user: int
    tau: float
    touched_tasks: frozenset[int]


@dataclass(frozen=True, slots=True)
class UpdateGrant(Message):
    """P -> U: the user won this slot's update opportunity."""

    slot: int


@dataclass(frozen=True, slots=True)
class DecisionReport(Message):
    """U -> P: the user's (initial or updated) route decision."""

    slot: int
    user: int
    route: int


@dataclass(frozen=True, slots=True)
class Termination(Message):
    """P -> U: equilibrium reached; stop updating."""

    slot: int
