"""Reliability layer for the hardened protocol: acks, retries, leases.

Robustness extension (not in the paper; ``docs/robustness.md``).  Control
messages (``UpdateRequest`` / ``UpdateGrant`` / ``DecisionReport`` and the
pre-termination count sync) are sent through a :class:`ReliableChannel`:
the sender stamps a monotone ``msg_id``, the receiver acks it (re-acking
duplicates, processing payloads once), and unacked messages are re-posted
with capped exponential backoff until ``max_retries`` is exhausted.
Retried copies go back through fault injection — a retry can be lost too.

:class:`ResilienceConfig` also carries the platform's grant *lease*: a
granted user that has not reported within ``lease_slots`` decision slots
is revoked and its touched tasks are freed, so a crashed or silent
grantee can never stall the run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.distributed.bus import MessageBus
from repro.distributed.messages import Message
from repro.obs import counter as _obs_counter
from repro.obs.runtime import RUNTIME as _OBS
from repro.utils.validation import require


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the hardened protocol (defaults match the CI chaos matrix).

    ``lease_slots`` must exceed the fault plan's reorder window or grants
    delivered near the lease boundary are revoked before the (in-flight)
    report lands; :meth:`for_plan` picks a safe value automatically.
    """

    lease_slots: int = 4
    max_retries: int = 6
    backoff_base: int = 1
    backoff_cap: int = 8
    stall_window: int = 25

    def __post_init__(self) -> None:
        require(self.lease_slots >= 1, "lease_slots must be >= 1")
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require(self.backoff_base >= 1, "backoff_base must be >= 1")
        require(self.backoff_cap >= self.backoff_base,
                "backoff_cap must be >= backoff_base")
        require(self.stall_window >= 1, "stall_window must be >= 1")

    @classmethod
    def for_plan(cls, plan, **overrides) -> "ResilienceConfig":
        """Config with the lease sized to the plan's reorder window."""
        cfg = cls(**overrides)
        floor = plan.max_delay_slots + 2
        if cfg.lease_slots < floor:
            cfg = replace(cfg, lease_slots=floor)
        return cfg


@dataclass
class _Outstanding:
    recipient: str
    message: Message
    sent_slot: int
    next_retry: int
    attempt: int = 0


class ReliableChannel:
    """At-least-once sender: msg-id stamping, ack tracking, backed-off retry."""

    def __init__(self, bus: MessageBus, owner: str, config: ResilienceConfig) -> None:
        self.bus = bus
        self.owner = owner
        self.config = config
        self._next_id = 0
        self._unacked: dict[int, _Outstanding] = {}
        self.retries_sent = 0
        self.exhausted = 0

    def next_id(self) -> int:
        """Reserve the next msg_id (the caller builds the message with it)."""
        mid = self._next_id
        self._next_id += 1
        return mid

    def send(self, recipient: str, message: Message, slot: int) -> None:
        """Post ``message`` and track it until acked or retries exhaust.

        ``message.msg_id`` must have been reserved via :meth:`next_id`.
        """
        mid = message.msg_id  # type: ignore[attr-defined]
        require(mid >= 0, "reliable sends need a reserved msg_id")
        self._unacked[mid] = _Outstanding(
            recipient=recipient,
            message=message,
            sent_slot=slot,
            next_retry=slot + self.config.backoff_base,
        )
        self.bus.post(recipient, message)

    def on_ack(self, msg_id: int) -> None:
        """Delivery confirmed: stop retrying (idempotent)."""
        self._unacked.pop(msg_id, None)

    def cancel(self, msg_id: int) -> None:
        """Stop retrying without an ack (e.g. the platform revoked a lease)."""
        self._unacked.pop(msg_id, None)

    def tick(self, slot: int) -> list[Message]:
        """Re-post every unacked message whose backoff timer expired.

        Returns the messages *abandoned* this tick — entries that
        exhausted ``max_retries`` (also counted in ``exhausted``).  The
        caller decides whether abandonment is benign (a lease or the
        slot-level request refresh covers it) or demands a resync (a
        decision report is the only record of a move).
        """
        abandoned: list[Message] = []
        for mid in list(self._unacked):
            entry = self._unacked.get(mid)
            if entry is None or entry.next_retry > slot:
                continue
            if entry.attempt >= self.config.max_retries:
                del self._unacked[mid]
                self.exhausted += 1
                abandoned.append(entry.message)
                if _OBS.enabled:
                    _obs_counter(
                        "channel.retry_exhausted_total", owner=self.owner
                    ).inc()
                continue
            entry.attempt += 1
            backoff = min(
                self.config.backoff_base * (2 ** entry.attempt),
                self.config.backoff_cap,
            )
            entry.next_retry = slot + backoff
            self.retries_sent += 1
            self.bus.repost(entry.recipient, entry.message)
        return abandoned

    def pending(self) -> int:
        """Messages still awaiting an ack."""
        return len(self._unacked)

    def pending_for(self, recipient: str) -> list[int]:
        """Unacked msg_ids addressed to ``recipient``."""
        return [
            mid for mid, e in self._unacked.items() if e.recipient == recipient
        ]
