"""User-side agent: Algorithm 1, driven purely by received messages.

The agent's entire world is: its preference weights, the recommended routes
with their covered-task ids and published reward parameters, the per-route
costs the platform annotated, and the latest participant counts for *its
own* tasks.  It never sees other users, the road network, or the full task
set — the privacy property motivating the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrays import segment_sums
from repro.core.weights import UserWeights
from repro.distributed.bus import MessageBus
from repro.distributed.messages import (
    DecisionReport,
    Message,
    RouteAnnotation,
    RouteRecommendation,
    TaskCountUpdate,
    Termination,
    UpdateGrant,
    UpdateRequest,
)

PLATFORM = "platform"

# Tolerance mirroring repro.core.responses.IMPROVEMENT_EPS so agent-side
# decisions agree bit-for-bit with the in-memory engines.
_EPS = 1e-9


class UserAgent:
    """One mobile user's smartphone app."""

    def __init__(
        self,
        user_id: int,
        weights: UserWeights,
        bus: MessageBus,
        rng: np.random.Generator,
    ) -> None:
        self.user_id = user_id
        self.name = f"user-{user_id}"
        self.weights = weights
        self.bus = bus
        self.rng = rng
        # Populated by protocol messages:
        self.routes: tuple[tuple[int, ...], ...] | None = None
        self.task_params: dict[int, tuple[float, float]] = {}
        self.detour_costs: tuple[float, ...] | None = None
        self.congestion_costs: tuple[float, ...] | None = None
        self.known_counts: dict[int, int] = {}
        self.current_route: int | None = None
        self.terminated = False
        # The best route set Delta_i(t) computed for the current slot.
        self._pending_best: list[int] = []
        # Compiled local view (mini flat-CSR over this agent's own routes),
        # rebuilt lazily whenever recommendation/annotation state changes.
        self._local_ready = False

    # ----------------------------------------------------------------- inbox
    def process_inbox(self) -> None:
        """Handle every queued message (Algorithm 1 lines 2-7, 13-17)."""
        for msg in self.bus.drain(self.name):
            self._handle(msg)

    def _handle(self, msg: Message) -> None:
        if isinstance(msg, RouteRecommendation):
            self.routes = msg.routes
            self.task_params = dict(msg.task_params)
            self._local_ready = False
            # Alg. 1 line 3: random initial route; line 4: report it.
            self.current_route = int(self.rng.integers(0, len(self.routes)))
            self.bus.post(
                PLATFORM,
                DecisionReport(self.name, slot=0, user=self.user_id,
                               route=self.current_route),
            )
        elif isinstance(msg, RouteAnnotation):
            self.detour_costs = msg.detour_costs
            self.congestion_costs = msg.congestion_costs
            self._local_ready = False
        elif isinstance(msg, TaskCountUpdate):
            self.known_counts.update(msg.counts)
            if self._local_ready and msg.counts:
                self._scatter_counts(
                    np.fromiter(
                        msg.counts.keys(), dtype=np.intp, count=len(msg.counts)
                    ),
                    np.fromiter(
                        msg.counts.values(), dtype=np.intp, count=len(msg.counts)
                    ),
                )
        elif isinstance(msg, UpdateGrant):
            self._apply_grant(msg.slot)
        elif isinstance(msg, Termination):
            self.terminated = True
        else:  # pragma: no cover - protocol misuse guard
            raise TypeError(f"{self.name}: unexpected message {type(msg).__name__}")

    # ------------------------------------------------------------ slot logic
    def begin_slot(self, slot: int) -> None:
        """Alg. 1 lines 9-12: recompute Delta_i(t); request update if useful."""
        if self.terminated or self.routes is None:
            return
        self._pending_best = self._best_route_set()
        if not self._pending_best:
            return
        best = self._pending_best[0]
        profits = self._candidate_profits()
        gain = float(profits[best] - profits[self.current_route])
        touched = frozenset(self.routes[self.current_route]) | frozenset(
            self.routes[best]
        )
        self.bus.post(
            PLATFORM,
            UpdateRequest(
                self.name,
                slot=slot,
                user=self.user_id,
                tau=gain / self.weights.alpha,
                touched_tasks=touched,
            ),
        )

    def _apply_grant(self, slot: int) -> None:
        """Alg. 1 lines 13-15: granted — pick from Delta_i(t) and report."""
        if not self._pending_best:  # defensive: grant without request
            return
        choice = self._pending_best[
            int(self.rng.integers(0, len(self._pending_best)))
        ]
        self.current_route = int(choice)
        self.bus.post(
            PLATFORM,
            DecisionReport(self.name, slot=slot, user=self.user_id,
                           route=self.current_route),
        )

    # -------------------------------------------------------- local profits
    def profit(self) -> float:
        """The agent's own current profit from its local view."""
        profits = self._candidate_profits()
        assert self.current_route is not None
        return float(profits[self.current_route])

    def _ensure_local(self) -> None:
        """Compile the agent's routes into a mini flat-CSR.

        ``_uniq_tasks`` is the sorted unique task-id universe of this
        agent's routes; ``_counts_vec`` mirrors ``known_counts`` on it
        (0 where no count was ever delivered, matching the dict default);
        ``_flat_pos`` maps each flat route element into that universe so a
        candidate sweep is one gather + one segmented sum.
        """
        if self._local_ready:
            return
        assert self.routes is not None
        assert self.detour_costs is not None and self.congestion_costs is not None
        lens = np.asarray([len(r) for r in self.routes], dtype=np.intp)
        indptr = np.concatenate(([0], np.cumsum(lens))).astype(np.intp)
        flat = (
            np.concatenate(
                [np.asarray(r, dtype=np.intp) for r in self.routes]
            )
            if indptr[-1]
            else np.zeros(0, dtype=np.intp)
        )
        uniq = np.unique(flat)
        self._uniq_tasks = uniq
        self._flat_pos = np.searchsorted(uniq, flat)
        self._indptr = indptr
        self._lens = lens
        self._a = np.asarray([self.task_params[int(k)][0] for k in flat])
        self._mu = np.asarray([self.task_params[int(k)][1] for k in flat])
        # Same per-route cost scaling the scalar loop applied element-wise;
        # kept as two separate vectors so the subtraction order (and hence
        # rounding) of the scalar expression is preserved exactly.
        self._det = self.weights.beta * np.asarray(self.detour_costs)
        self._cong = self.weights.gamma * np.asarray(self.congestion_costs)
        self._counts_vec = np.zeros(uniq.size, dtype=np.intp)
        self._local_ready = True
        if self.known_counts:
            self._scatter_counts(
                np.fromiter(
                    self.known_counts.keys(),
                    dtype=np.intp,
                    count=len(self.known_counts),
                ),
                np.fromiter(
                    self.known_counts.values(),
                    dtype=np.intp,
                    count=len(self.known_counts),
                ),
            )

    def _scatter_counts(self, tasks: np.ndarray, values: np.ndarray) -> None:
        """Write delivered counts into ``_counts_vec``, dropping ids outside
        the agent's own task universe (they cannot affect its profits)."""
        uniq = self._uniq_tasks
        if uniq.size == 0:
            return
        pos = np.searchsorted(uniq, tasks)
        clamped = np.minimum(pos, uniq.size - 1)
        ok = uniq[clamped] == tasks
        self._counts_vec[pos[ok]] = values[ok]

    def _candidate_profits(self) -> np.ndarray:
        """Profit of each route given the latest known counts.

        The platform's counts include this agent's current participation,
        so the agent first removes itself, then evaluates every route with
        itself added — identical semantics to
        :func:`repro.core.profit.candidate_profits`, computed as one flat
        gather + ``(a + mu*log(n))/n`` + segmented sum over the compiled
        local CSR instead of a per-route Python loop.
        """
        assert self.routes is not None and self.current_route is not None
        assert self.detour_costs is not None and self.congestion_costs is not None
        self._ensure_local()
        counts = self._counts_vec.copy()
        cur = self.current_route
        counts[self._flat_pos[self._indptr[cur] : self._indptr[cur + 1]]] -= 1
        # max(..., 0): under lossy delivery the stale count may not include
        # this agent itself; never evaluate below n = 1.
        n = (np.maximum(counts[self._flat_pos], 0) + 1).astype(float)
        terms = (self._a + self._mu * np.log(n)) / n
        rewards = segment_sums(terms, self._indptr[:-1], self._lens)
        return self.weights.alpha * rewards - self._det - self._cong

    def _best_route_set(self) -> list[int]:
        """Delta_i(t): profit-maximizing routes strictly better than current."""
        profits = self._candidate_profits()
        current = profits[self.current_route]
        best = float(profits.max())
        if best <= current + _EPS:
            return []
        return [int(j) for j in np.flatnonzero(profits >= best - _EPS)]
