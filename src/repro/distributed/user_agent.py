"""User-side agent: Algorithm 1, driven purely by received messages.

The agent's entire world is: its preference weights, the recommended routes
with their covered-task ids and published reward parameters, the per-route
costs the platform annotated, and the latest participant counts for *its
own* tasks.  It never sees other users, the road network, or the full task
set — the privacy property motivating the paper.
"""

from __future__ import annotations

import math
import numpy as np

from repro.core.weights import UserWeights
from repro.distributed.bus import MessageBus
from repro.distributed.messages import (
    DecisionReport,
    Message,
    RouteAnnotation,
    RouteRecommendation,
    TaskCountUpdate,
    Termination,
    UpdateGrant,
    UpdateRequest,
)

PLATFORM = "platform"

# Tolerance mirroring repro.core.responses.IMPROVEMENT_EPS so agent-side
# decisions agree bit-for-bit with the in-memory engines.
_EPS = 1e-9


class UserAgent:
    """One mobile user's smartphone app."""

    def __init__(
        self,
        user_id: int,
        weights: UserWeights,
        bus: MessageBus,
        rng: np.random.Generator,
    ) -> None:
        self.user_id = user_id
        self.name = f"user-{user_id}"
        self.weights = weights
        self.bus = bus
        self.rng = rng
        # Populated by protocol messages:
        self.routes: tuple[tuple[int, ...], ...] | None = None
        self.task_params: dict[int, tuple[float, float]] = {}
        self.detour_costs: tuple[float, ...] | None = None
        self.congestion_costs: tuple[float, ...] | None = None
        self.known_counts: dict[int, int] = {}
        self.current_route: int | None = None
        self.terminated = False
        # The best route set Delta_i(t) computed for the current slot.
        self._pending_best: list[int] = []

    # ----------------------------------------------------------------- inbox
    def process_inbox(self) -> None:
        """Handle every queued message (Algorithm 1 lines 2-7, 13-17)."""
        for msg in self.bus.drain(self.name):
            self._handle(msg)

    def _handle(self, msg: Message) -> None:
        if isinstance(msg, RouteRecommendation):
            self.routes = msg.routes
            self.task_params = dict(msg.task_params)
            # Alg. 1 line 3: random initial route; line 4: report it.
            self.current_route = int(self.rng.integers(0, len(self.routes)))
            self.bus.post(
                PLATFORM,
                DecisionReport(self.name, slot=0, user=self.user_id,
                               route=self.current_route),
            )
        elif isinstance(msg, RouteAnnotation):
            self.detour_costs = msg.detour_costs
            self.congestion_costs = msg.congestion_costs
        elif isinstance(msg, TaskCountUpdate):
            self.known_counts.update(msg.counts)
        elif isinstance(msg, UpdateGrant):
            self._apply_grant(msg.slot)
        elif isinstance(msg, Termination):
            self.terminated = True
        else:  # pragma: no cover - protocol misuse guard
            raise TypeError(f"{self.name}: unexpected message {type(msg).__name__}")

    # ------------------------------------------------------------ slot logic
    def begin_slot(self, slot: int) -> None:
        """Alg. 1 lines 9-12: recompute Delta_i(t); request update if useful."""
        if self.terminated or self.routes is None:
            return
        self._pending_best = self._best_route_set()
        if not self._pending_best:
            return
        best = self._pending_best[0]
        profits = self._candidate_profits()
        gain = float(profits[best] - profits[self.current_route])
        touched = frozenset(self.routes[self.current_route]) | frozenset(
            self.routes[best]
        )
        self.bus.post(
            PLATFORM,
            UpdateRequest(
                self.name,
                slot=slot,
                user=self.user_id,
                tau=gain / self.weights.alpha,
                touched_tasks=touched,
            ),
        )

    def _apply_grant(self, slot: int) -> None:
        """Alg. 1 lines 13-15: granted — pick from Delta_i(t) and report."""
        if not self._pending_best:  # defensive: grant without request
            return
        choice = self._pending_best[
            int(self.rng.integers(0, len(self._pending_best)))
        ]
        self.current_route = int(choice)
        self.bus.post(
            PLATFORM,
            DecisionReport(self.name, slot=slot, user=self.user_id,
                           route=self.current_route),
        )

    # -------------------------------------------------------- local profits
    def profit(self) -> float:
        """The agent's own current profit from its local view."""
        profits = self._candidate_profits()
        assert self.current_route is not None
        return float(profits[self.current_route])

    def _candidate_profits(self) -> np.ndarray:
        """Profit of each route given the latest known counts.

        The platform's counts include this agent's current participation,
        so the agent first removes itself, then evaluates every route with
        itself added — identical semantics to
        :func:`repro.core.profit.candidate_profits`.
        """
        assert self.routes is not None and self.current_route is not None
        assert self.detour_costs is not None and self.congestion_costs is not None
        counts = dict(self.known_counts)
        for k in self.routes[self.current_route]:
            counts[k] = counts.get(k, 1) - 1
        out = np.empty(len(self.routes))
        for j, task_ids in enumerate(self.routes):
            reward = 0.0
            for k in task_ids:
                a, mu = self.task_params[k]
                # max(..., 0): under lossy delivery the stale count may not
                # include this agent itself; never evaluate below n = 1.
                n = max(counts.get(k, 0), 0) + 1
                reward += (a + mu * math.log(n)) / n
            out[j] = (
                self.weights.alpha * reward
                - self.weights.beta * self.detour_costs[j]
                - self.weights.gamma * self.congestion_costs[j]
            )
        return out

    def _best_route_set(self) -> list[int]:
        """Delta_i(t): profit-maximizing routes strictly better than current."""
        profits = self._candidate_profits()
        current = profits[self.current_route]
        best = float(profits.max())
        if best <= current + _EPS:
            return []
        return [int(j) for j in np.flatnonzero(profits >= best - _EPS)]
