"""User-side agent: Algorithm 1, driven purely by received messages.

The agent's entire world is: its preference weights, the recommended routes
with their covered-task ids and published reward parameters, the per-route
costs the platform annotated, and the latest participant counts for *its
own* tasks.  It never sees other users, the road network, or the full task
set — the privacy property motivating the paper.

Robustness extension (``docs/robustness.md``): decision reports always
carry a monotone ``seq`` (the platform applies duplicated/reordered
streams idempotently) and count updates older than the newest applied one
are discarded.  With a :class:`~repro.distributed.resilience
.ResilienceConfig` attached the agent additionally acks and dedups
control messages, retries its requests/reports through a
:class:`~repro.distributed.resilience.ReliableChannel`, *revalidates*
every grant against the authoritative counts it carries (declining when
the move is no longer profitable, would leave the requested ``B_i``, or
the grant arrived past its lease), and can crash — wiping all local state
— and rejoin by re-syncing from the platform's
:class:`~repro.distributed.messages.StateSnapshot` instead of trusting
anything it remembers.
"""

from __future__ import annotations

import numpy as np

from repro.core.arrays import segment_sums
from repro.core.weights import UserWeights
from repro.distributed.bus import MessageBus
from repro.distributed.resilience import ReliableChannel, ResilienceConfig
from repro.distributed.messages import (
    Ack,
    DecisionReport,
    Message,
    RejoinRequest,
    RouteAnnotation,
    RouteRecommendation,
    StateSnapshot,
    TaskCountUpdate,
    Termination,
    UpdateGrant,
    UpdateRequest,
)

PLATFORM = "platform"

# Tolerance mirroring repro.core.responses.IMPROVEMENT_EPS so agent-side
# decisions agree bit-for-bit with the in-memory engines.
_EPS = 1e-9


class UserAgent:
    """One mobile user's smartphone app."""

    def __init__(
        self,
        user_id: int,
        weights: UserWeights,
        bus: MessageBus,
        rng: np.random.Generator,
        *,
        resilience: ResilienceConfig | None = None,
    ) -> None:
        self.user_id = user_id
        self.name = f"user-{user_id}"
        self.weights = weights
        self.bus = bus
        self.rng = rng
        self.resilience = resilience
        self._channel = (
            ReliableChannel(bus, self.name, resilience)
            if resilience is not None
            else None
        )
        # Lifecycle (crash/restart — robustness extension).
        self.crashed = False
        self.rejoined_at: int | None = None
        self._awaiting_snapshot = False
        self._reset_protocol_state()

    def _reset_protocol_state(self) -> None:
        """Everything a crash wipes (kept in one place so restart == init)."""
        self.routes: tuple[tuple[int, ...], ...] | None = None
        self.task_params: dict[int, tuple[float, float]] = {}
        self.detour_costs: tuple[float, ...] | None = None
        self.congestion_costs: tuple[float, ...] | None = None
        self.known_counts: dict[int, int] = {}
        self.current_route: int | None = None
        self.terminated = False
        # The best route set Delta_i(t) computed for the current slot.
        self._pending_best: list[int] = []
        # Compiled local view (mini flat-CSR over this agent's own routes),
        # rebuilt lazily whenever recommendation/annotation state changes.
        self._local_ready = False
        # Report sequencing + staleness guards (always on).
        self._seq = 0
        self._last_count_slot = -1
        # Hardened-protocol scratch state.  ``_request_allowed`` is wider
        # than the wire ``B_i``: the legacy draw may land on any profit-tie
        # route of Delta_i(t), not just the one ``B_i`` advertised, so
        # grant revalidation checks against the union of all tie routes —
        # matching legacy acceptance exactly in the zero-fault case.
        self._slot = 0
        self._request_allowed: frozenset[int] | None = None
        self._seen_ids: set[tuple[str, int]] = set()
        self.declines = 0

    # ----------------------------------------------------------------- inbox
    def process_inbox(self) -> None:
        """Handle every queued message (Algorithm 1 lines 2-7, 13-17)."""
        if self.crashed:  # a dead phone processes nothing
            return
        for msg in self.bus.drain(self.name):
            self._handle(msg)

    def _handle(self, msg: Message) -> None:
        if isinstance(msg, Ack):
            if self._channel is not None:
                self._channel.on_ack(msg.msg_id)
            return
        if isinstance(msg, (UpdateGrant, TaskCountUpdate)):
            mid = msg.msg_id
            if mid >= 0:
                self.bus.post(msg.sender, Ack(self.name, msg_id=mid))
                key = (msg.sender, mid)
                if key in self._seen_ids:
                    return  # duplicate: re-acked above, payload already done
                self._seen_ids.add(key)
        if isinstance(msg, RouteRecommendation):
            self.routes = msg.routes
            self.task_params = dict(msg.task_params)
            self._local_ready = False
            # Alg. 1 line 3: random initial route; line 4: report it.
            self.current_route = int(self.rng.integers(0, len(self.routes)))
            self._post_report(slot=0, handshake=True)
        elif isinstance(msg, RouteAnnotation):
            self.detour_costs = msg.detour_costs
            self.congestion_costs = msg.congestion_costs
            self._local_ready = False
        elif isinstance(msg, TaskCountUpdate):
            self._absorb_counts(msg.slot, msg.counts)
        elif isinstance(msg, UpdateGrant):
            self._apply_grant(msg)
        elif isinstance(msg, StateSnapshot):
            self._apply_snapshot(msg)
        elif isinstance(msg, Termination):
            self.terminated = True
        else:  # pragma: no cover - protocol misuse guard
            raise TypeError(f"{self.name}: unexpected message {type(msg).__name__}")

    def _absorb_counts(self, slot: int, counts: dict[int, int]) -> None:
        """Apply a count update unless it is older than one already applied.

        Counts are absolute, so duplicates are idempotent; the slot guard
        makes reordered streams converge to the newest view.
        """
        if slot < self._last_count_slot:
            return
        self._last_count_slot = slot
        self.known_counts.update(counts)
        if self._local_ready and counts:
            self._scatter_counts(
                np.fromiter(counts.keys(), dtype=np.intp, count=len(counts)),
                np.fromiter(counts.values(), dtype=np.intp, count=len(counts)),
            )

    def _post_report(self, slot: int, *, handshake: bool = False) -> None:
        """Report the current decision with the next sequence number.

        Handshake reports ride the session-setup transport (never
        injected); steady-state reports go through the retry channel when
        the hardened protocol is on.
        """
        assert self.current_route is not None
        seq = self._seq
        self._seq += 1
        if self._channel is not None and not handshake:
            mid = self._channel.next_id()
            self._channel.send(
                PLATFORM,
                DecisionReport(
                    self.name, slot=slot, user=self.user_id,
                    route=self.current_route, seq=seq, msg_id=mid,
                ),
                slot,
            )
        else:
            report = DecisionReport(self.name, slot=slot, user=self.user_id,
                                    route=self.current_route, seq=seq)
            if handshake:
                self.bus.post_reliable(PLATFORM, report)
            else:
                self.bus.post(PLATFORM, report)

    # ------------------------------------------------------------ slot logic
    def begin_slot(self, slot: int) -> None:
        """Alg. 1 lines 9-12: recompute Delta_i(t); request update if useful."""
        self._slot = slot
        if (
            self.terminated
            or self.crashed
            or self.routes is None
            or self._awaiting_snapshot
        ):
            return
        self._pending_best = self._best_route_set()
        if not self._pending_best:
            return
        best = self._pending_best[0]
        profits = self._candidate_profits()
        gain = float(profits[best] - profits[self.current_route])
        touched = frozenset(self.routes[self.current_route]) | frozenset(
            self.routes[best]
        )
        self._request_allowed = frozenset(self.routes[self.current_route]).union(
            *(frozenset(self.routes[j]) for j in self._pending_best)
        )
        if self._channel is not None:
            mid = self._channel.next_id()
            self._channel.send(
                PLATFORM,
                UpdateRequest(
                    self.name, slot=slot, user=self.user_id,
                    tau=gain / self.weights.alpha, touched_tasks=touched,
                    msg_id=mid,
                ),
                slot,
            )
        else:
            self.bus.post(
                PLATFORM,
                UpdateRequest(
                    self.name,
                    slot=slot,
                    user=self.user_id,
                    tau=gain / self.weights.alpha,
                    touched_tasks=touched,
                ),
            )

    def tick(self, slot: int) -> None:
        """Retry unacked control messages (hardened protocol only).

        An *abandoned* decision report (retries exhausted) means the
        platform may never learn this agent's move — the local view and
        the platform's are now irreconcilable from here.  The agent
        treats it as fatal desync and re-syncs from an authoritative
        snapshot, adopting whatever decision the platform has on record;
        if the improvement still exists it will simply be requested again.
        """
        if self._channel is None or self.crashed:
            return
        abandoned = self._channel.tick(slot)
        if any(isinstance(m, DecisionReport) for m in abandoned):
            self._request_resync()

    def _request_resync(self) -> None:
        """Ask the platform for a snapshot without wiping local state."""
        if self._awaiting_snapshot:
            return
        self._awaiting_snapshot = True
        self.bus.post_reliable(
            PLATFORM, RejoinRequest(self.name, user=self.user_id)
        )

    def _apply_grant(self, msg: UpdateGrant) -> None:
        """Alg. 1 lines 13-15: granted — pick from Delta_i(t) and report.

        Hardened grants are *revalidated*: refresh counts from the grant's
        authoritative payload, recompute the best-response set, and decline
        (report the unchanged route, freeing the platform's lease) when the
        grant is expired, the move no longer improves, or the recomputed
        choice would leave the requested ``B_i`` (which would break PUU's
        disjointness).  Legacy grants keep the paper's exact behavior.
        """
        if self.resilience is None:
            if not self._pending_best:  # defensive: grant without request
                return
            choice = self._pending_best[
                int(self.rng.integers(0, len(self._pending_best)))
            ]
            self.current_route = int(choice)
            self._post_report(msg.slot)
            return
        if (
            self.routes is None
            or self.current_route is None
            or self._awaiting_snapshot
        ):
            return  # not (re-)synced yet: stay silent, the lease will expire
        if msg.lease_slots > 0 and self._slot >= msg.slot + msg.lease_slots:
            self._decline(msg.slot)  # expired in transit: platform revoked it
            return
        if msg.counts is not None:
            self._absorb_counts(msg.slot, msg.counts)
        best_set = self._best_route_set()
        if not best_set:
            self._decline(msg.slot)  # fresh counts killed the improvement
            return
        choice = int(best_set[int(self.rng.integers(0, len(best_set)))])
        allowed = self._request_allowed
        if allowed is None or not frozenset(self.routes[choice]) <= allowed:
            self._decline(msg.slot)  # revalidated move left the requested set
            return
        self.current_route = choice
        self._post_report(msg.slot)

    def _decline(self, slot: int) -> None:
        """Report the unchanged route so the platform clears the lease."""
        self.declines += 1
        self._post_report(slot)

    # ------------------------------------------------------- crash / restart
    def crash(self) -> None:
        """The phone dies: all local protocol state is lost."""
        self.crashed = True
        self._pending_best = []

    def restart(self) -> None:
        """The phone comes back with a blank slate and asks to re-sync.

        Nothing survives the crash — not the route catalogue, not the
        counts, not the seen-message dedup sets, not the retry buffers.
        The platform's :class:`StateSnapshot` is the only source of truth.
        """
        self.crashed = False
        self._reset_protocol_state()
        if self._channel is not None:
            self._channel = ReliableChannel(
                self.bus, self.name, self.resilience
            )
        self._awaiting_snapshot = True
        self.bus.post_reliable(PLATFORM, RejoinRequest(self.name, user=self.user_id))

    def _apply_snapshot(self, msg: StateSnapshot) -> None:
        """Rebuild every local structure from the platform's snapshot."""
        self.routes = msg.routes
        self.task_params = dict(msg.task_params)
        self.detour_costs = msg.detour_costs
        self.congestion_costs = msg.congestion_costs
        self.known_counts = dict(msg.counts)
        self.current_route = int(msg.decision)
        self._local_ready = False
        self._pending_best = []
        self._request_allowed = None
        # Resume the report sequence where the platform left off, and
        # refuse count updates older than the snapshot — pre-crash
        # stragglers must not resurrect stale state.
        self._seq = msg.last_seq + 1
        self._last_count_slot = msg.slot
        self._awaiting_snapshot = False
        self.rejoined_at = msg.slot

    @property
    def awaiting_snapshot(self) -> bool:
        """True between restart and the snapshot's arrival."""
        return self._awaiting_snapshot

    def channel_pending(self) -> int:
        return 0 if self._channel is None else self._channel.pending()

    # -------------------------------------------------------- local profits
    def profit(self) -> float:
        """The agent's own current profit from its local view."""
        profits = self._candidate_profits()
        assert self.current_route is not None
        return float(profits[self.current_route])

    def _ensure_local(self) -> None:
        """Compile the agent's routes into a mini flat-CSR.

        ``_uniq_tasks`` is the sorted unique task-id universe of this
        agent's routes; ``_counts_vec`` mirrors ``known_counts`` on it
        (0 where no count was ever delivered, matching the dict default);
        ``_flat_pos`` maps each flat route element into that universe so a
        candidate sweep is one gather + one segmented sum.
        """
        if self._local_ready:
            return
        assert self.routes is not None
        assert self.detour_costs is not None and self.congestion_costs is not None
        lens = np.asarray([len(r) for r in self.routes], dtype=np.intp)
        indptr = np.concatenate(([0], np.cumsum(lens))).astype(np.intp)
        flat = (
            np.concatenate(
                [np.asarray(r, dtype=np.intp) for r in self.routes]
            )
            if indptr[-1]
            else np.zeros(0, dtype=np.intp)
        )
        uniq = np.unique(flat)
        self._uniq_tasks = uniq
        self._flat_pos = np.searchsorted(uniq, flat)
        self._indptr = indptr
        self._lens = lens
        self._a = np.asarray([self.task_params[int(k)][0] for k in flat])
        self._mu = np.asarray([self.task_params[int(k)][1] for k in flat])
        # Same per-route cost scaling the scalar loop applied element-wise;
        # kept as two separate vectors so the subtraction order (and hence
        # rounding) of the scalar expression is preserved exactly.
        self._det = self.weights.beta * np.asarray(self.detour_costs)
        self._cong = self.weights.gamma * np.asarray(self.congestion_costs)
        self._counts_vec = np.zeros(uniq.size, dtype=np.intp)
        self._local_ready = True
        if self.known_counts:
            self._scatter_counts(
                np.fromiter(
                    self.known_counts.keys(),
                    dtype=np.intp,
                    count=len(self.known_counts),
                ),
                np.fromiter(
                    self.known_counts.values(),
                    dtype=np.intp,
                    count=len(self.known_counts),
                ),
            )

    def _scatter_counts(self, tasks: np.ndarray, values: np.ndarray) -> None:
        """Write delivered counts into ``_counts_vec``, dropping ids outside
        the agent's own task universe (they cannot affect its profits)."""
        uniq = self._uniq_tasks
        if uniq.size == 0:
            return
        pos = np.searchsorted(uniq, tasks)
        clamped = np.minimum(pos, uniq.size - 1)
        ok = uniq[clamped] == tasks
        self._counts_vec[pos[ok]] = values[ok]

    def _candidate_profits(self) -> np.ndarray:
        """Profit of each route given the latest known counts.

        The platform's counts include this agent's current participation,
        so the agent first removes itself, then evaluates every route with
        itself added — identical semantics to
        :func:`repro.core.profit.candidate_profits`, computed as one flat
        gather + ``(a + mu*log(n))/n`` + segmented sum over the compiled
        local CSR instead of a per-route Python loop.
        """
        assert self.routes is not None and self.current_route is not None
        assert self.detour_costs is not None and self.congestion_costs is not None
        self._ensure_local()
        counts = self._counts_vec.copy()
        cur = self.current_route
        counts[self._flat_pos[self._indptr[cur] : self._indptr[cur + 1]]] -= 1
        # max(..., 0): under lossy delivery the stale count may not include
        # this agent itself; never evaluate below n = 1.
        n = (np.maximum(counts[self._flat_pos], 0) + 1).astype(float)
        terms = (self._a + self._mu * np.log(n)) / n
        rewards = segment_sums(terms, self._indptr[:-1], self._lens)
        return self.weights.alpha * rewards - self._det - self._cong

    def _best_route_set(self) -> list[int]:
        """Delta_i(t): profit-maximizing routes strictly better than current."""
        profits = self._candidate_profits()
        current = profits[self.current_route]
        best = float(profits.max())
        if best <= current + _EPS:
            return []
        return [int(j) for j in np.flatnonzero(profits >= best - _EPS)]
