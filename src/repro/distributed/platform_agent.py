"""Platform-side agent: Algorithm 2 plus the SUU/PUU schedulers.

The platform knows the game instance (it generated the recommendations and
task adverts) but learns the users' *decisions* only through
:class:`~repro.distributed.messages.DecisionReport` messages.  Per slot it
collects update requests, grants one (SUU) or a disjoint set (PUU,
Algorithm 3), applies the reported decisions to its task counters, and
pushes refreshed counts to each user — restricted to the tasks that user's
routes cover.
"""

from __future__ import annotations

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.responses import greedy_disjoint
from repro.distributed.bus import MessageBus
from repro.obs import counter as _obs_counter
from repro.obs.runtime import RUNTIME as _OBS
from repro.distributed.messages import (
    DecisionReport,
    RouteAnnotation,
    RouteRecommendation,
    TaskCountUpdate,
    Termination,
    UpdateGrant,
    UpdateRequest,
)

PLATFORM = "platform"


def _user_name(user: int) -> str:
    return f"user-{user}"


class PlatformAgent:
    """The crowdsensing platform (Algorithm 2)."""

    def __init__(
        self,
        game: RouteNavigationGame,
        bus: MessageBus,
        rng: np.random.Generator,
        *,
        scheduler: str = "suu",
    ) -> None:
        if scheduler not in ("suu", "puu"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.game = game
        self.bus = bus
        self.rng = rng
        self.scheduler = scheduler
        self.counts = np.zeros(game.num_tasks, dtype=np.intp)
        self.decisions: dict[int, int] = {}
        self.granted_per_slot: list[int] = []
        self.terminated = False
        # Per-user visibility restriction (Alg. 2 line 4): the tasks any of
        # the user's routes cover, straight from the game's shared CSR.
        vt_indptr, vt_tasks = game.arrays.user_task_csr()
        self._visible_tasks = [
            vt_tasks[vt_indptr[i] : vt_indptr[i + 1]] for i in game.users
        ]

    # ------------------------------------------------------------- handshake
    def send_recommendations(self) -> None:
        """Alg. 2 line 1: recommended routes + reward adverts + costs."""
        game = self.game
        ga = game.arrays
        for i in game.users:
            sl = ga.user_slice(i)
            routes = tuple(
                tuple(int(t) for t in ga.route_tasks(g))
                for g in range(sl.start, sl.stop)
            )
            params = {
                int(k): (
                    float(game.tasks.base_rewards[k]),
                    float(game.tasks.reward_increments[k]),
                )
                for k in self._visible_tasks[i]
            }
            self.bus.post(
                _user_name(i),
                RouteRecommendation(PLATFORM, routes=routes, task_params=params),
            )
            self.bus.post(
                _user_name(i),
                RouteAnnotation(
                    PLATFORM,
                    detour_costs=tuple(
                        (game.platform.phi * ga.route_detour[sl]).tolist()
                    ),
                    congestion_costs=tuple(
                        (game.platform.theta * ga.route_congestion[sl]).tolist()
                    ),
                ),
            )

    def process_inbox(self) -> tuple[list[UpdateRequest], list[DecisionReport]]:
        """Split queued messages into requests and decision reports."""
        requests: list[UpdateRequest] = []
        reports: list[DecisionReport] = []
        for msg in self.bus.drain(PLATFORM):
            if isinstance(msg, UpdateRequest):
                requests.append(msg)
            elif isinstance(msg, DecisionReport):
                reports.append(msg)
            else:  # pragma: no cover - protocol misuse guard
                raise TypeError(f"platform: unexpected message {type(msg).__name__}")
        if _OBS.enabled:
            if requests:
                _obs_counter("platform.requests_total").inc(len(requests))
            if reports:
                _obs_counter("platform.reports_total").inc(len(reports))
        return requests, reports

    # ----------------------------------------------------------- bookkeeping
    def apply_reports(self, reports: list[DecisionReport]) -> None:
        """Alg. 2 lines 2-3, 10: fold decisions into the task counters.

        Re-reports only touch the symmetric difference of the two routes'
        CSR segments (tasks covered by both keep their counter).
        """
        ga = self.game.arrays
        for rep in reports:
            old = self.decisions.get(rep.user)
            new_g = ga.route_id(rep.user, rep.route)
            if old is None:
                ids = ga.route_tasks(new_g)
                if ids.size:
                    self.counts[ids] += 1
            else:
                gained, lost = ga.changed_tasks(
                    ga.route_id(rep.user, old), new_g
                )
                if gained.size:
                    self.counts[gained] += 1
                if lost.size:
                    self.counts[lost] -= 1
            self.decisions[rep.user] = rep.route

    def broadcast_counts(self, slot: int) -> None:
        """Alg. 2 line 4 / line 10: per-user restricted count updates."""
        for i in self.game.users:
            visible = self._visible_tasks[i]
            payload = dict(
                zip(visible.tolist(), self.counts[visible].tolist())
            )
            self.bus.post(
                _user_name(i), TaskCountUpdate(PLATFORM, slot=slot, counts=payload)
            )

    # -------------------------------------------------------------- schedule
    def grant(self, slot: int, requests: list[UpdateRequest]) -> list[int]:
        """Alg. 2 lines 6-9: pick the update set via SUU or PUU."""
        if not requests:
            return []
        if self.scheduler == "suu":
            chosen = [requests[int(self.rng.integers(0, len(requests)))].user]
        else:
            chosen = self._puu(requests)
        for user in chosen:
            self.bus.post(_user_name(user), UpdateGrant(PLATFORM, slot=slot))
        self.granted_per_slot.append(len(chosen))
        if _OBS.enabled:
            _obs_counter("platform.grants_total", scheduler=self.scheduler).inc(
                len(chosen)
            )
        return chosen

    def _puu(self, requests: list[UpdateRequest]) -> list[int]:
        """Algorithm 3 on the received ``(tau_i, B_i)`` pairs.

        Same grant set as the old Python-set scan: ``np.lexsort`` on
        ``(-delta_i, user)`` replaces ``sorted``, and disjointness is the
        shared occupancy-mask scan
        (:func:`~repro.core.responses.greedy_disjoint`) over a CSR built
        from the requests' touched-task sets.
        """
        users = np.asarray([r.user for r in requests], dtype=np.intp)
        taus = np.asarray([r.tau for r in requests])
        segments = [
            np.fromiter(r.touched_tasks, dtype=np.intp, count=len(r.touched_tasks))
            for r in requests
        ]
        sizes = np.asarray([seg.size for seg in segments], dtype=np.intp)
        deltas = taus / np.maximum(sizes, 1)
        order = np.lexsort((users, -deltas))
        b_indptr = np.concatenate([[0], np.cumsum(sizes)]).astype(np.intp)
        b_tasks = (
            np.concatenate(segments) if b_indptr[-1]
            else np.zeros(0, dtype=np.intp)
        )
        granted = greedy_disjoint(
            order, b_indptr, b_tasks, self.game.num_tasks
        )
        return [int(users[k]) for k in granted]

    def terminate(self, slot: int) -> None:
        """Alg. 2 lines 11-12: broadcast termination."""
        for i in self.game.users:
            self.bus.post(_user_name(i), Termination(PLATFORM, slot=slot))
        self.terminated = True
