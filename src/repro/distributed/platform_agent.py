"""Platform-side agent: Algorithm 2 plus the SUU/PUU schedulers.

The platform knows the game instance (it generated the recommendations and
task adverts) but learns the users' *decisions* only through
:class:`~repro.distributed.messages.DecisionReport` messages.  Per slot it
collects update requests, grants one (SUU) or a disjoint set (PUU,
Algorithm 3), applies the reported decisions to its task counters, and
pushes refreshed counts to each user — restricted to the tasks that user's
routes cover.

Robustness extension (``docs/robustness.md``): with a
:class:`~repro.distributed.resilience.ResilienceConfig` attached the
platform additionally

- dedups and acks control messages (``msg_id``), and applies decision
  reports idempotently by per-user sequence number (always on — a
  duplicated or reordered report stream is a no-op),
- leases every grant: a grantee silent for ``lease_slots`` is revoked and
  its touched tasks are freed (no stalled slots),
- excludes requests conflicting with outstanding (unreported) grants so
  in-flight moves stay pairwise task-disjoint — the Eq. 11 potential
  argument survives delayed reports,
- ships authoritative counts inside each grant (grant-time refresh),
- rejects *stale* moves (a revoked grantee reporting after its lease on
  counts that have since changed, making the move harmful) and forces the
  user to re-sync from a :class:`~repro.distributed.messages.StateSnapshot`,
- answers :class:`~repro.distributed.messages.RejoinRequest` from
  restarted agents with that same snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.core.responses import greedy_disjoint
from repro.distributed.bus import MessageBus
from repro.distributed.resilience import ReliableChannel, ResilienceConfig
from repro.obs import counter as _obs_counter
from repro.obs import event as _obs_event
from repro.obs.runtime import RUNTIME as _OBS
from repro.distributed.messages import (
    Ack,
    DecisionReport,
    RejoinRequest,
    RouteAnnotation,
    RouteRecommendation,
    StateSnapshot,
    TaskCountUpdate,
    Termination,
    UpdateGrant,
    UpdateRequest,
)

PLATFORM = "platform"

# Tolerance for the stale-move (zombie report) potential guard.
_POT_EPS = 1e-9


def _user_name(user: int) -> str:
    return f"user-{user}"


@dataclass
class _GrantLease:
    """One outstanding grant: who, when, what it may touch, until when."""

    slot: int
    expiry: int
    touched: frozenset[int]
    tau: float
    msg_id: int


class PlatformAgent:
    """The crowdsensing platform (Algorithm 2)."""

    def __init__(
        self,
        game: RouteNavigationGame,
        bus: MessageBus,
        rng: np.random.Generator,
        *,
        scheduler: str = "suu",
        resilience: ResilienceConfig | None = None,
    ) -> None:
        if scheduler not in ("suu", "puu"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.game = game
        self.bus = bus
        self.rng = rng
        self.scheduler = scheduler
        self.counts = np.zeros(game.num_tasks, dtype=np.intp)
        self.decisions: dict[int, int] = {}
        self.granted_per_slot: list[int] = []
        self.terminated = False
        # Idempotency (always on): last accepted report seq per user, and
        # the log of accepted *moves* for invariant checking/replay.
        self.last_seq: dict[int, int] = {}
        self.move_log: list[tuple[int, int, int, int]] = []  # slot, user, old, new
        # Hardened-protocol state (inactive without a resilience config).
        self.resilience = resilience
        self.outstanding: dict[int, _GrantLease] = {}
        self.lease_revocations = 0
        self.rejoins = 0
        self.stale_moves_rejected = 0
        self._channel = (
            ReliableChannel(bus, PLATFORM, resilience)
            if resilience is not None
            else None
        )
        self._seen_ids: set[tuple[str, int]] = set()
        self._confirm_exhausted_mark = 0
        self._confirm_sent = False
        # Per-user visibility restriction (Alg. 2 line 4): the tasks any of
        # the user's routes cover, straight from the game's shared CSR.
        vt_indptr, vt_tasks = game.arrays.user_task_csr()
        self._visible_tasks = [
            vt_tasks[vt_indptr[i] : vt_indptr[i + 1]] for i in game.users
        ]

    # ------------------------------------------------------------- handshake
    def send_recommendations(self) -> None:
        """Alg. 2 line 1: recommended routes + reward adverts + costs."""
        game = self.game
        ga = game.arrays
        for i in game.users:
            routes, params = self._catalogue(i)
            self.bus.post(
                _user_name(i),
                RouteRecommendation(PLATFORM, routes=routes, task_params=params),
            )
            sl = ga.user_slice(i)
            self.bus.post(
                _user_name(i),
                RouteAnnotation(
                    PLATFORM,
                    detour_costs=tuple(
                        (game.platform.phi * ga.route_detour[sl]).tolist()
                    ),
                    congestion_costs=tuple(
                        (game.platform.theta * ga.route_congestion[sl]).tolist()
                    ),
                ),
            )

    def _catalogue(
        self, user: int
    ) -> tuple[tuple[tuple[int, ...], ...], dict[int, tuple[float, float]]]:
        """The user's recommended routes and the reward adverts they cover."""
        game = self.game
        ga = game.arrays
        sl = ga.user_slice(user)
        routes = tuple(
            tuple(int(t) for t in ga.route_tasks(g))
            for g in range(sl.start, sl.stop)
        )
        params = {
            int(k): (
                float(game.tasks.base_rewards[k]),
                float(game.tasks.reward_increments[k]),
            )
            for k in self._visible_tasks[user]
        }
        return routes, params

    def process_inbox(self) -> tuple[list[UpdateRequest], list[DecisionReport]]:
        """Split queued messages into requests and decision reports.

        Hardened extras handled inline: acks feed the retry channel,
        rejoin requests are answered with a state snapshot, and control
        messages carrying a ``msg_id`` are acked and deduplicated (a
        duplicate is re-acked — the previous ack may have been lost — but
        its payload is dropped).
        """
        requests: list[UpdateRequest] = []
        reports: list[DecisionReport] = []
        for msg in self.bus.drain(PLATFORM):
            if isinstance(msg, Ack):
                if self._channel is not None:
                    self._channel.on_ack(msg.msg_id)
                continue
            if isinstance(msg, RejoinRequest):
                self._handle_rejoin(msg)
                continue
            if isinstance(msg, (UpdateRequest, DecisionReport)):
                if msg.msg_id >= 0:
                    self.bus.post(msg.sender, Ack(PLATFORM, msg_id=msg.msg_id))
                    key = (msg.sender, msg.msg_id)
                    if key in self._seen_ids:
                        continue
                    self._seen_ids.add(key)
                if isinstance(msg, UpdateRequest):
                    requests.append(msg)
                else:
                    reports.append(msg)
            else:  # pragma: no cover - protocol misuse guard
                raise TypeError(f"platform: unexpected message {type(msg).__name__}")
        if _OBS.enabled:
            if requests:
                _obs_counter("platform.requests_total").inc(len(requests))
            if reports:
                _obs_counter("platform.reports_total").inc(len(reports))
        return requests, reports

    # ----------------------------------------------------------- bookkeeping
    def apply_reports(self, reports: list[DecisionReport]) -> None:
        """Alg. 2 lines 2-3, 10: fold decisions into the task counters.

        Re-reports only touch the symmetric difference of the two routes'
        CSR segments (tasks covered by both keep their counter).

        Idempotency (always on): a report carrying ``seq >= 0`` is applied
        at most once per user and only if newer than the last accepted one
        — duplicated or reordered report streams leave the counters
        unchanged.  Unsequenced reports (``seq == -1``, hand-built
        streams) keep the paper's apply-everything semantics.
        """
        ga = self.game.arrays
        for rep in reports:
            if rep.seq >= 0:
                if rep.seq <= self.last_seq.get(rep.user, -1):
                    continue  # duplicate or stale reorder: no-op
                self.last_seq[rep.user] = rep.seq
            old = self.decisions.get(rep.user)
            lease = self.outstanding.pop(rep.user, None)
            if lease is not None and self._channel is not None:
                self._channel.cancel(lease.msg_id)
            if old is not None and rep.route == old:
                continue  # decline / no-op re-report
            if (
                self.resilience is not None
                and old is not None
                and lease is None
                and not self._move_is_safe(rep.user, old, rep.route)
            ):
                # Zombie move: the lease was revoked, counts moved on, and
                # applying it now would hurt the potential.  Reject and
                # force the user to re-sync from an authoritative snapshot.
                self.stale_moves_rejected += 1
                self._send_snapshot(rep.user)
                if _OBS.enabled:
                    _obs_counter("platform.stale_moves_rejected_total").inc()
                    _obs_event(
                        "platform.stale_move_rejected",
                        user=rep.user,
                        slot=rep.slot,
                    )
                continue
            if old is None:
                ids = ga.route_tasks(ga.route_id(rep.user, rep.route))
                if ids.size:
                    self.counts[ids] += 1
            else:
                gained, lost = ga.changed_tasks(
                    ga.route_id(rep.user, old), ga.route_id(rep.user, rep.route)
                )
                if gained.size:
                    self.counts[gained] += 1
                if lost.size:
                    self.counts[lost] -= 1
                self.move_log.append((rep.slot, rep.user, old, rep.route))
            self.decisions[rep.user] = rep.route

    def _move_is_safe(self, user: int, old: int, new: int) -> bool:
        """Eq. 11 guard: does the move still improve the potential now?"""
        ga = self.game.arrays
        delta = ga.potential_delta(
            self.counts, ga.route_id(user, old), ga.route_id(user, new)
        )
        return delta > -_POT_EPS

    def broadcast_counts(self, slot: int) -> None:
        """Alg. 2 line 4 / line 10: per-user restricted count updates."""
        for i in self.game.users:
            self.bus.post(
                _user_name(i),
                TaskCountUpdate(PLATFORM, slot=slot, counts=self._counts_for(i)),
            )

    def _counts_for(self, user: int) -> dict[int, int]:
        visible = self._visible_tasks[user]
        return dict(zip(visible.tolist(), self.counts[visible].tolist()))

    # -------------------------------------------------------------- schedule
    def grant(self, slot: int, requests: list[UpdateRequest]) -> list[int]:
        """Alg. 2 lines 6-9: pick the update set via SUU or PUU.

        Hardened: keep only the newest request per user, skip users with
        an outstanding (leased, unreported) grant, and skip requests whose
        ``B_i`` intersects any outstanding grant's — in-flight moves stay
        pairwise task-disjoint, so every applied move realises exactly the
        potential gain it was granted for.  Grants carry the platform's
        authoritative counts and are sent through the retry channel.
        """
        if self.resilience is not None:
            requests = self._filter_requests(requests)
        if not requests:
            return []
        if self.scheduler == "suu":
            chosen_reqs = [requests[int(self.rng.integers(0, len(requests)))]]
        else:
            chosen_reqs = self._puu(requests)
        if self.resilience is None:
            for req in chosen_reqs:
                self.bus.post(_user_name(req.user), UpdateGrant(PLATFORM, slot=slot))
        else:
            assert self._channel is not None
            cfg = self.resilience
            for req in chosen_reqs:
                mid = self._channel.next_id()
                self.outstanding[req.user] = _GrantLease(
                    slot=slot,
                    expiry=slot + cfg.lease_slots,
                    touched=frozenset(req.touched_tasks),
                    tau=req.tau,
                    msg_id=mid,
                )
                self._channel.send(
                    _user_name(req.user),
                    UpdateGrant(
                        PLATFORM,
                        slot=slot,
                        counts=self._counts_for(req.user),
                        lease_slots=cfg.lease_slots,
                        msg_id=mid,
                    ),
                    slot,
                )
        chosen = [req.user for req in chosen_reqs]
        self.granted_per_slot.append(len(chosen))
        if _OBS.enabled:
            _obs_counter("platform.grants_total", scheduler=self.scheduler).inc(
                len(chosen)
            )
        return chosen

    def _filter_requests(
        self, requests: list[UpdateRequest]
    ) -> list[UpdateRequest]:
        """Newest request per user; no conflicts with outstanding grants."""
        newest: dict[int, UpdateRequest] = {}
        order: list[int] = []
        for req in requests:
            if req.user not in newest:
                order.append(req.user)
                newest[req.user] = req
            elif req.slot > newest[req.user].slot:
                newest[req.user] = req
        held = frozenset().union(
            *(lease.touched for lease in self.outstanding.values())
        ) if self.outstanding else frozenset()
        out = []
        for user in order:
            req = newest[user]
            if user in self.outstanding:
                continue
            if held and not held.isdisjoint(req.touched_tasks):
                continue
            out.append(req)
        return out

    def _puu(self, requests: list[UpdateRequest]) -> list[UpdateRequest]:
        """Algorithm 3 on the received ``(tau_i, B_i)`` pairs.

        Same grant set as the old Python-set scan: ``np.lexsort`` on
        ``(-delta_i, user)`` replaces ``sorted``, and disjointness is the
        shared occupancy-mask scan
        (:func:`~repro.core.responses.greedy_disjoint`) over a CSR built
        from the requests' touched-task sets.
        """
        users = np.asarray([r.user for r in requests], dtype=np.intp)
        taus = np.asarray([r.tau for r in requests])
        segments = [
            np.fromiter(r.touched_tasks, dtype=np.intp, count=len(r.touched_tasks))
            for r in requests
        ]
        sizes = np.asarray([seg.size for seg in segments], dtype=np.intp)
        deltas = taus / np.maximum(sizes, 1)
        order = np.lexsort((users, -deltas))
        b_indptr = np.concatenate([[0], np.cumsum(sizes)]).astype(np.intp)
        b_tasks = (
            np.concatenate(segments) if b_indptr[-1]
            else np.zeros(0, dtype=np.intp)
        )
        granted = greedy_disjoint(
            order, b_indptr, b_tasks, self.game.num_tasks
        )
        return [requests[int(k)] for k in granted]

    # ------------------------------------------------------------ resilience
    def tick(self, slot: int) -> None:
        """Per-slot reliability housekeeping: lease expiry, then retries."""
        if self.resilience is None:
            return
        assert self._channel is not None
        for user, lease in list(self.outstanding.items()):
            if slot >= lease.expiry:
                del self.outstanding[user]
                self._channel.cancel(lease.msg_id)
                self.lease_revocations += 1
                if _OBS.enabled:
                    _obs_counter("platform.lease_revocations_total").inc()
                    _obs_event(
                        "platform.lease_revoked",
                        user=user,
                        granted_slot=lease.slot,
                        slot=slot,
                    )
        self._channel.tick(slot)

    def _handle_rejoin(self, msg: RejoinRequest) -> None:
        """Answer a restarted agent with a full re-sync snapshot.

        Any outstanding grant the user held is revoked on the spot — the
        crash wiped its memory of the grant.
        """
        lease = self.outstanding.pop(msg.user, None)
        if lease is not None and self._channel is not None:
            self._channel.cancel(lease.msg_id)
        self.rejoins += 1
        self._send_snapshot(msg.user)
        if _OBS.enabled:
            _obs_counter("platform.rejoins_total").inc()
            _obs_event("platform.rejoin", user=msg.user)

    def _send_snapshot(self, user: int) -> None:
        routes, params = self._catalogue(user)
        game = self.game
        ga = game.arrays
        sl = ga.user_slice(user)
        self.bus.post(
            _user_name(user),
            StateSnapshot(
                PLATFORM,
                user=user,
                slot=self.bus.now,
                routes=routes,
                task_params=params,
                detour_costs=tuple(
                    (game.platform.phi * ga.route_detour[sl]).tolist()
                ),
                congestion_costs=tuple(
                    (game.platform.theta * ga.route_congestion[sl]).tolist()
                ),
                counts=self._counts_for(user),
                decision=self.decisions[user],
                last_seq=self.last_seq.get(user, -1),
            ),
        )

    def broadcast_counts_reliable(self, slot: int, users: list[int]) -> None:
        """Pre-termination sync: counts via the retry channel (acked).

        The run only terminates once every alive user has *confirmed*
        deciding on fresh counts and still declined to request — without
        this, a lost final :class:`TaskCountUpdate` could freeze a user on
        a stale view and quiesce the run short of a Nash equilibrium.
        """
        assert self._channel is not None
        self._confirm_exhausted_mark = self._channel.exhausted
        self._confirm_sent = True
        for i in users:
            mid = self._channel.next_id()
            self._channel.send(
                _user_name(i),
                TaskCountUpdate(
                    PLATFORM, slot=slot, counts=self._counts_for(i), msg_id=mid
                ),
                slot,
            )

    def confirm_ok(self) -> bool:
        """All confirm syncs acked, none abandoned by retry exhaustion."""
        assert self._channel is not None
        return (
            self._confirm_sent
            and self._channel.pending() == 0
            and self._channel.exhausted == self._confirm_exhausted_mark
        )

    def channel_pending(self) -> int:
        return 0 if self._channel is None else self._channel.pending()

    def terminate(self, slot: int) -> None:
        """Alg. 2 lines 11-12: broadcast termination."""
        for i in self.game.users:
            self.bus.post(_user_name(i), Termination(PLATFORM, slot=slot))
        self.terminated = True
