"""In-process message bus: per-agent FIFO mailboxes with delivery stats.

The transport stand-in for the phone/platform network (DESIGN.md,
substitution 3).  Delivery is reliable and ordered by default; the
simulator controls when each agent drains its mailbox, which makes slot
boundaries explicit and runs reproducible.

Two unreliability extensions (not in the paper):

- *Lossy telemetry* (fig15): drop *droppable* message types with
  probability ``drop_prob`` — in a real deployment the control plane rides
  a reliable transport while task-count updates may arrive late or never.
- *Fault injection* (``docs/robustness.md``): attach a
  :class:`~repro.faults.injector.FaultInjector` and the bus consults it on
  every post — loss, duplication, and delay/reorder via a delivery-time
  priority queue keyed on the simulator's logical slot clock
  (:meth:`advance`).  Crashed recipients lose queued and arriving
  messages until they restart.

Accounting: the bus always tracks per-type sent *and dropped* counts plus
per-recipient mailbox high-water marks; with telemetry enabled
(:mod:`repro.obs`) it additionally feeds the process-wide counters
``bus.sent_total`` / ``bus.dropped_total`` / ``bus.delivered_total`` /
``bus.redelivered_total`` / ``bus.duplicated_total`` (labeled by message
type).
"""

from __future__ import annotations

import heapq
import warnings
from collections import defaultdict, deque
from typing import TYPE_CHECKING, Deque

import numpy as np

from repro.distributed.messages import Message, TaskCountUpdate
from repro.obs import counter as _obs_counter
from repro.obs.runtime import RUNTIME as _OBS
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector


class MessageBus:
    """Named mailboxes plus per-message-type traffic counters."""

    def __init__(
        self,
        *,
        drop_prob: float = 0.0,
        droppable: tuple[type, ...] = (TaskCountUpdate,),
        seed: SeedLike = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self._boxes: dict[str, Deque[Message]] = defaultdict(deque)
        self.sent_by_type: dict[str, int] = defaultdict(int)
        self.dropped_by_type: dict[str, int] = defaultdict(int)
        self.high_water: dict[str, int] = {}
        self.total_sent = 0
        self.total_dropped = 0
        self.total_redelivered = 0
        self.total_duplicated = 0
        self.drop_prob = check_probability("drop_prob", drop_prob)
        self.droppable = droppable
        if drop_prob > 0.0 and not droppable:
            raise ValueError(
                "drop_prob > 0 with an empty droppable tuple is inert: "
                "no message type can ever be dropped — pass the types to "
                "drop (e.g. droppable=(TaskCountUpdate,)) or drop_prob=0"
            )
        if drop_prob == 0.0 and seed is not None:
            warnings.warn(
                "MessageBus seed is unused when drop_prob == 0 — the lossy "
                "path never draws from it; pass drop_prob > 0 or omit the "
                "seed",
                UserWarning,
                stacklevel=2,
            )
        self._rng: np.random.Generator | None = (
            as_generator(seed) if drop_prob > 0.0 else None
        )
        # Fault-injection state (inactive unless an injector is attached):
        # a logical slot clock and a delivery-time priority queue for
        # delayed messages.  ``_heap_seq`` breaks ties FIFO.
        self._injector = injector
        self.now = 0
        self._in_flight: list[tuple[int, int, str, Message]] = []
        self._heap_seq = 0
        self._crashed: set[str] = set()

    # ---------------------------------------------------------------- crash
    def set_crashed(self, recipient: str, crashed: bool = True) -> None:
        """Mark a recipient down (messages to it are lost) or back up.

        Crashing also purges the mailbox — a dead phone loses its queue.
        """
        if crashed:
            self._crashed.add(recipient)
            purged = self._boxes[recipient]
            if purged:
                for msg in purged:
                    self._count_drop(type(msg).__name__, reason="crash")
                purged.clear()
        else:
            self._crashed.discard(recipient)

    def is_crashed(self, recipient: str) -> bool:
        return recipient in self._crashed

    # ----------------------------------------------------------------- post
    def post(self, recipient: str, message: Message) -> None:
        """Append ``message`` to ``recipient``'s mailbox.

        Droppable message types are lost with probability ``drop_prob``
        (still counted as sent — the sender paid for the transmission).
        With a fault injector attached, the injector decides per post
        whether the message is lost, duplicated, or delayed.
        """
        tname = type(message).__name__
        self.sent_by_type[tname] += 1
        self.total_sent += 1
        if _OBS.enabled:
            _obs_counter("bus.sent_total", type=tname).inc()
        if (
            self._rng is not None
            and isinstance(message, self.droppable)
            and self._rng.random() < self.drop_prob
        ):
            self._count_drop(tname, reason="lossy")
            return
        if self._injector is None:
            self._deliver(recipient, message, tname)
            return
        fate = self._injector.fate(message)
        if fate.dropped:
            self._count_drop(tname, reason="fault")
            return
        for k, extra in enumerate(fate.delays):
            if k > 0:
                self.total_duplicated += 1
                if _OBS.enabled:
                    _obs_counter("bus.duplicated_total", type=tname).inc()
            if extra <= 0:
                self._deliver(recipient, message, tname)
            else:
                heapq.heappush(
                    self._in_flight,
                    (self.now + extra, self._heap_seq, recipient, message),
                )
                self._heap_seq += 1

    def post_reliable(self, recipient: str, message: Message) -> None:
        """Post outside the unreliable data plane (session-setup traffic).

        Skips both the lossy-telemetry draw and fault injection: the
        handshake rides the connection that established the session.  A
        crashed recipient still loses the message — reliability is a
        transport property, not a resurrection.
        """
        tname = type(message).__name__
        self.sent_by_type[tname] += 1
        self.total_sent += 1
        if _OBS.enabled:
            _obs_counter("bus.sent_total", type=tname).inc()
        self._deliver(recipient, message, tname)

    def repost(self, recipient: str, message: Message) -> None:
        """Retry transmission of a control message (reliability layer).

        Counted separately as a redelivery; the retried copy is subject to
        fault injection again — retries can be lost too.
        """
        self.total_redelivered += 1
        if _OBS.enabled:
            _obs_counter(
                "bus.redelivered_total", type=type(message).__name__
            ).inc()
        self.post(recipient, message)

    def _deliver(self, recipient: str, message: Message, tname: str) -> None:
        if recipient in self._crashed:
            self._count_drop(tname, reason="crash")
            return
        box = self._boxes[recipient]
        box.append(message)
        if len(box) > self.high_water.get(recipient, 0):
            self.high_water[recipient] = len(box)
        if _OBS.enabled:
            _obs_counter("bus.delivered_total", type=tname).inc()

    def _count_drop(self, tname: str, *, reason: str) -> None:
        self.total_dropped += 1
        self.dropped_by_type[tname] += 1
        if _OBS.enabled:
            _obs_counter("bus.dropped_total", type=tname, reason=reason).inc()

    # ------------------------------------------------------------- delivery
    def advance(self, slot: int) -> int:
        """Move the logical clock to ``slot``; release due delayed messages.

        Returns the number of messages released.  Messages due for a
        crashed recipient are lost (the phone is off when they arrive).
        """
        self.now = slot
        released = 0
        while self._in_flight and self._in_flight[0][0] <= slot:
            _, _, recipient, message = heapq.heappop(self._in_flight)
            self._deliver(recipient, message, type(message).__name__)
            released += 1
        return released

    def in_flight(self) -> int:
        """Delayed messages still waiting in the delivery queue."""
        return len(self._in_flight)

    def drain(self, recipient: str) -> list[Message]:
        """Remove and return everything in ``recipient``'s mailbox."""
        box = self._boxes[recipient]
        out = list(box)
        box.clear()
        return out

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages for ``recipient``."""
        return len(self._boxes[recipient])

    @property
    def mailbox_high_water(self) -> int:
        """Deepest any mailbox has ever been (0 when nothing was posted)."""
        return max(self.high_water.values(), default=0)

    def traffic_summary(self) -> dict[str, int]:
        """Copy of the per-type delivery counters."""
        return dict(self.sent_by_type)

    def drop_summary(self) -> dict[str, int]:
        """Copy of the per-type drop counters."""
        return dict(self.dropped_by_type)
