"""In-process message bus: per-agent FIFO mailboxes with delivery stats.

The transport stand-in for the phone/platform network (DESIGN.md,
substitution 3).  Delivery is reliable and ordered by default; the
simulator controls when each agent drains its mailbox, which makes slot
boundaries explicit and runs reproducible.

For the robustness extension (not in the paper), the bus can drop
*telemetry* messages with a configurable probability: in a real deployment
the control plane (grants, decisions, termination) rides a reliable
transport while task-count updates may arrive late or never, leaving users
to decide on stale counts.  Pass ``drop_prob > 0`` and a ``droppable``
tuple of message types to enable it.

Accounting: the bus always tracks per-type sent *and dropped* counts plus
per-recipient mailbox high-water marks; with telemetry enabled
(:mod:`repro.obs`) it additionally feeds the process-wide counters
``bus.sent_total`` / ``bus.dropped_total`` / ``bus.delivered_total``
(labeled by message type).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque

import numpy as np

from repro.distributed.messages import Message, TaskCountUpdate
from repro.obs import counter as _obs_counter
from repro.obs.runtime import RUNTIME as _OBS
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability


class MessageBus:
    """Named mailboxes plus per-message-type traffic counters."""

    def __init__(
        self,
        *,
        drop_prob: float = 0.0,
        droppable: tuple[type, ...] = (TaskCountUpdate,),
        seed: SeedLike = None,
    ) -> None:
        self._boxes: dict[str, Deque[Message]] = defaultdict(deque)
        self.sent_by_type: dict[str, int] = defaultdict(int)
        self.dropped_by_type: dict[str, int] = defaultdict(int)
        self.high_water: dict[str, int] = {}
        self.total_sent = 0
        self.total_dropped = 0
        self.drop_prob = check_probability("drop_prob", drop_prob)
        self.droppable = droppable
        self._rng: np.random.Generator | None = (
            as_generator(seed) if drop_prob > 0.0 else None
        )

    def post(self, recipient: str, message: Message) -> None:
        """Append ``message`` to ``recipient``'s mailbox.

        Droppable message types are lost with probability ``drop_prob``
        (still counted as sent — the sender paid for the transmission).
        """
        tname = type(message).__name__
        self.sent_by_type[tname] += 1
        self.total_sent += 1
        if _OBS.enabled:
            _obs_counter("bus.sent_total", type=tname).inc()
        if (
            self._rng is not None
            and isinstance(message, self.droppable)
            and self._rng.random() < self.drop_prob
        ):
            self.total_dropped += 1
            self.dropped_by_type[tname] += 1
            if _OBS.enabled:
                _obs_counter("bus.dropped_total", type=tname).inc()
            return
        box = self._boxes[recipient]
        box.append(message)
        if len(box) > self.high_water.get(recipient, 0):
            self.high_water[recipient] = len(box)
        if _OBS.enabled:
            _obs_counter("bus.delivered_total", type=tname).inc()

    def drain(self, recipient: str) -> list[Message]:
        """Remove and return everything in ``recipient``'s mailbox."""
        box = self._boxes[recipient]
        out = list(box)
        box.clear()
        return out

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages for ``recipient``."""
        return len(self._boxes[recipient])

    @property
    def mailbox_high_water(self) -> int:
        """Deepest any mailbox has ever been (0 when nothing was posted)."""
        return max(self.high_water.values(), default=0)

    def traffic_summary(self) -> dict[str, int]:
        """Copy of the per-type delivery counters."""
        return dict(self.sent_by_type)

    def drop_summary(self) -> dict[str, int]:
        """Copy of the per-type drop counters."""
        return dict(self.dropped_by_type)
