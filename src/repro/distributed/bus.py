"""In-process message bus: per-agent FIFO mailboxes with delivery stats.

The transport stand-in for the phone/platform network (DESIGN.md,
substitution 3).  Delivery is reliable and ordered by default; the
simulator controls when each agent drains its mailbox, which makes slot
boundaries explicit and runs reproducible.

For the robustness extension (not in the paper), the bus can drop
*telemetry* messages with a configurable probability: in a real deployment
the control plane (grants, decisions, termination) rides a reliable
transport while task-count updates may arrive late or never, leaving users
to decide on stale counts.  Pass ``drop_prob > 0`` and a ``droppable``
tuple of message types to enable it.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque

import numpy as np

from repro.distributed.messages import Message, TaskCountUpdate
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability


class MessageBus:
    """Named mailboxes plus per-message-type traffic counters."""

    def __init__(
        self,
        *,
        drop_prob: float = 0.0,
        droppable: tuple[type, ...] = (TaskCountUpdate,),
        seed: SeedLike = None,
    ) -> None:
        self._boxes: dict[str, Deque[Message]] = defaultdict(deque)
        self.sent_by_type: dict[str, int] = defaultdict(int)
        self.total_sent = 0
        self.total_dropped = 0
        self.drop_prob = check_probability("drop_prob", drop_prob)
        self.droppable = droppable
        self._rng: np.random.Generator | None = (
            as_generator(seed) if drop_prob > 0.0 else None
        )

    def post(self, recipient: str, message: Message) -> None:
        """Append ``message`` to ``recipient``'s mailbox.

        Droppable message types are lost with probability ``drop_prob``
        (still counted as sent — the sender paid for the transmission).
        """
        self.sent_by_type[type(message).__name__] += 1
        self.total_sent += 1
        if (
            self._rng is not None
            and isinstance(message, self.droppable)
            and self._rng.random() < self.drop_prob
        ):
            self.total_dropped += 1
            return
        self._boxes[recipient].append(message)

    def drain(self, recipient: str) -> list[Message]:
        """Remove and return everything in ``recipient``'s mailbox."""
        box = self._boxes[recipient]
        out = list(box)
        box.clear()
        return out

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages for ``recipient``."""
        return len(self._boxes[recipient])

    def traffic_summary(self) -> dict[str, int]:
        """Copy of the per-type delivery counters."""
        return dict(self.sent_by_type)
