"""Message-passing implementation of Algorithms 1-3.

User agents (Algorithm 1) and the platform agent (Algorithm 2) communicate
exclusively through typed messages over an in-process bus — no shared game
state.  Users see only their own recommended routes, costs, and the task
counts the platform sends them (the paper's privacy argument: no user
uploads its location or preferences).

The :class:`DistributedSimulation` driver advances decision slots until the
platform broadcasts termination; the outcome is cross-validated against the
fast in-memory engines in the test suite.
"""

from repro.distributed.messages import (
    Ack,
    DecisionReport,
    Message,
    RejoinRequest,
    RouteAnnotation,
    RouteRecommendation,
    StateSnapshot,
    TaskCountUpdate,
    Termination,
    UpdateGrant,
    UpdateRequest,
)
from repro.distributed.bus import MessageBus
from repro.distributed.resilience import ReliableChannel, ResilienceConfig
from repro.distributed.user_agent import UserAgent
from repro.distributed.platform_agent import PlatformAgent
from repro.distributed.simulator import DistributedOutcome, DistributedSimulation

__all__ = [
    "Ack",
    "DecisionReport",
    "DistributedOutcome",
    "DistributedSimulation",
    "Message",
    "MessageBus",
    "PlatformAgent",
    "RejoinRequest",
    "ReliableChannel",
    "ResilienceConfig",
    "RouteAnnotation",
    "RouteRecommendation",
    "StateSnapshot",
    "TaskCountUpdate",
    "Termination",
    "UpdateGrant",
    "UpdateRequest",
    "UserAgent",
]
