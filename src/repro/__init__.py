"""repro — reproduction of "Distributed Game-Theoretical Route Navigation
for Vehicular Crowdsensing" (Wang et al., ICPP '21).

Public API tour
---------------

Build a game instance from the synthetic substrate::

    from repro.scenario import ScenarioConfig, build_scenario
    scenario = build_scenario(ScenarioConfig(city="shanghai", n_users=30,
                                             n_tasks=60, seed=7))
    game = scenario.game

Run the paper's algorithm and baselines::

    from repro.algorithms import DGRN, MUUN, CORN, RRN
    result = DGRN(seed=1).run(game)
    assert result.is_nash

Or drive the faithful message-passing protocol (Algorithms 1-3)::

    from repro.distributed import DistributedSimulation
    sim = DistributedSimulation(game, scheduler="puu", seed=1)
    outcome = sim.run()

Reproduce a figure or table::

    from repro.experiments import run_experiment
    table = run_experiment("fig7", repetitions=50, seed=0)
    print(table.to_markdown())
"""

from repro._version import __version__
from repro.core import (
    PlatformWeights,
    RouteNavigationGame,
    StrategyProfile,
    UserWeights,
    is_nash_equilibrium,
    potential,
    total_profit,
)

__all__ = [
    "PlatformWeights",
    "RouteNavigationGame",
    "StrategyProfile",
    "UserWeights",
    "__version__",
    "is_nash_equilibrium",
    "potential",
    "total_profit",
]
