"""Game-instance serialization.

Experiments are reproducible from seeds, but sharing an *exact* instance
(e.g. the one behind a reported number, or a minimized bug case) needs a
portable format.  :func:`game_to_dict` / :func:`game_from_dict` round-trip
a :class:`~repro.core.game.RouteNavigationGame` through plain JSON types;
:func:`save_game` / :func:`load_game` add the file layer.

Route geometry (node paths) is preserved so saved instances can still be
rendered; network topology itself is not serialized — the game layer only
needs the per-route annotations.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.game import RouteNavigationGame
from repro.core.weights import PlatformWeights, UserWeights
from repro.network.routing import Route
from repro.tasks.task import Task, TaskSet

FORMAT_VERSION = 1


def game_to_dict(game: RouteNavigationGame) -> dict[str, Any]:
    """Serialize a game instance to JSON-compatible types."""
    return {
        "format_version": FORMAT_VERSION,
        "detour_unit_km": game.detour_unit_km,
        "platform": {"phi": game.platform.phi, "theta": game.platform.theta},
        "tasks": [
            {
                "task_id": t.task_id,
                "x": t.x,
                "y": t.y,
                "base_reward": t.base_reward,
                "reward_increment": t.reward_increment,
            }
            for t in game.tasks
        ],
        "users": [
            {
                "weights": {
                    "alpha": uw.alpha,
                    "beta": uw.beta,
                    "gamma": uw.gamma,
                    "e_min": uw.e_min,
                    "e_max": uw.e_max,
                },
                "routes": [
                    {
                        "nodes": list(r.nodes),
                        "length_km": r.length_km,
                        "detour_km": r.detour_km,
                        "congestion": r.congestion,
                        "task_ids": list(r.task_ids),
                    }
                    for r in game.route_sets[i]
                ],
            }
            for i, uw in enumerate(game.user_weights)
        ],
    }


def game_from_dict(data: dict[str, Any]) -> RouteNavigationGame:
    """Rebuild a game instance from :func:`game_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format_version {version!r} (expected {FORMAT_VERSION})"
        )
    tasks = TaskSet(
        [
            Task(
                task_id=int(t["task_id"]),
                x=float(t["x"]),
                y=float(t["y"]),
                base_reward=float(t["base_reward"]),
                reward_increment=float(t["reward_increment"]),
            )
            for t in data["tasks"]
        ]
    )
    user_weights = []
    route_sets = []
    for user in data["users"]:
        w = user["weights"]
        user_weights.append(
            UserWeights(
                alpha=float(w["alpha"]),
                beta=float(w["beta"]),
                gamma=float(w["gamma"]),
                e_min=float(w["e_min"]),
                e_max=float(w["e_max"]),
            )
        )
        route_sets.append(
            [
                Route(
                    nodes=tuple(int(n) for n in r["nodes"]),
                    length_km=float(r["length_km"]),
                    detour_km=float(r["detour_km"]),
                    congestion=float(r["congestion"]),
                    task_ids=tuple(int(k) for k in r["task_ids"]),
                )
                for r in user["routes"]
            ]
        )
    platform = PlatformWeights(
        float(data["platform"]["phi"]), float(data["platform"]["theta"])
    )
    return RouteNavigationGame.build(
        tasks,
        route_sets,
        user_weights,
        platform,
        detour_unit_km=float(data.get("detour_unit_km", 1.0)),
    )


def save_game(game: RouteNavigationGame, path: str | Path) -> None:
    """Write the instance as pretty-printed JSON."""
    Path(path).write_text(json.dumps(game_to_dict(game), indent=1))


def load_game(path: str | Path) -> RouteNavigationGame:
    """Read an instance written by :func:`save_game`."""
    return game_from_dict(json.loads(Path(path).read_text()))
