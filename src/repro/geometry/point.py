"""Points, geodesic distance, and bounding boxes.

The taxi traces carry WGS-84 latitude/longitude; the road-network substrate
works in a local planar frame (kilometres).  :func:`local_xy_km` performs the
equirectangular projection used to move between the two, which is accurate to
well under 1% at city scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A WGS-84 coordinate (degrees)."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two WGS-84 points in kilometres."""
    p1, p2 = math.radians(lat1), math.radians(lat2)
    dphi = p2 - p1
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(p1) * math.cos(p2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def euclidean(x1: float, y1: float, x2: float, y2: float) -> float:
    """Planar Euclidean distance."""
    return math.hypot(x2 - x1, y2 - y1)


def local_xy_km(
    lat: np.ndarray | float,
    lon: np.ndarray | float,
    origin_lat: float,
    origin_lon: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Project WGS-84 coordinates to a local planar frame in kilometres.

    Equirectangular projection centred on ``(origin_lat, origin_lon)``:
    ``x`` points east, ``y`` points north.  Vectorized over array inputs.
    """
    lat_arr = np.asarray(lat, dtype=float)
    lon_arr = np.asarray(lon, dtype=float)
    ky = math.pi / 180.0 * EARTH_RADIUS_KM
    kx = ky * math.cos(math.radians(origin_lat))
    x = (lon_arr - origin_lon) * kx
    y = (lat_arr - origin_lat) * ky
    return x, y


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """Axis-aligned box, reused for both lat/lon and planar frames."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate bounding box: {self}")

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> tuple[float, float]:
        return ((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def clamp(self, x: float, y: float) -> tuple[float, float]:
        """Project ``(x, y)`` onto the closest point inside the box."""
        return (
            min(max(x, self.min_x), self.max_x),
            min(max(y, self.min_y), self.max_y),
        )

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` uniform points inside the box, shape ``(n, 2)``."""
        xs = rng.uniform(self.min_x, self.max_x, size=n)
        ys = rng.uniform(self.min_y, self.max_y, size=n)
        return np.column_stack([xs, ys])

    @staticmethod
    def of_points(xy: np.ndarray) -> "BoundingBox":
        """Tight bounding box of an ``(n, 2)`` point array."""
        pts = np.asarray(xy, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] == 0:
            raise ValueError(f"expected non-empty (n, 2) array, got shape {pts.shape}")
        return BoundingBox(
            float(pts[:, 0].min()),
            float(pts[:, 1].min()),
            float(pts[:, 0].max()),
            float(pts[:, 1].max()),
        )
