"""Planar/geodesic geometry primitives used by the road-network substrate."""

from repro.geometry.point import (
    BoundingBox,
    GeoPoint,
    euclidean,
    haversine_km,
    local_xy_km,
)
from repro.geometry.polyline import (
    point_to_segment_distance,
    polyline_length,
    polyline_point_distance,
    resample_polyline,
)

__all__ = [
    "BoundingBox",
    "GeoPoint",
    "euclidean",
    "haversine_km",
    "local_xy_km",
    "point_to_segment_distance",
    "polyline_length",
    "polyline_point_distance",
    "resample_polyline",
]
