"""Polyline operations: length, resampling, and point-to-route distance.

Route/task coverage (Section 5.1 of the paper: "each recommended route may
cover some tasks") is decided by the distance from a task location to the
route polyline; these helpers are vectorized so a whole task set can be
tested against a route in one call.
"""

from __future__ import annotations

import numpy as np


def _as_polyline(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"polyline must be an (n, 2) array, got shape {pts.shape}")
    if pts.shape[0] < 1:
        raise ValueError("polyline must contain at least one point")
    return pts


def polyline_length(points: np.ndarray) -> float:
    """Total length of the polyline in frame units."""
    pts = _as_polyline(points)
    if pts.shape[0] < 2:
        return 0.0
    seg = np.diff(pts, axis=0)
    return float(np.hypot(seg[:, 0], seg[:, 1]).sum())


def point_to_segment_distance(
    px: np.ndarray,
    py: np.ndarray,
    ax: float,
    ay: float,
    bx: float,
    by: float,
) -> np.ndarray:
    """Distance from points ``(px, py)`` to segment ``(a, b)`` (vectorized)."""
    px = np.asarray(px, dtype=float)
    py = np.asarray(py, dtype=float)
    dx, dy = bx - ax, by - ay
    seg_len2 = dx * dx + dy * dy
    if seg_len2 == 0.0:
        return np.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / seg_len2
    t = np.clip(t, 0.0, 1.0)
    cx = ax + t * dx
    cy = ay + t * dy
    return np.hypot(px - cx, py - cy)


def polyline_point_distance(points: np.ndarray, xy: np.ndarray) -> np.ndarray:
    """Minimum distance from each query point to the polyline.

    Parameters
    ----------
    points:
        ``(n, 2)`` polyline vertices.
    xy:
        ``(m, 2)`` query points.

    Returns
    -------
    ``(m,)`` array of distances.
    """
    pts = _as_polyline(points)
    queries = np.asarray(xy, dtype=float)
    if queries.ndim == 1:
        queries = queries[None, :]
    if queries.shape[1] != 2:
        raise ValueError(f"query points must be (m, 2), got shape {queries.shape}")
    px, py = queries[:, 0], queries[:, 1]
    if pts.shape[0] == 1:
        return np.hypot(px - pts[0, 0], py - pts[0, 1])
    best = np.full(queries.shape[0], np.inf)
    for (ax, ay), (bx, by) in zip(pts[:-1], pts[1:]):
        np.minimum(best, point_to_segment_distance(px, py, ax, ay, bx, by), out=best)
    return best


def resample_polyline(points: np.ndarray, spacing: float) -> np.ndarray:
    """Resample the polyline at (approximately) uniform arc-length spacing.

    The first and last vertices are always kept.  Used to densify sparse GPS
    traces before map matching and to place rendering markers.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    pts = _as_polyline(points)
    if pts.shape[0] < 2:
        return pts.copy()
    seg = np.diff(pts, axis=0)
    seg_len = np.hypot(seg[:, 0], seg[:, 1])
    cum = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = cum[-1]
    if total == 0.0:
        return pts[:1].copy()
    n_samples = max(2, int(np.ceil(total / spacing)) + 1)
    targets = np.linspace(0.0, total, n_samples)
    xs = np.interp(targets, cum, pts[:, 0])
    ys = np.interp(targets, cum, pts[:, 1])
    return np.column_stack([xs, ys])
