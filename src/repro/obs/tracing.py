"""Span tracing: nested wall-clock/CPU timing of named code regions.

``with trace("distributed.slot"):`` opens a span; nesting builds a
``/``-separated path ("allocator.run/allocator.slot").  Completed spans
feed two stores:

- **aggregates** — per-path count / total / min / max wall and CPU time
  (bounded by the number of distinct paths, safe for million-span runs);
- **raw spans** — the first :data:`MAX_RAW_SPANS` spans verbatim, for
  detailed inspection of short runs.

When telemetry is off (:mod:`repro.obs.runtime`), :func:`trace` returns a
shared null context manager — the cost is one attribute check.
:func:`record` lets call sites that already measured a duration (e.g. the
allocator's per-slot stopwatch) file it as a span without timing twice.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.obs.runtime import RUNTIME

MAX_RAW_SPANS = 2000

_lock = threading.Lock()
_aggregates: dict[str, dict[str, float]] = {}
_raw: list[dict[str, Any]] = []


class _Stack(threading.local):
    def __init__(self) -> None:
        self.names: list[str] = []


_stack = _Stack()


def _file_span(
    path: str, wall: float, cpu: float, attrs: dict[str, Any]
) -> None:
    with _lock:
        agg = _aggregates.get(path)
        if agg is None:
            agg = _aggregates[path] = {
                "count": 0,
                "wall_seconds": 0.0,
                "cpu_seconds": 0.0,
                "min_seconds": wall,
                "max_seconds": wall,
            }
        agg["count"] += 1
        agg["wall_seconds"] += wall
        agg["cpu_seconds"] += cpu
        if wall < agg["min_seconds"]:
            agg["min_seconds"] = wall
        if wall > agg["max_seconds"]:
            agg["max_seconds"] = wall
        if len(_raw) < MAX_RAW_SPANS:
            span = {"path": path, "wall_seconds": wall, "cpu_seconds": cpu}
            if attrs:
                span["attrs"] = attrs
            _raw.append(span)


class Span:
    """Live span; use via :func:`trace` as a context manager."""

    __slots__ = ("name", "attrs", "path", "wall_seconds", "cpu_seconds",
                 "_t0", "_c0")

    def __init__(self, name: str, attrs: dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.path = ""
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0

    def __enter__(self) -> "Span":
        _stack.names.append(self.name)
        self.path = "/".join(_stack.names)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc: object) -> None:
        self.wall_seconds = time.perf_counter() - self._t0
        self.cpu_seconds = time.process_time() - self._c0
        _stack.names.pop()
        _file_span(self.path, self.wall_seconds, self.cpu_seconds, self.attrs)


class _NullSpan:
    """Shared no-op stand-in returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL = _NullSpan()


def trace(name: str, **attrs: Any):
    """Open a (nested) span named ``name``; no-op when telemetry is off."""
    if not RUNTIME.enabled:
        return _NULL
    return Span(name, attrs)


def record(
    name: str, wall_seconds: float, *, cpu_seconds: float = 0.0, **attrs: Any
) -> None:
    """File an already-measured duration as a span under the current path."""
    if not RUNTIME.enabled:
        return
    path = "/".join((*_stack.names, name))
    _file_span(path, wall_seconds, cpu_seconds, attrs)


def span_aggregates() -> dict[str, dict[str, float]]:
    """Copy of the per-path aggregate table."""
    with _lock:
        return {path: dict(agg) for path, agg in _aggregates.items()}


def raw_spans() -> list[dict[str, Any]]:
    """Copy of the retained raw spans (first :data:`MAX_RAW_SPANS`)."""
    with _lock:
        return [dict(s) for s in _raw]


def reset_tracing() -> None:
    with _lock:
        _aggregates.clear()
        _raw.clear()
    _stack.names.clear()


def trace_snapshot() -> dict[str, dict[str, float]]:
    """Picklable aggregate snapshot (raw spans stay local)."""
    return span_aggregates()


def merge_trace_snapshot(snap: dict[str, dict[str, float]]) -> None:
    """Fold a worker's aggregate snapshot into this process's table."""
    with _lock:
        for path, other in snap.items():
            agg = _aggregates.get(path)
            if agg is None:
                _aggregates[path] = dict(other)
                continue
            agg["count"] += other["count"]
            agg["wall_seconds"] += other["wall_seconds"]
            agg["cpu_seconds"] += other["cpu_seconds"]
            agg["min_seconds"] = min(agg["min_seconds"], other["min_seconds"])
            agg["max_seconds"] = max(agg["max_seconds"], other["max_seconds"])
