"""Run reports: one JSON document summarizing a telemetry-enabled run.

The report bundles the run configuration, the span-timing table, the full
metric snapshot, the per-message-type traffic view, and the runner's
per-spec durations — everything the CLI's ``--metrics-out`` flag writes
next to the CSV/SVG outputs.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs import tracing
from repro.obs.metrics import REGISTRY, MetricsRegistry, MetricsSnapshot
from repro.obs.timeseries import TIMESERIES

SCHEMA = "repro.run_report/v1"


def span_table(
    aggregates: dict[str, dict[str, float]] | None = None,
) -> list[dict[str, Any]]:
    """Span aggregates as rows, hottest (total wall time) first."""
    aggs = tracing.span_aggregates() if aggregates is None else aggregates
    rows = [
        {
            "path": path,
            "count": int(agg["count"]),
            "total_seconds": agg["wall_seconds"],
            "cpu_seconds": agg["cpu_seconds"],
            "mean_seconds": agg["wall_seconds"] / max(agg["count"], 1),
            "min_seconds": agg["min_seconds"],
            "max_seconds": agg["max_seconds"],
        }
        for path, agg in aggs.items()
    ]
    rows.sort(key=lambda r: -r["total_seconds"])
    return rows


def _runner_section(snap: MetricsSnapshot) -> dict[str, Any]:
    spec_series = snap.histograms.get("runner.spec_seconds", {})
    durations: list[float] = []
    total = 0.0
    count = 0
    for state in spec_series.values():
        durations.extend(state["values"])
        total += state["sum"]
        count += state["count"]
    gauges = {
        name: next(iter(series.values()))
        for name, series in snap.gauges.items()
        if name.startswith("runner.") and series
    }
    return {
        "specs": count,
        "spec_seconds": durations,
        "spec_seconds_sum": total,
        "utilization": gauges.get("runner.utilization"),
        "straggler_seconds": gauges.get("runner.straggler_seconds"),
        "wall_seconds": gauges.get("runner.wall_seconds"),
    }


def build_run_report(
    *,
    experiment: str,
    config: dict[str, Any],
    wall_seconds: float,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Assemble the run report from the live registry and span tables."""
    snap = (registry if registry is not None else REGISTRY).snapshot()
    return {
        "schema": SCHEMA,
        "experiment": experiment,
        "config": config,
        "wall_seconds": wall_seconds,
        "spans": span_table(),
        "message_traffic": {
            "sent_by_type": snap.counter_values("bus.sent_total", "type"),
            "dropped_by_type": snap.counter_values("bus.dropped_total", "type"),
            "delivered_by_type": snap.counter_values(
                "bus.delivered_total", "type"
            ),
        },
        "runner": _runner_section(snap),
        "metrics": snap.to_dict(),
        "timeseries": TIMESERIES.to_dict(),
    }


def write_run_report(path: str, report: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, default=str)
        fh.write("\n")


def format_span_table(limit: int = 12) -> str:
    """Human-readable hottest-spans table for the CLI's ``--trace`` flag."""
    rows = span_table()[:limit]
    if not rows:
        return "(no spans recorded)"
    header = f"{'span':<44} {'count':>8} {'total s':>10} {'mean ms':>10} {'max ms':>10}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['path']:<44} {r['count']:>8} {r['total_seconds']:>10.3f} "
            f"{r['mean_seconds'] * 1e3:>10.3f} {r['max_seconds'] * 1e3:>10.3f}"
        )
    return "\n".join(lines)
