"""Process-wide metrics registry: counters, gauges, and histograms.

Design goals, in order:

1. **Cheap when off** — instrument sites guard on
   :data:`repro.obs.runtime.RUNTIME` before touching the registry, so the
   disabled cost is one attribute load.  Metric objects themselves are
   always live; gating is the *call site's* job.
2. **Labeled series** — ``registry.counter("bus.sent_total", type="Grant")``
   returns the counter for that label set, creating it on first use.
3. **Picklable snapshots** — :class:`MetricsSnapshot` is plain dicts and
   lists, so process-pool workers can ship their telemetry back to the
   driver, which merges it with :meth:`MetricsRegistry.merge_snapshot`.
4. **Stdlib only** — no numpy in the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.quantiles import Reservoir, quantile

# ((key, value), ...) sorted by key — hashable, picklable label identity.
LabelKey = tuple[tuple[str, str], ...]

#: Default histogram buckets: exponential decades covering microseconds to
#: minutes — suited to the span/slot durations this repo measures.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 60.0, 600.0,
)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """Last-written value with a high-water helper."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def max_of(self, v: float) -> None:
        """High-water update: keep the maximum ever seen."""
        if v > self.value:
            self.value = float(v)


class Histogram:
    """Fixed-bucket histogram plus a reservoir for streaming quantiles.

    ``bucket_counts`` has one overflow slot beyond the last bound, so its
    length is ``len(buckets) + 1``.  Quantiles interpolate over the
    reservoir sample via :func:`repro.obs.quantiles.quantile` — the same
    implementation :class:`repro.utils.timer.Timer` uses for lap
    percentiles.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max",
                 "_reservoir")

    def __init__(
        self,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        *,
        reservoir_cap: int = 1024,
    ) -> None:
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._reservoir = Reservoir(reservoir_cap)

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        idx = 0
        for bound in self.buckets:
            if v <= bound:
                break
            idx += 1
        self.bucket_counts[idx] += 1
        self._reservoir.add(v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def values(self) -> list[float]:
        """The reservoir sample (all observations until the cap)."""
        return list(self._reservoir.values)

    def quantile(self, q: float) -> float:
        """Streaming quantile estimate; 0.0 before any observation."""
        return quantile(self._reservoir.values, q) if self.count else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    # ------------------------------------------------------------- snapshot
    def state(self) -> dict[str, Any]:
        """Picklable state for snapshot/merge."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "values": list(self._reservoir.values),
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's state into this one (same buckets)."""
        if tuple(state["buckets"]) != self.buckets:
            raise ValueError("cannot merge histograms with different buckets")
        self.count += state["count"]
        self.sum += state["sum"]
        for bound in ("min", "max"):
            other = state[bound]
            if other is None:
                continue
            mine = getattr(self, bound)
            if mine is None:
                setattr(self, bound, other)
            else:
                pick = min if bound == "min" else max
                setattr(self, bound, pick(mine, other))
        for i, n in enumerate(state["bucket_counts"]):
            self.bucket_counts[i] += n
        self._reservoir.extend(state["values"])


@dataclass
class MetricsSnapshot:
    """Plain-data copy of a registry — picklable and mergeable.

    Counters merge by addition, gauges by maximum (the registry only uses
    gauges for high-water marks), histograms by state folding.
    """

    counters: dict[str, dict[LabelKey, float]] = field(default_factory=dict)
    gauges: dict[str, dict[LabelKey, float]] = field(default_factory=dict)
    histograms: dict[str, dict[LabelKey, dict]] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        for name, series in other.counters.items():
            mine = self.counters.setdefault(name, {})
            for key, v in series.items():
                mine[key] = mine.get(key, 0.0) + v
        for name, series in other.gauges.items():
            mine = self.gauges.setdefault(name, {})
            for key, v in series.items():
                mine[key] = max(mine.get(key, v), v)
        for name, series in other.histograms.items():
            mine = self.histograms.setdefault(name, {})
            for key, state in series.items():
                if key in mine:
                    h = Histogram(tuple(mine[key]["buckets"]))
                    h.merge_state(mine[key])
                    h.merge_state(state)
                    mine[key] = h.state()
                else:
                    mine[key] = state
        return self

    def counter_values(self, name: str, label: str | None = None) -> dict:
        """Counter series as ``{label_value: count}`` (or ``{(): count}``).

        With ``label`` set, keys are that label's values — the common
        "per-type" view, e.g. ``{"TaskCountUpdate": 40, "Grant": 12}``.
        """
        series = self.counters.get(name, {})
        if label is None:
            return dict(series)
        out: dict[str, float] = {}
        for key, v in series.items():
            values = dict(key)
            out[values.get(label, "")] = out.get(values.get(label, ""), 0.0) + v
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (label tuples become dicts)."""

        def rows(series: dict[LabelKey, Any], render) -> list[dict]:
            return [
                {"labels": dict(key), **render(v)}
                for key, v in sorted(series.items())
            ]

        def hist_row(state: dict) -> dict:
            values = state["values"]
            return {
                "count": state["count"],
                "sum": state["sum"],
                "min": state["min"],
                "max": state["max"],
                "p50": quantile(values, 0.50) if values else None,
                "p95": quantile(values, 0.95) if values else None,
                "bucket_counts": {
                    f"le_{bound:g}": n
                    for bound, n in zip(state["buckets"], state["bucket_counts"])
                }
                | {"overflow": state["bucket_counts"][-1]},
                "values": values,
            }

        return {
            "counters": {
                name: rows(series, lambda v: {"value": v})
                for name, series in sorted(self.counters.items())
            },
            "gauges": {
                name: rows(series, lambda v: {"value": v})
                for name, series in sorted(self.gauges.items())
            },
            "histograms": {
                name: rows(series, hist_row)
                for name, series in sorted(self.histograms.items())
            },
        }


class _Family:
    """All series of one metric name (one per label set)."""

    __slots__ = ("kind", "name", "series", "hist_kwargs")

    def __init__(self, kind: str, name: str, hist_kwargs: dict | None = None):
        self.kind = kind
        self.name = name
        self.series: dict[LabelKey, Any] = {}
        self.hist_kwargs = hist_kwargs or {}


class MetricsRegistry:
    """Named, labeled metric families with snapshot/reset semantics."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -------------------------------------------------------------- getters
    def _series(self, kind: str, name: str, labels: dict, factory) -> Any:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(kind, name)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        key = _label_key(labels)
        metric = family.series.get(key)
        if metric is None:
            metric = family.series[key] = factory()
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._series("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._series("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._series(
            "histogram", name, labels, lambda: Histogram(buckets)
        )

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        """Drop every family (fresh registry semantics)."""
        self._families.clear()

    def __iter__(self) -> Iterator[tuple[str, str, LabelKey, Any]]:
        for name, family in self._families.items():
            for key, metric in family.series.items():
                yield family.kind, name, key, metric

    def snapshot(self) -> MetricsSnapshot:
        snap = MetricsSnapshot()
        for kind, name, key, metric in self:
            if kind == "counter":
                snap.counters.setdefault(name, {})[key] = metric.value
            elif kind == "gauge":
                snap.gauges.setdefault(name, {})[key] = metric.value
            else:
                snap.histograms.setdefault(name, {})[key] = metric.state()
        return snap

    def merge_snapshot(self, snap: MetricsSnapshot) -> None:
        """Fold a worker's snapshot into the live registry."""
        for name, series in snap.counters.items():
            for key, v in series.items():
                self.counter(name, **dict(key)).inc(v)
        for name, series in snap.gauges.items():
            for key, v in series.items():
                self.gauge(name, **dict(key)).max_of(v)
        for name, series in snap.histograms.items():
            for key, state in series.items():
                self.histogram(
                    name, buckets=tuple(state["buckets"]), **dict(key)
                ).merge_state(state)

    def to_dict(self) -> dict[str, Any]:
        return self.snapshot().to_dict()


#: The process-wide default registry all instrument sites write to.
REGISTRY = MetricsRegistry()
