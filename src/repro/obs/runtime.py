"""Process-wide telemetry switch.

Telemetry is **off** by default.  Every instrumented site in the hot paths
guards on the single shared ``RUNTIME.enabled`` attribute, so the disabled
cost is one attribute load plus a branch — cheap enough that the tier-1
benchmarks are unaffected.

The ``REPRO_TELEMETRY`` environment variable (any value other than empty
or ``0``) enables telemetry at import time; this is how enablement
propagates to ``spawn``-started process-pool workers.
"""

from __future__ import annotations

import os


class _Runtime:
    """Mutable holder so instrument sites can cache one reference."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = os.environ.get("REPRO_TELEMETRY", "0") not in ("", "0")


RUNTIME = _Runtime()


def enabled() -> bool:
    """Whether telemetry collection is currently on."""
    return RUNTIME.enabled


def enable() -> None:
    """Turn telemetry collection on (counters, spans, events)."""
    RUNTIME.enabled = True


def disable() -> None:
    """Turn telemetry collection off (instrument sites become no-ops)."""
    RUNTIME.enabled = False
