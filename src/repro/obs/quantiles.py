"""Shared quantile estimation for the two timing paths.

:func:`quantile` is the single interpolating-quantile implementation used
by both :class:`repro.utils.timer.Timer` (lap percentiles) and
:class:`repro.obs.metrics.Histogram` (streaming quantiles over a bounded
reservoir), so the numbers they report are directly comparable.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence


def quantile(values: Sequence[float], q: float) -> float:
    """Interpolated quantile ``q`` (in ``[0, 1]``) of ``values``.

    Linear interpolation between closest ranks (numpy's default method),
    implemented stdlib-only so the obs layer has no heavy imports.
    Raises ``ValueError`` on an empty sequence.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    if not values:
        raise ValueError("quantile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


def percentiles(values: Sequence[float], qs: Iterable[float]) -> list[float]:
    """Several quantiles of the same sequence (sorted once)."""
    ordered = sorted(values)
    return [quantile(ordered, q) for q in qs]


class Reservoir:
    """Bounded uniform sample of a value stream (Vitter's Algorithm R).

    Keeps at most ``cap`` values; once full, each new value replaces a
    random slot with probability ``cap / seen``.  A private seeded
    :class:`random.Random` keeps runs reproducible.
    """

    __slots__ = ("cap", "seen", "values", "_rng")

    def __init__(self, cap: int = 1024, *, seed: int = 0x0B5) -> None:
        if cap < 1:
            raise ValueError(f"cap must be >= 1, got {cap}")
        self.cap = cap
        self.seen = 0
        self.values: list[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        self.seen += 1
        if len(self.values) < self.cap:
            self.values.append(float(value))
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.cap:
            self.values[slot] = float(value)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def quantile(self, q: float) -> float:
        return quantile(self.values, q)

    def __len__(self) -> int:
        return len(self.values)
