"""Telemetry subsystem: metrics registry, span tracing, structured events.

Everything here is **off by default** and costs roughly an attribute check
when disabled, so instrumented hot paths (allocator slots, the message
bus, path search) stay benchmark-neutral.  Enable per run:

    import repro.obs as obs

    obs.enable()
    ...                       # run experiments
    print(obs.REGISTRY.to_dict())

or scoped (tests):

    with obs.session():
        DistributedSimulation(game).run()
        sent = obs.REGISTRY.snapshot().counter_values("bus.sent_total", "type")

Process-pool workers ship their telemetry back to the driver as a
picklable :class:`TelemetrySnapshot`; ``repro.experiments.runner`` merges
them automatically.  See ``docs/observability.md`` for the metric/event
catalog and the CLI flags.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.obs.events import configure_logging, event, reset_logging
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.quantiles import Reservoir, quantile
from repro.obs.runtime import RUNTIME, disable, enable, enabled
from repro.obs.timeseries import TIMESERIES, Series, TimeSeriesStore
from repro.obs.tracing import (
    merge_trace_snapshot,
    raw_spans,
    record,
    reset_tracing,
    span_aggregates,
    trace,
    trace_snapshot,
)

__all__ = [
    "REGISTRY",
    "RUNTIME",
    "TIMESERIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Reservoir",
    "Series",
    "TelemetrySnapshot",
    "TimeSeriesStore",
    "configure_logging",
    "counter",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "histogram",
    "label_snapshot",
    "merge_snapshot",
    "merge_trace_snapshot",
    "quantile",
    "raw_spans",
    "record",
    "reset",
    "reset_logging",
    "reset_tracing",
    "sample",
    "session",
    "snapshot",
    "span_aggregates",
    "trace",
    "trace_snapshot",
]


def counter(name: str, **labels: Any) -> Counter:
    """Counter from the process-wide registry (created on first use)."""
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: Any) -> Gauge:
    """Gauge from the process-wide registry."""
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: Any) -> Histogram:
    """Histogram from the process-wide registry (default buckets)."""
    return REGISTRY.histogram(name, **labels)


def sample(name: str, t: float, value: float, **labels: Any) -> None:
    """Append one ``(t, value)`` sample to the process-wide time series.

    No-op while telemetry is off — safe to leave on hot paths.
    """
    if RUNTIME.enabled:
        TIMESERIES.record(name, t, value, **labels)


@dataclass
class TelemetrySnapshot:
    """Combined picklable telemetry state (metrics, spans, time series)."""

    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    spans: dict[str, dict[str, float]] = field(default_factory=dict)
    timeseries: dict[str, dict] = field(default_factory=dict)


def snapshot() -> TelemetrySnapshot:
    """Picklable copy of the process's telemetry state."""
    return TelemetrySnapshot(
        metrics=REGISTRY.snapshot(),
        spans=trace_snapshot(),
        timeseries=TIMESERIES.snapshot(),
    )


def merge_snapshot(snap: TelemetrySnapshot) -> None:
    """Fold a worker's snapshot into this process's registry/span table."""
    REGISTRY.merge_snapshot(snap.metrics)
    merge_trace_snapshot(snap.spans)
    # Snapshots from before the time-series store default to empty.
    TIMESERIES.merge_snapshot(getattr(snap, "timeseries", {}) or {})


def label_snapshot(snap: TelemetrySnapshot, **labels: Any) -> TelemetrySnapshot:
    """Copy of a snapshot with ``labels`` stamped onto every series.

    Metric and time-series label sets gain the given labels (existing
    labels win on conflict — stamping never overwrites); span paths gain
    a ``" [k=v]"`` suffix so hotspot tables attribute time per source
    (e.g. per shard) instead of silently merging identical paths.
    """
    from repro.obs.metrics import _label_key

    stamp = {k: str(v) for k, v in labels.items()}
    suffix = " [" + ",".join(f"{k}={v}" for k, v in sorted(stamp.items())) + "]"

    def relabel(series: dict) -> dict:
        out: dict = {}
        for key, value in series.items():
            merged = {**stamp, **dict(key)}
            out[_label_key(merged)] = value
        return out

    metrics = MetricsSnapshot(
        counters={n: relabel(s) for n, s in snap.metrics.counters.items()},
        gauges={n: relabel(s) for n, s in snap.metrics.gauges.items()},
        histograms={n: relabel(s) for n, s in snap.metrics.histograms.items()},
    )
    spans = {f"{path}{suffix}": dict(agg) for path, agg in snap.spans.items()}
    timeseries = {
        n: relabel(family)
        for n, family in (getattr(snap, "timeseries", {}) or {}).items()
    }
    return TelemetrySnapshot(metrics=metrics, spans=spans, timeseries=timeseries)


def reset() -> None:
    """Clear all collected telemetry (registry, spans, time series)."""
    REGISTRY.reset()
    reset_tracing()
    TIMESERIES.reset()


@contextmanager
def session(*, fresh: bool = True):
    """Enable telemetry for a scope, restoring the previous state after.

    ``fresh=True`` (default) clears previously collected telemetry on
    entry so the scope observes only its own activity.
    """
    prev = RUNTIME.enabled
    if fresh:
        reset()
    enable()
    try:
        yield REGISTRY
    finally:
        RUNTIME.enabled = prev
