"""Prometheus text exposition and an optional HTTP scrape endpoint.

Stdlib only.  :func:`prometheus_exposition` renders a
:class:`~repro.obs.metrics.MetricsSnapshot` (plus, optionally, the latest
value of every time series) in the Prometheus text exposition format
(version 0.0.4): dotted repo metric names become underscore names
(``serve.rounds_total`` → ``serve_rounds_total``), label sets render as
``{k="v"}`` pairs, and histograms expand to cumulative ``_bucket`` /
``_sum`` / ``_count`` families.

:class:`ScrapeServer` serves that text from a daemon thread at
``/metrics`` so a live serve session can be scraped while it runs:

    with obs.session(), ScrapeServer() as srv:
        print(srv.url)          # http://127.0.0.1:<port>/metrics
        session.run_round()
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import REGISTRY, LabelKey, MetricsSnapshot
from repro.obs.timeseries import TIMESERIES

__all__ = ["prometheus_exposition", "ScrapeServer"]

_NAME_SUB = re.compile(r"[^a-zA-Z0-9_:]").sub
_LABEL_ESCAPES = str.maketrans({"\\": r"\\", '"': r"\"", "\n": r"\n"})


def _metric_name(name: str) -> str:
    sanitized = _NAME_SUB("_", name)
    return sanitized if not sanitized[:1].isdigit() else f"_{sanitized}"


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(key) + extra
    if not pairs:
        return ""
    body = ",".join(
        f'{_metric_name(k)}="{str(v).translate(_LABEL_ESCAPES)}"'
        for k, v in pairs
    )
    return f"{{{body}}}"


def _fmt(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    return repr(float(v))


def prometheus_exposition(
    snapshot: MetricsSnapshot | None = None,
    *,
    timeseries: dict[str, dict[LabelKey, dict]] | None = None,
    include_timeseries: bool = True,
) -> str:
    """Render metrics (and latest time-series values) as Prometheus text.

    With no arguments, exports the live process-wide registry and store.
    Time series export their most recent sample as a gauge — the natural
    scrape view of a curve that the store keeps in full.
    """
    snap = REGISTRY.snapshot() if snapshot is None else snapshot
    if timeseries is None and include_timeseries:
        timeseries = TIMESERIES.snapshot()
    lines: list[str] = []

    for name, series in sorted(snap.counters.items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        for key, value in sorted(series.items()):
            lines.append(f"{metric}{_render_labels(key)} {_fmt(value)}")

    for name, series in sorted(snap.gauges.items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        for key, value in sorted(series.items()):
            lines.append(f"{metric}{_render_labels(key)} {_fmt(value)}")

    for name, series in sorted(snap.histograms.items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        for key, state in sorted(series.items()):
            cumulative = 0
            for bound, count in zip(state["buckets"], state["bucket_counts"]):
                cumulative += count
                le = _render_labels(key, (("le", _fmt(bound)),))
                lines.append(f"{metric}_bucket{le} {cumulative}")
            cumulative += state["bucket_counts"][-1]
            inf = _render_labels(key, (("le", "+Inf"),))
            lines.append(f"{metric}_bucket{inf} {cumulative}")
            lines.append(f"{metric}_sum{_render_labels(key)} {_fmt(state['sum'])}")
            lines.append(f"{metric}_count{_render_labels(key)} {state['count']}")

    if include_timeseries and timeseries:
        for name, family in sorted(timeseries.items()):
            metric = _metric_name(name)
            rows = [
                (key, state["samples"][-1][1])
                for key, state in sorted(family.items())
                if state["samples"]
            ]
            if not rows:
                continue
            lines.append(f"# TYPE {metric} gauge")
            for key, value in rows:
                lines.append(f"{metric}{_render_labels(key)} {_fmt(value)}")

    return "\n".join(lines) + "\n"


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics → live exposition; anything else → 404.  Silent log."""

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path.split("?", 1)[0] not in ("/metrics", "/"):
            self.send_error(404)
            return
        body = None
        for _ in range(3):
            # The serving thread mutates the registry concurrently; a dict
            # grown mid-snapshot raises RuntimeError — retry, don't crash.
            try:
                body = prometheus_exposition().encode("utf-8")
                break
            except RuntimeError:
                continue
        if body is None:
            self.send_error(503, "registry busy")
            return
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # pragma: no cover
        return


class ScrapeServer:
    """Background HTTP endpoint exposing the live registry at ``/metrics``.

    ``port=0`` (default) binds an ephemeral port; read :attr:`port` /
    :attr:`url` after :meth:`start`.  The serving thread is a daemon, so a
    forgotten server never blocks interpreter exit — but prefer the
    context-manager form, which stops it deterministically.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.host = host
        self._requested_port = port
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ScrapeServer":
        if self._server is not None:
            return self
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), _MetricsHandler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-scrape",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("scrape server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "ScrapeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
