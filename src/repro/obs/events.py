"""Structured event log on top of stdlib ``logging``.

Events are name + flat key/value fields; the JSON-lines handler renders
each record as one JSON object per line so run logs are machine-parsable:

    {"event": "runner.spec_done", "index": 3, "level": "info",
     "seconds": 0.41, "ts": 1733489183.2}

:func:`event` is a no-op (one attribute check) while telemetry is off, and
respects the ``repro`` logger's level, so leaving instrumented ``event``
calls in hot paths is free in production runs.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Any

from repro.obs.runtime import RUNTIME

LOGGER_NAME = "repro"

_logger = logging.getLogger(LOGGER_NAME)
_handlers: list[logging.Handler] = []


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record; event fields are flattened in."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "event": record.getMessage(),
        }
        payload.update(getattr(record, "repro_fields", {}))
        return json.dumps(payload, default=str, sort_keys=True)


def event(name: str, *, level: int = logging.INFO, **fields: Any) -> None:
    """Emit a structured event (no-op while telemetry is off)."""
    if not RUNTIME.enabled:
        return
    if not _logger.isEnabledFor(level):
        return
    _logger.log(level, name, extra={"repro_fields": fields})


def configure_logging(
    level: int | str = "INFO",
    *,
    json_path: str | None = None,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Attach JSON-lines handlers to the ``repro`` logger.

    ``json_path`` appends one JSON object per event to that file;
    ``stream`` (e.g. ``sys.stderr``) mirrors events there.  Calling again
    replaces the previously configured handlers.
    """
    reset_logging()
    lvl = level if isinstance(level, int) else getattr(logging, str(level).upper())
    _logger.setLevel(lvl)
    _logger.propagate = False
    formatter = JsonLinesFormatter()
    if json_path is not None:
        fh = logging.FileHandler(json_path, encoding="utf-8")
        fh.setFormatter(formatter)
        _logger.addHandler(fh)
        _handlers.append(fh)
    if stream is not None:
        sh = logging.StreamHandler(stream)
        sh.setFormatter(formatter)
        _logger.addHandler(sh)
        _handlers.append(sh)
    return _logger


def reset_logging() -> None:
    """Detach and close the handlers installed by :func:`configure_logging`."""
    for handler in _handlers:
        _logger.removeHandler(handler)
        handler.close()
    _handlers.clear()
