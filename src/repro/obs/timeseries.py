"""Bounded time-series store: metric × labels → ``(t, value)`` samples.

Counters and gauges (:mod:`repro.obs.metrics`) answer "how much, in
total"; the serving layer's health questions are about *trajectories* —
is the potential still climbing, is the Nash residual shrinking, is one
shard's epoch time drifting away from the others.  This module stores
those curves with the same contracts the registry already honours:

1. **Cheap when off** — call sites guard on ``repro.obs.runtime.RUNTIME``
   (via :func:`repro.obs.sample`), so the disabled cost stays one
   attribute check.
2. **Bounded** — every series is a ring buffer (default
   :data:`DEFAULT_CAP` samples); long serve sessions evict their oldest
   samples instead of growing without bound, and the eviction count is
   kept so consumers know the window is clipped.
3. **Labeled** — ``store.record("serve.epoch_seconds", t, v, shard=3)``
   keeps per-shard curves attributable after cross-process merges.
4. **Picklable snapshot/merge** — :meth:`TimeSeriesStore.snapshot` is
   plain dicts/lists; the driver folds worker snapshots with
   :meth:`TimeSeriesStore.merge_snapshot`, merging samples in time order
   and re-applying the ring bound.

Timestamps are caller-defined — serving code uses round/sync indices so
curves from different processes align; wall-clock seconds work too.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator

from repro.obs.metrics import LabelKey, _label_key

__all__ = ["DEFAULT_CAP", "Series", "TimeSeriesStore", "TIMESERIES"]

#: Default ring capacity per series — generous for per-round serving
#: curves (thousands of rounds) while bounding week-long sessions.
DEFAULT_CAP = 4096


class Series:
    """One ring-buffered ``(t, value)`` sample sequence."""

    __slots__ = ("cap", "evicted", "_ring")

    def __init__(self, cap: int = DEFAULT_CAP) -> None:
        if cap < 1:
            raise ValueError(f"series capacity must be >= 1, got {cap}")
        self.cap = int(cap)
        self.evicted = 0
        self._ring: deque[tuple[float, float]] = deque(maxlen=self.cap)

    def append(self, t: float, value: float) -> None:
        if len(self._ring) == self.cap:
            self.evicted += 1
        self._ring.append((float(t), float(value)))

    def __len__(self) -> int:
        return len(self._ring)

    def samples(self) -> list[tuple[float, float]]:
        """The retained ``(t, value)`` samples, oldest first."""
        return list(self._ring)

    def values(self) -> list[float]:
        return [v for _, v in self._ring]

    @property
    def last(self) -> float | None:
        """Most recent value (None while empty)."""
        return self._ring[-1][1] if self._ring else None

    # ------------------------------------------------------------- snapshot
    def state(self) -> dict[str, Any]:
        """Picklable state for snapshot/merge."""
        return {
            "cap": self.cap,
            "evicted": self.evicted,
            "samples": [[t, v] for t, v in self._ring],
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another series' samples in, keeping time order.

        The merged sequence is sorted by ``t`` (stable: existing samples
        win ties) and re-clipped to this series' capacity, evicting from
        the oldest end; eviction counts add up so the clipped-window
        signal survives merges.
        """
        merged = sorted(
            list(self._ring) + [(float(t), float(v)) for t, v in state["samples"]],
            key=lambda s: s[0],
        )
        self.evicted += int(state["evicted"])
        if len(merged) > self.cap:
            self.evicted += len(merged) - self.cap
            merged = merged[-self.cap:]
        self._ring = deque(merged, maxlen=self.cap)


class TimeSeriesStore:
    """Named, labeled ring-buffer series with snapshot/merge semantics."""

    def __init__(self, default_cap: int = DEFAULT_CAP) -> None:
        self.default_cap = default_cap
        self._series: dict[str, dict[LabelKey, Series]] = {}

    def series(
        self, name: str, *, cap: int | None = None, **labels: Any
    ) -> Series:
        """The series for ``(name, labels)``, created on first use.

        ``cap`` only applies at creation; an existing series keeps its
        original capacity.
        """
        family = self._series.get(name)
        if family is None:
            family = self._series[name] = {}
        key = _label_key(labels)
        series = family.get(key)
        if series is None:
            series = family[key] = Series(
                self.default_cap if cap is None else cap
            )
        return series

    def record(
        self, name: str, t: float, value: float, **labels: Any
    ) -> None:
        """Append one ``(t, value)`` sample to the named series."""
        self.series(name, **labels).append(t, value)

    def get(self, name: str, **labels: Any) -> list[tuple[float, float]]:
        """Samples of one series ([] if it does not exist)."""
        family = self._series.get(name, {})
        series = family.get(_label_key(labels))
        return series.samples() if series is not None else []

    def __iter__(self) -> Iterator[tuple[str, LabelKey, Series]]:
        for name, family in self._series.items():
            for key, series in family.items():
                yield name, key, series

    # ------------------------------------------------------------ lifecycle
    def reset(self) -> None:
        self._series.clear()

    def snapshot(self) -> dict[str, dict[LabelKey, dict]]:
        """Plain-data copy — picklable, mergeable."""
        return {
            name: {key: series.state() for key, series in family.items()}
            for name, family in self._series.items()
        }

    def merge_snapshot(self, snap: dict[str, dict[LabelKey, dict]]) -> None:
        """Fold a worker's snapshot into the live store."""
        for name, family in snap.items():
            for key, state in family.items():
                self.series(
                    name, cap=state["cap"], **dict(key)
                ).merge_state(state)

    def to_dict(self) -> dict[str, list[dict]]:
        """JSON-ready form (label tuples become dicts), sorted by name."""
        return {
            name: [
                {
                    "labels": dict(key),
                    "cap": series.cap,
                    "evicted": series.evicted,
                    "samples": [[t, v] for t, v in series.samples()],
                }
                for key, series in sorted(family.items())
            ]
            for name, family in sorted(self._series.items())
        }


#: The process-wide default store all instrument sites write to.
TIMESERIES = TimeSeriesStore()
