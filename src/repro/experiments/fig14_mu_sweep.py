"""Extension experiment (not in the paper): reward-curvature ablation.

Sweeps the reward-increment parameter ``mu`` (Eq. 1) applied uniformly to
every task.  ``mu = 0`` is pure reward splitting (hard congestion
externality); larger ``mu`` softens sharing because the pool grows with
participation.  Expected: overlap ratio and total profit rise with ``mu``
— quantifying how much the log bonus mitigates the anarchy cost that
DESIGN.md calls out as a design choice.
"""

from __future__ import annotations

from repro.experiments.common import RepSpec, make_specs, build_game_for_spec, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.metrics import average_reward, overlap_ratio

MU_VALUES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
N_USERS = 30
N_TASKS = 40


def _worker(spec: RepSpec) -> list[dict]:
    mu = spec.scenario_overrides["reward_increment_range"][0]
    game = build_game_for_spec(spec)
    result = run_algorithms_on_game(spec, game)["DGRN"]
    return [
        {
            "mu": mu,
            "rep": spec.rep,
            "total_profit": result.total_profit,
            "overlap_ratio": overlap_ratio(result.profile),
            "average_reward": average_reward(result.profile),
            "decision_slots": result.decision_slots,
        }
    ]


def run(
    *,
    repetitions: int = 20,
    seed: int | None = 0,
    processes: int | None = None,
    city: str = "shanghai",
    mu_values=MU_VALUES,
) -> ResultTable:
    """Mean profit/overlap/reward per uniform ``mu`` value."""
    specs: list[RepSpec] = []
    for mu in mu_values:
        specs.extend(
            make_specs(
                "fig14",
                cities=[city],
                user_counts=[N_USERS],
                task_counts=[N_TASKS],
                algorithms=("DGRN",),
                repetitions=repetitions,
                seed=(seed or 0) + int(mu * 1000),
                scenario_overrides={"reward_increment_range": (mu, mu)},
            )
        )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["mu"],
        values=["total_profit", "overlap_ratio", "average_reward", "decision_slots"],
        stats=("mean", "std"),
    )
