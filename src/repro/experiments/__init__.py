"""Experiment harness: one runnable module per paper table/figure.

See :mod:`repro.experiments.registry` for the full index and
``python -m repro.experiments --list`` for the CLI.
"""

from repro.experiments.results import ResultTable
from repro.experiments.runner import default_processes, repeat_map

__all__ = [
    "ResultTable",
    "default_processes",
    "get_experiment",
    "repeat_map",
    "run_experiment",
]


def run_experiment(key: str, **kwargs):
    """Run a registered experiment by key (lazy import avoids cycles)."""
    from repro.experiments.registry import run_experiment as _run

    return _run(key, **kwargs)


def get_experiment(key: str):
    """Look up a registered experiment by key (lazy import avoids cycles)."""
    from repro.experiments.registry import get_experiment as _get

    return _get(key)
