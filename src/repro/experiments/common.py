"""Shared plumbing for the per-figure experiment modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.algorithms import make_allocator
from repro.algorithms.base import AllocationResult, RunConfig
from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.obs.tracing import trace
from repro.scenario import ScenarioConfig, build_scenario
from repro.utils.rng import spawn_children

CITIES = ("shanghai", "roma", "epfl")

# Algorithms compared in the convergence figures (Figs. 4-5).
CONVERGENCE_ALGOS = ("DGRN", "BRUN", "BUAU", "BATS", "MUUN")


@dataclass(frozen=True)
class RepSpec:
    """One repetition of one configuration — picklable process-pool unit."""

    experiment: str
    city: str
    n_users: int
    n_tasks: int
    rep: int
    seed: int
    algorithms: tuple[str, ...]
    scenario_overrides: dict[str, Any] = field(default_factory=dict)
    record_history: bool = False


def make_specs(
    experiment: str,
    *,
    cities,
    user_counts,
    task_counts,
    algorithms,
    repetitions: int,
    seed,
    scenario_overrides: dict[str, Any] | None = None,
    record_history: bool = False,
) -> list[RepSpec]:
    """Cross-product of configurations x repetitions with derived seeds."""
    configs = [
        (city, m, n)
        for city in cities
        for m in user_counts
        for n in task_counts
    ]
    total = len(configs) * repetitions
    rngs = spawn_children(seed, total)
    specs: list[RepSpec] = []
    i = 0
    for city, m, n in configs:
        for rep in range(repetitions):
            specs.append(
                RepSpec(
                    experiment=experiment,
                    city=city,
                    n_users=m,
                    n_tasks=n,
                    rep=rep,
                    seed=int(rngs[i].integers(2**62)),
                    algorithms=tuple(algorithms),
                    scenario_overrides=dict(scenario_overrides or {}),
                    record_history=record_history,
                )
            )
            i += 1
    return specs


def build_game_for_spec(spec: RepSpec) -> RouteNavigationGame:
    """Materialize the spec's scenario (seeded by the spec)."""
    cfg = ScenarioConfig(
        city=spec.city,
        n_users=spec.n_users,
        n_tasks=spec.n_tasks,
        seed=spec.seed,
        **spec.scenario_overrides,
    )
    with trace("spec.build_game", city=spec.city, users=spec.n_users):
        return build_scenario(cfg).game


def run_algorithms_on_game(
    spec: RepSpec, game: RouteNavigationGame
) -> dict[str, AllocationResult]:
    """Run every requested algorithm from a *common* random initial profile.

    Sharing the initial profile across algorithms removes one source of
    between-algorithm variance, as is standard for convergence comparisons.
    """
    rng = np.random.default_rng(spec.seed ^ 0x5EED)
    initial = StrategyProfile.random(game, rng)
    out: dict[str, AllocationResult] = {}
    with trace("spec.algorithms"):
        for idx, name in enumerate(spec.algorithms):
            algo = make_allocator(
                name,
                seed=np.random.default_rng((spec.seed + 7919 * idx) & (2**63 - 1)),
                config=RunConfig(record_history=spec.record_history),
            )
            out[name] = algo.run(game, initial=initial)
    return out
