"""Table 3: MUUN's selected-user count vs. overlap ratio (Shanghai).

Paper shape: varying the total task count from 50 to 90 raises the overlap
ratio slightly (denser coverage -> more shared tasks) and *lowers* the
average number of users PUU can grant per slot — updates conflict more, so
fewer disjoint ``B_i`` sets fit in one slot.
"""

from __future__ import annotations

from collections import Counter

from repro.experiments.common import RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.metrics import overlap_ratio

TASK_COUNTS = (50, 60, 70, 80, 90)
N_USERS = 40


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    result = run_algorithms_on_game(spec, game)["MUUN"]
    # Selected users per slot = granted moves grouped by slot id.
    per_slot = Counter(m.slot for m in result.moves)
    mean_selected = (
        sum(per_slot.values()) / len(per_slot) if per_slot else 0.0
    )
    return [
        {
            "n_tasks": spec.n_tasks,
            "rep": spec.rep,
            "overlap_ratio": overlap_ratio(result.profile),
            "selected_users": mean_selected,
            "decision_slots": result.decision_slots,
        }
    ]


def run(
    *,
    repetitions: int = 50,
    seed: int | None = 0,
    processes: int | None = None,
    task_counts=TASK_COUNTS,
) -> ResultTable:
    """Mean overlap ratio and PUU grant size per task count (Shanghai)."""
    specs = make_specs(
        "table3",
        cities=["shanghai"],
        user_counts=[N_USERS],
        task_counts=task_counts,
        algorithms=("MUUN",),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["n_tasks"],
        values=["overlap_ratio", "selected_users"],
        stats=("mean",),
    )
