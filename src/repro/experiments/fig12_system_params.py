"""Fig. 12: influence of the platform weights ``phi`` and ``theta``.

Paper shape (Shanghai): average reward *decreases* as phi and theta grow
(the platform de-emphasizes rewards); the average detour distance decreases
with phi; the average congestion level decreases with theta.

One scenario is built per repetition and re-weighted with
:meth:`RouteNavigationGame.with_platform` across the grid, so the sweep
isolates the platform weights from substrate randomness.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import DGRN
from repro.algorithms.base import RunConfig
from repro.core.profile import StrategyProfile
from repro.core.weights import PlatformWeights
from repro.experiments.common import RepSpec, make_specs
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.metrics import average_congestion, average_detour, average_reward
from repro.scenario import ScenarioConfig, build_scenario

PHI_VALUES = (0.0, 0.2, 0.4, 0.6, 0.8)
THETA_VALUES = (0.0, 0.2, 0.4, 0.6, 0.8)
N_USERS = 30
N_TASKS = 50


def _worker(spec: RepSpec) -> list[dict]:
    cfg = ScenarioConfig(
        city=spec.city,
        n_users=spec.n_users,
        n_tasks=spec.n_tasks,
        seed=spec.seed,
        phi=0.4,
        theta=0.4,
    )
    base_game = build_scenario(cfg).game
    rng = np.random.default_rng(spec.seed ^ 0x5EED)
    initial = StrategyProfile.random(base_game, rng).choices
    rows: list[dict] = []
    for phi in PHI_VALUES:
        for theta in THETA_VALUES:
            game = base_game.with_platform(PlatformWeights(phi, theta))
            result = DGRN(
                seed=np.random.default_rng(spec.seed),
                config=RunConfig(record_history=False),
            ).run(game, initial=initial)
            rows.append(
                {
                    "rep": spec.rep,
                    "phi": phi,
                    "theta": theta,
                    "average_reward": average_reward(result.profile),
                    "detour": average_detour(result.profile),
                    "congestion": average_congestion(result.profile),
                }
            )
    return rows


def run(
    *,
    repetitions: int = 20,
    seed: int | None = 0,
    processes: int | None = None,
    city: str = "shanghai",
) -> ResultTable:
    """Mean reward/detour/congestion over the (phi, theta) grid."""
    specs = make_specs(
        "fig12",
        cities=[city],
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=("DGRN",),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["phi", "theta"],
        values=["average_reward", "detour", "congestion"],
        stats=("mean",),
    )
