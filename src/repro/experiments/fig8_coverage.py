"""Fig. 8: task coverage vs. number of users (DGRN / BATS / RRN).

Paper shape: coverage grows with the user count and ranks
RRN < BATS < DGRN.
"""

from __future__ import annotations

from repro.experiments.common import CITIES, RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.metrics import coverage

USER_COUNTS = (20, 40, 60, 80, 100)
N_TASKS = 50


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    results = run_algorithms_on_game(spec, game)
    return [
        {
            "city": spec.city,
            "n_users": spec.n_users,
            "algorithm": name,
            "rep": spec.rep,
            "coverage": coverage(res.profile),
        }
        for name, res in results.items()
    ]


def run(
    *,
    repetitions: int = 20,
    seed: int | None = 0,
    processes: int | None = None,
    cities=CITIES,
    user_counts=USER_COUNTS,
) -> ResultTable:
    """Mean/std coverage per (city, user count, algorithm)."""
    specs = make_specs(
        "fig8",
        cities=cities,
        user_counts=user_counts,
        task_counts=[N_TASKS],
        algorithms=("DGRN", "BATS", "RRN"),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(by=["city", "n_users", "algorithm"], values=["coverage"])
