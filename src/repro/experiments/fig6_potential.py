"""Fig. 6: potential-function value and total profit vs. decision slot.

Paper shape: the potential rises monotonically and plateaus at the Nash
equilibrium (Theorem 2); the total profit trends upward with occasional
dips because users maximize their own profit, not the sum.
"""

from __future__ import annotations

from repro.experiments.common import CITIES, RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map

N_USERS = 30
N_TASKS = 50
N_SLOTS_SHOWN = 35


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    result = run_algorithms_on_game(spec, game)["DGRN"]
    pot = result.potential_history
    tot = result.total_profit_history
    assert pot is not None and tot is not None
    rows: list[dict] = []
    for slot in range(N_SLOTS_SHOWN + 1):
        idx = min(slot, len(pot) - 1)
        rows.append(
            {
                "city": spec.city,
                "rep": spec.rep,
                "slot": slot,
                "potential": float(pot[idx]),
                "total_profit": float(tot[idx]),
                "converged_at": result.decision_slots,
            }
        )
    return rows


def run(
    *,
    repetitions: int = 1,
    seed: int | None = 0,
    processes: int | None = None,
    cities=CITIES,
) -> ResultTable:
    """Potential/total-profit trajectories (one DGRN run per city)."""
    specs = make_specs(
        "fig6",
        cities=cities,
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=("DGRN",),
        repetitions=repetitions,
        seed=seed,
        record_history=True,
    )
    return repeat_map(_worker, specs, processes=processes)
