"""Experiment registry: paper artifact id -> runnable module."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (
    fig3_convergence,
    fig4_slots_vs_users,
    fig5_slots_vs_tasks,
    fig6_potential,
    fig7_profit,
    fig8_coverage,
    fig9_reward,
    fig10_fairness,
    fig11_surface,
    fig12_system_params,
    fig13_presentation,
    fig14_mu_sweep,
    fig15_lossy,
    fig16_execution,
    fig17_equilibrium_spread,
    fig18_faults,
    fig19_scale,
    table3_overlap,
    table4_poa,
    table5_user_params,
)
from repro.experiments.results import ResultTable


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact.

    ``chart`` optionally names the ``(x, y, series)`` columns of the run's
    aggregated table for SVG rendering via
    :func:`repro.viz.charts.chart_from_table` (CLI ``--svg``).
    """

    key: str
    paper_artifact: str
    description: str
    run: Callable[..., ResultTable]
    chart: tuple[str, str, str | None] | None = None


EXPERIMENTS: dict[str, Experiment] = {
    e.key: e
    for e in [
        Experiment("fig3", "Figure 3", "user profit vs. decision slot",
                   fig3_convergence.run, chart=("slot", "profit", "user")),
        Experiment("fig4", "Figure 4", "decision slots vs. user number",
                   fig4_slots_vs_users.run,
                   chart=("n_users", "decision_slots_mean", "algorithm")),
        Experiment("fig5", "Figure 5", "decision slots vs. task number",
                   fig5_slots_vs_tasks.run,
                   chart=("n_tasks", "decision_slots_mean", "algorithm")),
        Experiment("fig6", "Figure 6", "potential and total profit vs. slot",
                   fig6_potential.run, chart=("slot", "potential", "city")),
        Experiment("table3", "Table 3", "PUU selected users vs. overlap ratio",
                   table3_overlap.run,
                   chart=("n_tasks", "selected_users_mean", None)),
        Experiment("fig7", "Figure 7", "total profit vs. user number",
                   fig7_profit.run,
                   chart=("n_users", "total_profit_mean", "algorithm")),
        Experiment("fig8", "Figure 8", "coverage vs. user number",
                   fig8_coverage.run,
                   chart=("n_users", "coverage_mean", "algorithm")),
        Experiment("fig9", "Figure 9", "average reward vs. task number",
                   fig9_reward.run,
                   chart=("n_tasks", "average_reward_mean", "algorithm")),
        Experiment("fig10", "Figure 10", "Jain's fairness index vs. user number",
                   fig10_fairness.run,
                   chart=("n_users", "jain_index_mean", "algorithm")),
        Experiment("fig11", "Figure 11", "average reward vs. tasks x users",
                   fig11_surface.run,
                   chart=("n_tasks", "average_reward_mean", "n_users")),
        Experiment("table4", "Table 4", "DGRN/CORN ratio vs. PoA bound",
                   table4_poa.run, chart=("n_users", "ratio_mean", None)),
        Experiment("fig12", "Figure 12", "influence of phi and theta",
                   fig12_system_params.run,
                   chart=("phi", "detour_mean", "theta")),
        Experiment("table5", "Table 5", "influence of alpha/beta/gamma",
                   table5_user_params.run,
                   chart=("value", "reward_mean", "weight")),
        Experiment("fig13", "Figure 13", "route presentation on the map",
                   fig13_presentation.run),
        Experiment("fig14", "Extension", "reward-curvature (mu) ablation",
                   fig14_mu_sweep.run, chart=("mu", "total_profit_mean", None)),
        Experiment("fig15", "Extension", "protocol robustness to telemetry loss",
                   fig15_lossy.run, chart=("drop_prob", "is_nash_mean", None)),
        Experiment("fig16", "Extension", "executed-route latency and efficiency",
                   fig16_execution.run),
        Experiment("fig17", "Extension", "equilibrium-selection quality spread",
                   fig17_equilibrium_spread.run),
        Experiment("fig18", "Extension", "resilient protocol under injected faults",
                   fig18_faults.run, chart=("scenario", "is_nash_mean", None)),
        Experiment("fig19", "Extension", "serving capacity vs. shard count",
                   fig19_scale.run, chart=("shards", "users_per_second_mean", None)),
    ]
}


def get_experiment(key: str) -> Experiment:
    k = key.lower()
    if k not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {key!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[k]


def run_experiment(key: str, **kwargs) -> ResultTable:
    """Run one registered experiment (e.g. ``run_experiment("fig7")``)."""
    return get_experiment(key).run(**kwargs)
