"""Fig. 9: average user reward vs. number of tasks (DGRN / BATS / RRN).

Paper shape: average reward grows with the task count (more tasks per
route) and ranks RRN < BATS < DGRN.
"""

from __future__ import annotations

from repro.experiments.common import CITIES, RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.metrics import average_reward

TASK_COUNTS = (20, 40, 60, 80, 100)
N_USERS = 30


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    results = run_algorithms_on_game(spec, game)
    return [
        {
            "city": spec.city,
            "n_tasks": spec.n_tasks,
            "algorithm": name,
            "rep": spec.rep,
            "average_reward": average_reward(res.profile),
        }
        for name, res in results.items()
    ]


def run(
    *,
    repetitions: int = 20,
    seed: int | None = 0,
    processes: int | None = None,
    cities=CITIES,
    task_counts=TASK_COUNTS,
) -> ResultTable:
    """Mean/std average reward per (city, task count, algorithm)."""
    specs = make_specs(
        "fig9",
        cities=cities,
        user_counts=[N_USERS],
        task_counts=task_counts,
        algorithms=("DGRN", "BATS", "RRN"),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["city", "n_tasks", "algorithm"], values=["average_reward"]
    )
