"""Fig. 13: the real-data presentation — rendered route maps per city.

The paper shows Google-Maps screenshots with two users' recommended routes
and the selected one highlighted; this module renders the same scene from
the synthetic substrate as ASCII (stdout-friendly) and SVG (written to
``out_dir``), and reports each shown user's route choice statistics.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.algorithms import DGRN
from repro.experiments.common import CITIES
from repro.experiments.results import ResultTable
from repro.metrics import per_user_rewards
from repro.scenario import ScenarioConfig, build_scenario
from repro.viz import render_ascii, render_svg

N_USERS = 12
N_TASKS = 40
SHOWN_USERS = [0, 1]


def run(
    *,
    seed: int | None = 0,
    out_dir: str | Path | None = None,
    cities=CITIES,
    show_ascii: bool = False,
    repetitions: int = 1,  # accepted for registry uniformity; always 1 scene per city
    processes: int | None = None,
) -> ResultTable:
    """Render one equilibrium scene per city; returns route-choice stats."""
    del repetitions, processes  # single deterministic scene per city
    table = ResultTable()
    for city in cities:
        scenario = build_scenario(
            ScenarioConfig(city=city, n_users=N_USERS, n_tasks=N_TASKS, seed=seed)
        )
        result = DGRN(seed=np.random.default_rng(seed)).run(scenario.game)
        profile = result.profile
        if out_dir is not None:
            out = Path(out_dir)
            out.mkdir(parents=True, exist_ok=True)
            render_svg(
                scenario.network,
                scenario.tasks,
                profile,
                users=SHOWN_USERS,
                path=out / f"fig13_{city}.svg",
            )
        if show_ascii:
            print(f"== {city} ==")
            print(
                render_ascii(
                    scenario.network, scenario.tasks, profile, users=SHOWN_USERS
                )
            )
        rewards = per_user_rewards(profile)
        for u in SHOWN_USERS:
            route = profile.route_of(u)
            table.append(
                city=city,
                user=u,
                n_recommended=scenario.game.num_routes(u),
                selected_route=route,
                covered_tasks=int(len(scenario.game.covered_tasks(u, route))),
                reward=float(rewards[u]),
                detour=scenario.game.detour_h(u, route),
                congestion=scenario.game.congestion_level(u, route),
            )
    return table
