"""Extension experiment (not in the paper): equilibrium selection spread.

Potential games generally have many Nash equilibria; which one DGRN
reaches depends on the random initial profile and the SUU lottery.  This
experiment holds one instance fixed and re-runs the dynamics from many
random starts, measuring the spread of equilibrium quality (total profit
relative to CORN) and how many distinct equilibria appear — the practical
complement to the worst-case PoA story of Table 4.

Expected: many distinct equilibria, but a tight quality band — the
equilibrium lottery is low-stakes, which is why the paper can report
single DGRN curves.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import CORN, DGRN
from repro.algorithms.base import RunConfig
from repro.experiments.common import RepSpec, make_specs
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.scenario import ScenarioConfig, build_scenario

N_USERS = 12
N_TASKS = 30
RESTARTS = 40  # dynamics restarts per instance


def _worker(spec: RepSpec) -> list[dict]:
    game = build_scenario(
        ScenarioConfig(
            city=spec.city, n_users=spec.n_users, n_tasks=spec.n_tasks,
            seed=spec.seed,
        )
    ).game
    optimum = CORN(
        seed=np.random.default_rng(spec.seed),
        config=RunConfig(record_history=False),
    ).run(game).total_profit
    profits = []
    equilibria = set()
    for restart in range(RESTARTS):
        res = DGRN(
            seed=np.random.default_rng((spec.seed + restart) & (2**63 - 1)),
            config=RunConfig(record_history=False),
        ).run(game)
        profits.append(res.total_profit)
        equilibria.add(tuple(int(c) for c in res.profile.choices))
    arr = np.asarray(profits)
    return [
        {
            "rep": spec.rep,
            "distinct_equilibria": len(equilibria),
            "ratio_worst": float(arr.min() / optimum),
            "ratio_mean": float(arr.mean() / optimum),
            "ratio_best": float(arr.max() / optimum),
            "ratio_spread": float((arr.max() - arr.min()) / optimum),
        }
    ]


def run(
    *,
    repetitions: int = 10,
    seed: int | None = 0,
    processes: int | None = None,
    city: str = "shanghai",
) -> ResultTable:
    """Equilibrium-quality spread over dynamics restarts (fixed instances)."""
    specs = make_specs(
        "fig17",
        cities=[city],
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=(),
        repetitions=repetitions,
        seed=seed,
    )
    # Per-instance rows are the product here — the spread *is* the result;
    # use :func:`summarize` for a one-row digest.
    return repeat_map(_worker, specs, processes=processes)


def summarize(table: ResultTable) -> ResultTable:
    """Aggregate the per-instance rows into one summary row."""
    out = ResultTable()
    if len(table) == 0:
        return out
    out.append(
        instances=len(table),
        distinct_equilibria_mean=float(
            np.mean(table.column("distinct_equilibria"))
        ),
        ratio_worst_min=float(np.min(table.column("ratio_worst"))),
        ratio_mean_mean=float(np.mean(table.column("ratio_mean"))),
        ratio_spread_mean=float(np.mean(table.column("ratio_spread"))),
    )
    return out
