"""Command-line entry point: ``repro-experiments`` (or
``python -m repro.experiments.cli``).

Examples::

    repro-experiments --list
    repro-experiments fig7 --repetitions 20 --processes 4
    repro-experiments table4 --csv out/table4.csv
    repro-experiments all --repetitions 5
    repro-experiments fig3 --repetitions 2 --metrics-out run.json --trace
    repro-experiments fig15 --log-level INFO --log-json events.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the ICPP '21 paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment key (fig3..fig14, table3..table5), 'all', "
             "'serve' (online sharded serving session), or "
             "'dash' (render a --metrics-out run report as HTML)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        help="for 'dash': path to the run-report JSON to render",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="repeated simulations (paper default: 500)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=None,
                        help="process-pool size (default: inline)")
    parser.add_argument("--csv", default=None, help="also write CSV here")
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        choices=["numpy", "numba", "cupy"],
        help="kernel backend for the hot game kernels (default: "
             "$REPRO_BACKEND or numpy; unavailable backends fall back to "
             "numpy with a warning — see docs/architecture.md)",
    )
    parser.add_argument("--svg", default=None,
                        help="render the figure's series as an SVG chart here")
    serve_group = parser.add_argument_group(
        "serving", "options for the 'serve' session (see docs/serving.md)"
    )
    serve_group.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="number of region shards (default: 1, the monolithic engine)",
    )
    serve_group.add_argument(
        "--churn-rate", type=float, default=0.0, metavar="R",
        help="expected user join/leave events per serving round",
    )
    serve_group.add_argument(
        "--duration", type=int, default=20, metavar="S",
        help="number of churn-driven serving rounds before final convergence",
    )
    serve_group.add_argument(
        "--users", type=int, default=100,
        help="initial number of users in the serving instance",
    )
    serve_group.add_argument(
        "--tasks", type=int, default=60,
        help="number of sensing tasks in the serving instance",
    )
    serve_group.add_argument(
        "--scheduler", default="suu", choices=["suu", "puu"],
        help="per-shard update scheduler (default: suu)",
    )
    serve_group.add_argument(
        "--pipeline", action="store_true",
        help="overlap worker epochs with the dispatcher's boundary pass "
             "(needs --processes > 1 and K > 1; see docs/serving.md)",
    )
    serve_group.add_argument(
        "--auto-retile", action="store_true",
        help="re-partition regions online when the health monitor flags "
             "load imbalance (implies a HealthMonitor)",
    )
    serve_group.add_argument(
        "--validate", action="store_true",
        help="check cross-shard invariants and the ledger identity at "
             "every sync point",
    )
    serve_group.add_argument(
        "--health-out", default=None, metavar="PATH",
        help="attach a HealthMonitor and write its schema-validated "
             "repro.health_report/v1 JSON here (see docs/serving.md)",
    )
    serve_group.add_argument(
        "--no-supervise", action="store_true",
        help="disable the epoch supervisor (deadlines, retries, shard "
             "quarantine) on pooled sessions; see docs/robustness.md",
    )
    serve_group.add_argument(
        "--scrape-port", type=int, default=None, metavar="PORT",
        help="serve live Prometheus metrics at "
             "http://127.0.0.1:PORT/metrics while the session runs "
             "(0 = ephemeral port; implies telemetry)",
    )
    obs_group = parser.add_argument_group(
        "observability", "telemetry collection (see docs/observability.md)"
    )
    obs_group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable telemetry and write a JSON run report (config, span "
             "timings, metric snapshot) here",
    )
    obs_group.add_argument(
        "--trace", action="store_true",
        help="enable span tracing and print the hottest spans after each run",
    )
    obs_group.add_argument(
        "--log-level", default=None, metavar="LEVEL", type=str.upper,
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        help="enable structured event logging at LEVEL (DEBUG..ERROR)",
    )
    obs_group.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="append structured events as JSON lines to PATH",
    )
    dash_group = parser.add_argument_group(
        "dashboard", "options for the 'dash' renderer"
    )
    dash_group.add_argument(
        "--out", default=None, metavar="PATH",
        help="dashboard HTML output path (default: <report>.html)",
    )
    dash_group.add_argument(
        "--health-report", default=None, metavar="PATH",
        help="also render this repro.health_report/v1 JSON in the dashboard",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.experiments.registry import EXPERIMENTS, get_experiment

    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        width = max(len(k) for k in EXPERIMENTS)
        for key, exp in EXPERIMENTS.items():
            print(f"{key:<{width}}  {exp.paper_artifact:<10} {exp.description}")
        return 0

    if args.experiment.lower() == "dash":
        return _run_dash(args)

    if args.backend is not None:
        # Process-global default: every game built by the experiments
        # inherits it; the env var additionally reaches process-pool
        # workers (experiment runner, ShardPool), which read it as their
        # ambient default on spawn.
        import os

        from repro.core.backend import set_backend

        resolved = set_backend(args.backend)
        resolved.warmup()
        os.environ["REPRO_BACKEND"] = resolved.name
        print(f"[kernel backend: {resolved.name}]")

    telemetry = bool(
        args.metrics_out or args.trace or args.log_json or args.log_level
        or args.scrape_port is not None
    )
    if telemetry:
        import repro.obs as obs

        obs.enable()
        if args.log_level or args.log_json:
            obs.configure_logging(
                args.log_level or "INFO",
                json_path=args.log_json,
                stream=sys.stderr if args.log_json is None else None,
            )

    if args.experiment.lower() == "serve":
        return _run_serve(args, telemetry)

    keys = list(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    for key in keys:
        exp = get_experiment(key)
        kwargs: dict = {"seed": args.seed}
        if args.repetitions is not None:
            kwargs["repetitions"] = args.repetitions
        if args.processes is not None:
            kwargs["processes"] = args.processes
        if telemetry:
            import repro.obs as obs

            obs.reset()
        start = time.perf_counter()
        table = exp.run(**kwargs)
        elapsed = time.perf_counter() - start
        print(f"\n== {exp.paper_artifact}: {exp.description} "
              f"({len(table)} rows, {elapsed:.1f}s) ==")
        print(table.to_markdown())
        if args.csv:
            path = args.csv if len(keys) == 1 else f"{args.csv}.{key}.csv"
            table.to_csv(path)
            print(f"[csv written to {path}]")
        if args.svg:
            if exp.chart is None:
                print(f"[{key} has no chart spec; --svg skipped]")
            else:
                from repro.viz.charts import chart_from_table

                x, y, series = exp.chart
                path = args.svg if len(keys) == 1 else f"{args.svg}.{key}.svg"
                chart_from_table(
                    table, x=x, y=y, series=series,
                    title=f"{exp.paper_artifact}: {exp.description}",
                    path=path,
                )
                print(f"[svg written to {path}]")
        if telemetry:
            from repro.obs.report import (
                build_run_report,
                format_span_table,
                write_run_report,
            )

            if args.trace:
                print(f"\n-- hottest spans ({key}) --")
                print(format_span_table())
            if args.metrics_out:
                report = build_run_report(
                    experiment=key,
                    config={
                        "experiment": key,
                        "seed": args.seed,
                        "repetitions": args.repetitions,
                        "processes": args.processes,
                        "rows": len(table),
                    },
                    wall_seconds=elapsed,
                )
                path = (
                    args.metrics_out
                    if len(keys) == 1
                    else f"{args.metrics_out}.{key}.json"
                )
                write_run_report(path, report)
                print(f"[run report written to {path}]")
    return 0


def _run_serve(args: argparse.Namespace, telemetry: bool) -> int:
    """Drive one churn-driven sharded serving session (docs/serving.md)."""
    import contextlib
    import json

    from repro.serve.churn import ChurnSchedule, synthetic_serve_instance
    from repro.serve.health import HealthMonitor, validate_health_report
    from repro.serve.session import ServeSession

    tasks, platform, records, partition, factory = synthetic_serve_instance(
        args.users, args.tasks, max(args.shards, 1), seed=args.seed
    )
    churn = ChurnSchedule(rate=args.churn_rate, seed=args.seed + 1)
    monitor = (
        HealthMonitor() if (args.health_out or args.auto_retile) else None
    )
    scrape = contextlib.nullcontext()
    if args.scrape_port is not None:
        from repro.obs.exporters import ScrapeServer

        scrape = ScrapeServer(port=args.scrape_port).start()
        print(f"[scrape endpoint live at {scrape.url}]")
    start = time.perf_counter()
    with scrape, ServeSession(
        tasks=tasks,
        platform=platform,
        records=records,
        partition=partition,
        scheduler=args.scheduler,
        seed=args.seed,
        validate=args.validate,
        processes=args.processes,
        health=monitor,
        pipeline=args.pipeline,
        auto_retile=args.auto_retile,
        backend=args.backend,
        supervise=not args.no_supervise,
    ) as sess:
        for _ in range(args.duration):
            joins, leaves = churn.next_round(sorted(sess.records))
            for uid in leaves:
                sess.leave(uid)
            for _ in range(joins):
                sess.join(factory(sess.next_user_id()))
            sess.run_round()
        reports = sess.run_to_convergence()
        sess.check_quiescence()
        elapsed = time.perf_counter() - start
        stats = sess.stats.as_dict()
        summary = {
            "shards": sess.num_shards,
            "users": sess.num_users,
            "tasks": len(tasks),
            "scheduler": args.scheduler,
            "churn_rate": args.churn_rate,
            "duration": args.duration,
            "convergence_rounds": len(reports),
            "is_nash": sess.is_nash(),
            "nash_residual": sess.nash_residual(),
            "violations": len(sess.violations),
            "total_profit": sess.total_profit(),
            "potential": sess.global_potential(),
            "wall_seconds": elapsed,
            **stats,
        }
        supervision = sess.supervision_report()
        if supervision is not None:
            summary.update(
                epoch_timeouts=supervision["timeouts"],
                epoch_retries=supervision["retries"],
                quarantines=supervision["quarantines"],
                promotions=supervision["promotions"],
                pool_rebuilds=supervision["pool_rebuilds"],
            )
        print(f"\n== serve: K={sess.num_shards} shards, "
              f"{sess.num_users} users, {len(tasks)} tasks "
              f"({elapsed:.1f}s) ==")
        width = max(len(k) for k in summary)
        for k, v in summary.items():
            print(f"  {k:<{width}}  {v}")
        if args.validate:
            sess.raise_if_violations()
        if monitor is not None:
            health = validate_health_report(monitor.report(sess))
            with open(args.health_out, "w", encoding="utf-8") as fh:
                json.dump(health, fh, indent=2, default=str)
                fh.write("\n")
            status = "healthy" if health["healthy"] else (
                f"{len(health['alerts'])} alert(s)")
            print(f"[health report ({status}) written to {args.health_out}]")
        if telemetry and args.metrics_out:
            from repro.obs.report import build_run_report, write_run_report

            report = build_run_report(
                experiment="serve",
                config=summary,
                wall_seconds=elapsed,
            )
            write_run_report(args.metrics_out, report)
            print(f"[run report written to {args.metrics_out}]")
    return 0


def _run_dash(args: argparse.Namespace) -> int:
    """Render a run report (and optional health report) as static HTML."""
    import json
    from pathlib import Path

    from repro.viz.dashboard import render_dashboard

    if not args.target:
        print("usage: repro-experiments dash <run_report.json> [--out PATH]",
              file=sys.stderr)
        return 2
    report_path = Path(args.target)
    report = json.loads(report_path.read_text(encoding="utf-8"))
    health = None
    if args.health_report:
        health = json.loads(
            Path(args.health_report).read_text(encoding="utf-8")
        )
    out = Path(args.out) if args.out else report_path.with_suffix(".html")
    render_dashboard(report, health=health, path=out)
    print(f"[dashboard written to {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
