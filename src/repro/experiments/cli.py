"""Command-line entry point: ``repro-experiments`` (or
``python -m repro.experiments.cli``).

Examples::

    repro-experiments --list
    repro-experiments fig7 --repetitions 20 --processes 4
    repro-experiments table4 --csv out/table4.csv
    repro-experiments all --repetitions 5
    repro-experiments fig3 --repetitions 2 --metrics-out run.json --trace
    repro-experiments fig15 --log-level INFO --log-json events.jsonl
"""

from __future__ import annotations

import argparse
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the tables and figures of the ICPP '21 paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment key (fig3..fig14, table3..table5) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="repeated simulations (paper default: 500)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=None,
                        help="process-pool size (default: inline)")
    parser.add_argument("--csv", default=None, help="also write CSV here")
    parser.add_argument("--svg", default=None,
                        help="render the figure's series as an SVG chart here")
    obs_group = parser.add_argument_group(
        "observability", "telemetry collection (see docs/observability.md)"
    )
    obs_group.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable telemetry and write a JSON run report (config, span "
             "timings, metric snapshot) here",
    )
    obs_group.add_argument(
        "--trace", action="store_true",
        help="enable span tracing and print the hottest spans after each run",
    )
    obs_group.add_argument(
        "--log-level", default=None, metavar="LEVEL", type=str.upper,
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        help="enable structured event logging at LEVEL (DEBUG..ERROR)",
    )
    obs_group.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="append structured events as JSON lines to PATH",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.experiments.registry import EXPERIMENTS, get_experiment

    args = build_parser().parse_args(argv)
    if args.list or not args.experiment:
        width = max(len(k) for k in EXPERIMENTS)
        for key, exp in EXPERIMENTS.items():
            print(f"{key:<{width}}  {exp.paper_artifact:<10} {exp.description}")
        return 0

    telemetry = bool(
        args.metrics_out or args.trace or args.log_json or args.log_level
    )
    if telemetry:
        import repro.obs as obs

        obs.enable()
        if args.log_level or args.log_json:
            obs.configure_logging(
                args.log_level or "INFO",
                json_path=args.log_json,
                stream=sys.stderr if args.log_json is None else None,
            )

    keys = list(EXPERIMENTS) if args.experiment.lower() == "all" else [args.experiment]
    for key in keys:
        exp = get_experiment(key)
        kwargs: dict = {"seed": args.seed}
        if args.repetitions is not None:
            kwargs["repetitions"] = args.repetitions
        if args.processes is not None:
            kwargs["processes"] = args.processes
        if telemetry:
            import repro.obs as obs

            obs.reset()
        start = time.perf_counter()
        table = exp.run(**kwargs)
        elapsed = time.perf_counter() - start
        print(f"\n== {exp.paper_artifact}: {exp.description} "
              f"({len(table)} rows, {elapsed:.1f}s) ==")
        print(table.to_markdown())
        if args.csv:
            path = args.csv if len(keys) == 1 else f"{args.csv}.{key}.csv"
            table.to_csv(path)
            print(f"[csv written to {path}]")
        if args.svg:
            if exp.chart is None:
                print(f"[{key} has no chart spec; --svg skipped]")
            else:
                from repro.viz.charts import chart_from_table

                x, y, series = exp.chart
                path = args.svg if len(keys) == 1 else f"{args.svg}.{key}.svg"
                chart_from_table(
                    table, x=x, y=y, series=series,
                    title=f"{exp.paper_artifact}: {exp.description}",
                    path=path,
                )
                print(f"[svg written to {path}]")
        if telemetry:
            from repro.obs.report import (
                build_run_report,
                format_span_table,
                write_run_report,
            )

            if args.trace:
                print(f"\n-- hottest spans ({key}) --")
                print(format_span_table())
            if args.metrics_out:
                report = build_run_report(
                    experiment=key,
                    config={
                        "experiment": key,
                        "seed": args.seed,
                        "repetitions": args.repetitions,
                        "processes": args.processes,
                        "rows": len(table),
                    },
                    wall_seconds=elapsed,
                )
                path = (
                    args.metrics_out
                    if len(keys) == 1
                    else f"{args.metrics_out}.{key}.json"
                )
                write_run_report(path, report)
                print(f"[run report written to {path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
