"""Fig. 3: user profit vs. decision slot.

Paper protocol: 15 randomly selected users per data set, profit dynamics
observed over 20 decision slots; profits fluctuate while users update and
stabilize at the Nash equilibrium (some users' profits drop when others
join their tasks).
"""

from __future__ import annotations

from repro.experiments.common import CITIES, RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map

N_USERS = 15
N_TASKS = 30
N_SLOTS_SHOWN = 20


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    result = run_algorithms_on_game(spec, game)["DGRN"]
    history = result.profit_history
    assert history is not None
    rows: list[dict] = []
    for slot in range(N_SLOTS_SHOWN + 1):
        # Pad with the equilibrium profits once converged (the paper's
        # curves are flat after the convergence point).
        snap = history[min(slot, history.shape[0] - 1)]
        for user in range(game.num_users):
            rows.append(
                {
                    "city": spec.city,
                    "rep": spec.rep,
                    "slot": slot,
                    "user": user,
                    "profit": float(snap[user]),
                    "converged_at": result.decision_slots,
                }
            )
    return rows


def run(
    *,
    repetitions: int = 1,
    seed: int | None = 0,
    processes: int | None = None,
    cities=CITIES,
) -> ResultTable:
    """Per-user profit trajectories (one DGRN run per city by default)."""
    specs = make_specs(
        "fig3",
        cities=cities,
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=("DGRN",),
        repetitions=repetitions,
        seed=seed,
        record_history=True,
    )
    return repeat_map(_worker, specs, processes=processes)
