"""Fig. 5: decision slots to convergence vs. number of tasks.

Paper shape: same ordering as Fig. 4 (MUUN < BUAU < DGRN < BRUN < BATS);
slot counts rise slightly with the task count because denser coverage
couples more users' decisions.
"""

from __future__ import annotations

from repro.experiments.common import CITIES, CONVERGENCE_ALGOS, RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map

TASK_COUNTS = (20, 40, 60, 80, 100)
N_USERS = 30


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    results = run_algorithms_on_game(spec, game)
    return [
        {
            "city": spec.city,
            "n_tasks": spec.n_tasks,
            "algorithm": name,
            "rep": spec.rep,
            "decision_slots": res.decision_slots,
            "converged": res.converged,
        }
        for name, res in results.items()
    ]


def run(
    *,
    repetitions: int = 20,
    seed: int | None = 0,
    processes: int | None = None,
    cities=CITIES,
    task_counts=TASK_COUNTS,
    algorithms=CONVERGENCE_ALGOS,
) -> ResultTable:
    """Mean/std decision slots per (city, task count, algorithm)."""
    specs = make_specs(
        "fig5",
        cities=cities,
        user_counts=[N_USERS],
        task_counts=task_counts,
        algorithms=algorithms,
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["city", "n_tasks", "algorithm"], values=["decision_slots"]
    )
