"""Lightweight result tables for experiment outputs.

A :class:`ResultTable` is a list of homogeneous dict rows with helpers to
aggregate repeated simulations (mean/std over repetitions) and render the
rows/series a paper table or figure reports — markdown for humans, CSV for
plotting tools.
"""

from __future__ import annotations

import csv
import io
from collections import defaultdict
from typing import Any, Callable, Iterable, Sequence

import numpy as np


class ResultTable:
    """Ordered collection of result rows (dicts with shared keys)."""

    def __init__(self, rows: Iterable[dict[str, Any]] = ()) -> None:
        self.rows: list[dict[str, Any]] = [dict(r) for r in rows]

    # ----------------------------------------------------------------- build
    def append(self, **row: Any) -> None:
        self.rows.append(row)

    def extend(self, rows: Iterable[dict[str, Any]]) -> None:
        self.rows.extend(dict(r) for r in rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, idx: int) -> dict[str, Any]:
        return self.rows[idx]

    @property
    def columns(self) -> list[str]:
        cols: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    # ------------------------------------------------------------- transform
    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "ResultTable":
        return ResultTable(r for r in self.rows if predicate(r))

    def column(self, name: str) -> np.ndarray:
        return np.asarray([r[name] for r in self.rows])

    def aggregate(
        self,
        by: Sequence[str],
        values: Sequence[str],
        *,
        stats: Sequence[str] = ("mean", "std"),
    ) -> "ResultTable":
        """Group rows by ``by`` and reduce each value column.

        Produces one row per group with ``<value>_<stat>`` columns plus a
        repetition count ``n``; group order follows first appearance.
        """
        groups: dict[tuple, list[dict[str, Any]]] = defaultdict(list)
        order: list[tuple] = []
        for row in self.rows:
            key = tuple(row[k] for k in by)
            if key not in groups:
                order.append(key)
            groups[key].append(row)
        out = ResultTable()
        reducers: dict[str, Callable[[np.ndarray], float]] = {
            "mean": lambda a: float(np.mean(a)),
            "std": lambda a: float(np.std(a)),
            "min": lambda a: float(np.min(a)),
            "max": lambda a: float(np.max(a)),
            "median": lambda a: float(np.median(a)),
        }
        for key in order:
            rows = groups[key]
            agg: dict[str, Any] = dict(zip(by, key))
            agg["n"] = len(rows)
            for col in values:
                data = np.asarray([r[col] for r in rows], dtype=float)
                for stat in stats:
                    if stat not in reducers:
                        raise ValueError(f"unknown stat {stat!r}")
                    agg[f"{col}_{stat}"] = reducers[stat](data)
            out.rows.append(agg)
        return out

    def pivot(
        self, index: str, column: str, value: str
    ) -> tuple[list[Any], list[Any], np.ndarray]:
        """Reshape to a matrix: rows = distinct ``index``, cols = distinct
        ``column`` values (first-appearance order); missing cells are NaN."""
        idx_vals: list[Any] = []
        col_vals: list[Any] = []
        for row in self.rows:
            if row[index] not in idx_vals:
                idx_vals.append(row[index])
            if row[column] not in col_vals:
                col_vals.append(row[column])
        mat = np.full((len(idx_vals), len(col_vals)), np.nan)
        for row in self.rows:
            mat[idx_vals.index(row[index]), col_vals.index(row[column])] = row[value]
        return idx_vals, col_vals, mat

    # ----------------------------------------------------------------- render
    def to_markdown(self, *, floatfmt: str = ".3f") -> str:
        cols = self.columns
        if not cols:
            return "(empty table)"

        def fmt(v: Any) -> str:
            if isinstance(v, bool):
                return str(v)
            if isinstance(v, float):
                return format(v, floatfmt)
            return str(v)

        header = "| " + " | ".join(cols) + " |"
        sep = "|" + "|".join("---" for _ in cols) + "|"
        body = [
            "| " + " | ".join(fmt(row.get(c, "")) for c in cols) + " |"
            for row in self.rows
        ]
        return "\n".join([header, sep, *body])

    def to_csv(self, path: str | None = None) -> str:
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns, lineterminator="\n")
        writer.writeheader()
        for row in self.rows:
            writer.writerow(row)
        text = buf.getvalue()
        if path is not None:
            with open(path, "w", newline="") as fh:
                fh.write(text)
        return text

    def __repr__(self) -> str:
        return f"ResultTable(rows={len(self.rows)}, columns={self.columns})"
