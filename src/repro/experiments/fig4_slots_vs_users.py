"""Fig. 4: decision slots to convergence vs. number of users.

Paper shape: MUUN < BUAU < DGRN < BRUN < BATS at every user count, all
growing with the user count.  PUU's parallel grants give MUUN the fewest
slots; BATS pays for activations that change nothing.
"""

from __future__ import annotations

from repro.experiments.common import CITIES, CONVERGENCE_ALGOS, RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map

USER_COUNTS = (20, 40, 60, 80, 100)
N_TASKS = 50


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    results = run_algorithms_on_game(spec, game)
    return [
        {
            "city": spec.city,
            "n_users": spec.n_users,
            "algorithm": name,
            "rep": spec.rep,
            "decision_slots": res.decision_slots,
            "converged": res.converged,
        }
        for name, res in results.items()
    ]


def run(
    *,
    repetitions: int = 20,
    seed: int | None = 0,
    processes: int | None = None,
    cities=CITIES,
    user_counts=USER_COUNTS,
    algorithms=CONVERGENCE_ALGOS,
) -> ResultTable:
    """Mean/std decision slots per (city, user count, algorithm)."""
    specs = make_specs(
        "fig4",
        cities=cities,
        user_counts=user_counts,
        task_counts=[N_TASKS],
        algorithms=algorithms,
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["city", "n_users", "algorithm"], values=["decision_slots"]
    )
