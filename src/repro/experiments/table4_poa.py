"""Table 4: DGRN vs. CORN total profit, their ratio, and the PoA bound.

Paper shape: the DGRN/CORN ratio stays close to 1 (0.96-1.0) and always
dominates the Price-of-Anarchy lower bound of Section 4.4.
"""

from __future__ import annotations

from repro.core.poa import poa_lower_bound
from repro.experiments.common import RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map

USER_COUNTS = (9, 10, 11, 12, 13, 14)
N_TASKS = 30


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    results = run_algorithms_on_game(spec, game)
    dgrn = results["DGRN"].total_profit
    corn = results["CORN"].total_profit
    return [
        {
            "n_users": spec.n_users,
            "rep": spec.rep,
            "dgrn_profit": dgrn,
            "corn_profit": corn,
            "ratio": dgrn / corn if corn > 0 else float("nan"),
            "poa_bound": poa_lower_bound(game),
        }
    ]


def run(
    *,
    repetitions: int = 10,
    seed: int | None = 0,
    processes: int | None = None,
    user_counts=USER_COUNTS,
    city: str = "shanghai",
) -> ResultTable:
    """Mean DGRN/CORN profits, their ratio, and the bound, per user count."""
    specs = make_specs(
        "table4",
        cities=[city],
        user_counts=user_counts,
        task_counts=[N_TASKS],
        algorithms=("DGRN", "CORN"),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["n_users"],
        values=["dgrn_profit", "corn_profit", "ratio", "poa_bound"],
        stats=("mean",),
    )
