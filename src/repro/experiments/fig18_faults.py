"""Extension experiment (not in the paper): convergence under injected
faults with the resilient protocol.

Where fig15 measures how the *paper-faithful* protocol degrades when
telemetry is dropped, this experiment runs the *hardened* protocol
(``docs/robustness.md``: acks + retries, grant leases, crash/rejoin
snapshots, confirmed termination) through the bounded-fault envelope —
message loss, delay/reordering, duplication, and crash/restart — and
measures what resilience costs and what it buys:

- ``converged`` / ``is_nash``: the protocol's promise is that every run
  inside the envelope still terminates at a confirmed Nash equilibrium;
- ``invariant_ok``: the per-slot potential/consistency invariants held;
- ``decision_slots``: fault-recovery stretches runs out;
- ``overhead``: redelivered messages per sent message — the price of
  at-least-once delivery.
"""

from __future__ import annotations

from repro.core.equilibrium import epsilon_nash_gap, is_nash_equilibrium
from repro.distributed import DistributedSimulation
from repro.experiments.common import RepSpec, make_specs
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.faults import FaultPlan
from repro.scenario import ScenarioConfig, build_scenario

N_USERS = 20
N_TASKS = 40
MAX_SLOTS = 3000

#: Scenario name -> fault-plan factory (seeded per repetition so every
#: repetition draws an independent fault realisation).
SCENARIOS: dict[str, "callable"] = {
    "none": lambda s: FaultPlan(seed=s),
    "loss": lambda s: FaultPlan(
        seed=s,
        loss={"TaskCountUpdate": 0.3, "DecisionReport": 0.3, "UpdateGrant": 0.3},
    ),
    "reorder": lambda s: FaultPlan(
        seed=s,
        delay={
            "TaskCountUpdate": (0.5, 3),
            "DecisionReport": (0.5, 3),
            "UpdateGrant": (0.5, 3),
        },
    ),
    "duplicate": lambda s: FaultPlan(
        seed=s, duplicate={"TaskCountUpdate": 0.3, "DecisionReport": 0.3}
    ),
    "crash": lambda s: FaultPlan(seed=s, crash_rate=0.2),
    "mixed": lambda s: FaultPlan(
        seed=s,
        loss={"TaskCountUpdate": 0.2, "DecisionReport": 0.2},
        delay={"UpdateGrant": (0.3, 3)},
        duplicate={"DecisionReport": 0.2},
        crash_rate=0.2,
    ),
}


def _worker(spec: RepSpec) -> list[dict]:
    game = build_scenario(
        ScenarioConfig(
            city=spec.city, n_users=spec.n_users, n_tasks=spec.n_tasks,
            seed=spec.seed,
        )
    ).game
    rows: list[dict] = []
    for name, make_plan in SCENARIOS.items():
        sim = DistributedSimulation(
            game,
            scheduler="puu",
            seed=spec.seed,
            record_history=False,
            max_slots=MAX_SLOTS,
            fault_plan=make_plan(spec.seed),
            check_invariants=True,
        )
        out = sim.run()
        assert sim.invariants is not None
        rows.append(
            {
                "scenario": name,
                "rep": spec.rep,
                "decision_slots": out.decision_slots,
                "converged": float(out.converged),
                "is_nash": float(is_nash_equilibrium(out.profile)),
                "epsilon_gap": epsilon_nash_gap(out.profile),
                "invariant_ok": float(sim.invariants.ok),
                "total_profit": out.total_profit,
                "crashes": out.crashes,
                "rejoins": out.rejoins,
                "lease_revocations": out.lease_revocations,
                "overhead": (
                    out.redelivered_messages / max(out.total_messages, 1)
                ),
            }
        )
    return rows


def run(
    *,
    repetitions: int = 10,
    seed: int | None = 0,
    processes: int | None = None,
    city: str = "shanghai",
) -> ResultTable:
    """Resilience profile over the bounded-fault scenario sweep."""
    specs = make_specs(
        "fig18",
        cities=[city],
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=(),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["scenario"],
        values=["decision_slots", "converged", "is_nash", "epsilon_gap",
                "invariant_ok", "total_profit", "crashes", "rejoins",
                "lease_revocations", "overhead"],
        stats=("mean",),
    )
