"""Table 5: influence of one user's weights ``alpha_i, beta_i, gamma_i``.

Paper shape: sweeping one randomly chosen user's weight from 0.1 to 0.8,
the user's obtained reward rises with ``alpha_i``, its detour distance
falls with ``beta_i``, and its congestion level falls with ``gamma_i``
(the other two weights stay at their sampled values).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import DGRN
from repro.algorithms.base import RunConfig
from repro.core.profile import StrategyProfile
from repro.experiments.common import RepSpec, make_specs
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.metrics import per_user_rewards
from repro.scenario import ScenarioConfig, build_scenario

WEIGHT_VALUES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
N_USERS = 30
N_TASKS = 50


def _worker(spec: RepSpec) -> list[dict]:
    cfg = ScenarioConfig(
        city=spec.city, n_users=spec.n_users, n_tasks=spec.n_tasks, seed=spec.seed
    )
    base_game = build_scenario(cfg).game
    rng = np.random.default_rng(spec.seed ^ 0x5EED)
    user = int(rng.integers(0, base_game.num_users))
    initial = StrategyProfile.random(base_game, rng).choices
    rows: list[dict] = []
    for weight_name in ("alpha", "beta", "gamma"):
        for value in WEIGHT_VALUES:
            new_weights = base_game.user_weights[user].replace(**{weight_name: value})
            game = base_game.with_user_weights(user, new_weights)
            result = DGRN(
                seed=np.random.default_rng(spec.seed),
                config=RunConfig(record_history=False),
            ).run(game, initial=initial)
            profile = result.profile
            route = profile.route_of(user)
            rows.append(
                {
                    "rep": spec.rep,
                    "weight": weight_name,
                    "value": value,
                    "reward": float(per_user_rewards(profile)[user]),
                    "detour": game.detour_h(user, route),
                    "congestion": game.congestion_level(user, route),
                }
            )
    return rows


def run(
    *,
    repetitions: int = 20,
    seed: int | None = 0,
    processes: int | None = None,
    city: str = "shanghai",
) -> ResultTable:
    """Mean reward/detour/congestion of the swept user per weight value."""
    specs = make_specs(
        "table5",
        cities=[city],
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=("DGRN",),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["weight", "value"],
        values=["reward", "detour", "congestion"],
        stats=("mean",),
    )
