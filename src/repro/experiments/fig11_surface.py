"""Fig. 11: average reward vs. task count x user count (DGRN surface).

Paper shape: average reward rises with the task count and falls with the
user count (more mouths per task reward).
"""

from __future__ import annotations

from repro.experiments.common import RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.metrics import average_reward

TASK_COUNTS = (20, 40, 60, 80, 100, 150, 200)
USER_COUNTS = (20, 40, 60, 80, 100)


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    result = run_algorithms_on_game(spec, game)["DGRN"]
    return [
        {
            "city": spec.city,
            "n_tasks": spec.n_tasks,
            "n_users": spec.n_users,
            "rep": spec.rep,
            "average_reward": average_reward(result.profile),
        }
    ]


def run(
    *,
    repetitions: int = 5,
    seed: int | None = 0,
    processes: int | None = None,
    cities=("shanghai", "roma", "epfl"),
    task_counts=TASK_COUNTS,
    user_counts=USER_COUNTS,
) -> ResultTable:
    """Mean average reward over the (tasks x users) grid, per city."""
    specs = make_specs(
        "fig11",
        cities=cities,
        user_counts=user_counts,
        task_counts=task_counts,
        algorithms=("DGRN",),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["city", "n_tasks", "n_users"],
        values=["average_reward"],
        stats=("mean",),
    )
