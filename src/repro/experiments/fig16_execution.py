"""Extension experiment (not in the paper): executing the equilibrium.

Drives each algorithm's final profile through the mobility simulator and
compares *operational* outcomes the paper's static profit metric hides:
mean travel time, total vehicle-kilometres, task-completion latency
(time until a task's first result), and sensing efficiency (completions
per vehicle-km).

Expected: DGRN dominates RRN on sensing efficiency and first-completion
latency (it routes users toward tasks deliberately), while keeping travel
times comparable (the detour cost term restrains it).
"""

from __future__ import annotations

from repro.experiments.common import RepSpec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.mobility import execute_profile
from repro.scenario import ScenarioConfig, build_scenario

N_USERS = 25
N_TASKS = 50
ALGOS = ("DGRN", "BATS", "RRN")


def _worker(spec: RepSpec) -> list[dict]:
    scenario = build_scenario(
        ScenarioConfig(
            city=spec.city, n_users=spec.n_users, n_tasks=spec.n_tasks,
            seed=spec.seed,
        )
    )
    results = run_algorithms_on_game(spec, scenario.game)
    rows: list[dict] = []
    for name, res in results.items():
        report = execute_profile(scenario.network, res.profile)
        rows.append(
            {
                "city": spec.city,
                "algorithm": name,
                "rep": spec.rep,
                "mean_travel_time_s": report.mean_travel_time_s,
                "total_distance_km": report.total_distance_km,
                "mean_first_completion_s": report.mean_first_completion_s,
                "completions_per_km": report.completions_per_km,
                "tasks_with_result": len(report.first_completion_s),
            }
        )
    return rows


def run(
    *,
    repetitions: int = 15,
    seed: int | None = 0,
    processes: int | None = None,
    cities=("shanghai",),
) -> ResultTable:
    """Operational metrics per algorithm after executing the profiles."""
    specs = make_specs(
        "fig16",
        cities=cities,
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=ALGOS,
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["city", "algorithm"],
        values=[
            "mean_travel_time_s",
            "total_distance_km",
            "mean_first_completion_s",
            "completions_per_km",
            "tasks_with_result",
        ],
        stats=("mean",),
    )
