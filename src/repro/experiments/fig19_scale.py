"""Extension experiment (not in the paper): serving-layer capacity scaling.

The sharded serving layer (``docs/serving.md``) promises that region
partitioning buys online capacity: under churn, a join or leave rebuilds
and re-converges *one shard's* sub-game instead of the whole instance.
This experiment drives an identical churn workload — same tasks, same
initial users, same join/leave script — through sessions at increasing
shard counts and measures:

- ``users_per_second``: churn events (joins + leaves) absorbed per wall
  second, the serving-capacity headline;
- ``speedup``: users-per-second relative to the K=1 monolithic engine of
  the same repetition;
- ``profit_delta_pct``: total-profit gap of the sharded equilibrium
  against a monolithic DGRN run on the *final* user population — the
  equilibrium-quality price of sharding (both states are Nash equilibria
  of the same game, so this measures equilibrium *selection*, not error);
- ``convergence_rounds`` and ``boundary_moves``: how much work leaks to
  the sequential boundary pass.

The workload is spatially local (:func:`repro.serve.churn.
synthetic_serve_instance`): users mostly cover tasks of one region, the
shape the partitioner monetizes.  The capacity *floor* (>= 2x at K=4 on
the dense 500-user instance) is enforced by ``benchmarks/
test_bench_serve.py``; this figure records the whole curve.
"""

from __future__ import annotations

import time

from repro.algorithms.dgrn import DGRN
from repro.experiments.common import RepSpec, make_specs
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.serve.churn import ChurnSchedule, synthetic_serve_instance
from repro.serve.session import ServeSession

N_USERS = 200
N_TASKS = 80
SHARD_COUNTS = (1, 2, 4)
CHURN_RATE = 4.0
CHURN_ROUNDS = 12
LOCALITY = 0.9


def _serve_once(spec: RepSpec, num_shards: int) -> dict:
    """One serving run: fixed churn script, measured wall time."""
    tasks, platform, records, partition, factory = synthetic_serve_instance(
        spec.n_users, spec.n_tasks, num_shards,
        locality=LOCALITY, seed=spec.seed,
    )
    churn = ChurnSchedule(rate=CHURN_RATE, seed=spec.seed + 1)
    events = 0
    t0 = time.perf_counter()
    with ServeSession(
        tasks=tasks,
        platform=platform,
        records=records,
        partition=partition,
        scheduler="puu",
        seed=spec.seed,
    ) as sess:
        for _ in range(CHURN_ROUNDS):
            joins, leaves = churn.next_round(sorted(sess.records))
            for uid in leaves:
                sess.leave(uid)
            for _ in range(joins):
                sess.join(factory(sess.next_user_id()))
            events += joins + len(leaves)
            sess.run_round()
        reports = sess.run_to_convergence()
        seconds = time.perf_counter() - t0
        game, profile = sess.global_profile()
        mono = DGRN(seed=spec.seed).run(game)
        served_profit = sess.total_profit()
        mono_profit = mono.total_profit
        return {
            "shards": num_shards,
            "rep": spec.rep,
            "events": events,
            "seconds": seconds,
            "users_per_second": events / seconds if seconds > 0 else 0.0,
            "is_nash": float(sess.is_nash()),
            "nash_residual": sess.nash_residual(),
            "convergence_rounds": len(reports),
            "boundary_moves": sess.stats.boundary_moves,
            "total_profit": served_profit,
            "profit_delta_pct": (
                100.0 * (served_profit - mono_profit) / abs(mono_profit)
                if mono_profit else 0.0
            ),
        }


def _worker(spec: RepSpec) -> list[dict]:
    rows = [_serve_once(spec, k) for k in SHARD_COUNTS]
    base = next(r["users_per_second"] for r in rows if r["shards"] == 1)
    for r in rows:
        r["speedup"] = r["users_per_second"] / base if base > 0 else 0.0
    return rows


def run(
    *,
    repetitions: int = 5,
    seed: int | None = 0,
    processes: int | None = None,
    city: str = "shanghai",
) -> ResultTable:
    """Serving capacity vs. shard count on an identical churn workload."""
    specs = make_specs(
        "fig19",
        cities=[city],
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=(),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["shards"],
        values=["users_per_second", "speedup", "is_nash", "nash_residual",
                "convergence_rounds", "boundary_moves", "total_profit",
                "profit_delta_pct"],
        stats=("mean",),
    )
