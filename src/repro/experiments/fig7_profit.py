"""Fig. 7: total profit vs. number of users (DGRN / CORN / RRN).

Paper shape: RRN < DGRN < CORN at every user count, with DGRN only
slightly below the centralized optimum — the Nash equilibrium costs little
total profit.
"""

from __future__ import annotations

from repro.experiments.common import CITIES, RepSpec, build_game_for_spec, make_specs, run_algorithms_on_game
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map

USER_COUNTS = (10, 11, 12, 13, 14)
N_TASKS = 30


def _worker(spec: RepSpec) -> list[dict]:
    game = build_game_for_spec(spec)
    results = run_algorithms_on_game(spec, game)
    return [
        {
            "city": spec.city,
            "n_users": spec.n_users,
            "algorithm": name,
            "rep": spec.rep,
            "total_profit": res.total_profit,
        }
        for name, res in results.items()
    ]


def run(
    *,
    repetitions: int = 10,
    seed: int | None = 0,
    processes: int | None = None,
    cities=CITIES,
    user_counts=USER_COUNTS,
) -> ResultTable:
    """Mean/std total profit per (city, user count, algorithm)."""
    specs = make_specs(
        "fig7",
        cities=cities,
        user_counts=user_counts,
        task_counts=[N_TASKS],
        algorithms=("DGRN", "CORN", "RRN"),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["city", "n_users", "algorithm"], values=["total_profit"]
    )
