"""Repetition executor: the paper's 500-repeated-simulation protocol.

Experiments produce a list of picklable *specs* (one per repetition x
configuration); :func:`repeat_map` fans them out over a process pool (or
runs inline) and flattens the per-spec row lists.  Workers must be
module-level functions so they pickle under the ``spawn`` start method.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from repro.experiments.results import ResultTable


def default_processes() -> int:
    """Worker count: leave two cores for the driver (min 1)."""
    return max(1, (os.cpu_count() or 2) - 2)


def repeat_map(
    worker: Callable[[Any], list[dict]],
    specs: Sequence[Any],
    *,
    processes: int | None = None,
) -> ResultTable:
    """Apply ``worker`` to every spec; flatten the row lists into a table.

    ``processes=None`` or ``0`` runs inline (deterministic ordering, easy
    debugging); ``processes>=2`` uses a process pool.  Row order always
    follows spec order regardless of execution order.
    """
    table = ResultTable()
    if processes is None or processes <= 1 or len(specs) <= 1:
        for spec in specs:
            table.extend(worker(spec))
        return table
    with ProcessPoolExecutor(max_workers=min(processes, len(specs))) as pool:
        for rows in pool.map(worker, specs, chunksize=max(1, len(specs) // (processes * 4) or 1)):
            table.extend(rows)
    return table
