"""Repetition executor: the paper's 500-repeated-simulation protocol.

Experiments produce a list of picklable *specs* (one per repetition x
configuration); :func:`repeat_map` fans them out over a process pool (or
runs inline) and flattens the per-spec row lists.  Workers must be
module-level functions so they pickle under the ``spawn`` start method.

With telemetry enabled (:mod:`repro.obs`), every spec's wall-clock
duration lands in the ``runner.spec_seconds`` histogram, pool workers ship
their metric/span snapshots back to the driver for merging, and the
run-level ``runner.wall_seconds`` / ``runner.straggler_seconds`` /
``runner.utilization`` gauges expose where a sweep's time went and which
repetition was the straggler.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

import repro.obs as obs
from repro.experiments.results import ResultTable


def default_processes() -> int:
    """Worker count: leave two cores for the driver (min 1)."""
    return max(1, (os.cpu_count() or 2) - 2)


class _TelemetryWorker:
    """Picklable wrapper shipping per-spec telemetry back to the driver.

    Each call enables telemetry in the (possibly freshly spawned) worker
    process, clears any state left by the previous spec on the same
    worker, runs the real worker, and returns ``(rows, seconds,
    snapshot)`` where ``snapshot`` is a plain-data
    :class:`repro.obs.TelemetrySnapshot`.
    """

    def __init__(self, worker: Callable[[Any], list[dict]]) -> None:
        self.worker = worker

    def __call__(self, spec: Any) -> tuple[list[dict], float, obs.TelemetrySnapshot]:
        obs.enable()
        obs.reset()
        t0 = time.perf_counter()
        rows = self.worker(spec)
        return rows, time.perf_counter() - t0, obs.snapshot()


def _note_spec(index: int, spec: Any, seconds: float) -> None:
    obs.histogram("runner.spec_seconds").observe(seconds)
    obs.counter("runner.specs_total").inc()
    obs.sample("runner.spec_seconds", index, seconds)
    obs.event(
        "runner.spec_done",
        index=index,
        seconds=round(seconds, 6),
        experiment=getattr(spec, "experiment", None),
        rep=getattr(spec, "rep", None),
    )


def _note_run(durations: list[float], wall: float, workers: int) -> None:
    """File run-level telemetry: registry gauges (the Prometheus/export
    surface) plus one time-series sample per ``repeat_map`` call, so
    multi-sweep sessions keep a utilization/straggler trajectory."""
    busy = sum(durations)
    straggler = max(durations, default=0.0)
    run_index = obs.TIMESERIES.series("runner.wall_seconds")
    t = len(run_index)
    obs.gauge("runner.wall_seconds").set(wall)
    obs.gauge("runner.straggler_seconds").set(straggler)
    obs.sample("runner.wall_seconds", t, wall)
    obs.sample("runner.straggler_seconds", t, straggler)
    if wall > 0.0 and workers > 0:
        utilization = busy / (wall * workers)
        obs.gauge("runner.utilization").set(utilization)
        obs.sample("runner.utilization", t, utilization)
    obs.event(
        "runner.run_done",
        specs=len(durations),
        workers=workers,
        wall_seconds=round(wall, 6),
        busy_seconds=round(busy, 6),
    )


def repeat_map(
    worker: Callable[[Any], list[dict]],
    specs: Sequence[Any],
    *,
    processes: int | None = None,
) -> ResultTable:
    """Apply ``worker`` to every spec; flatten the row lists into a table.

    ``processes=None`` or ``0`` runs inline (deterministic ordering, easy
    debugging); ``processes>=2`` uses a process pool.  Row order always
    follows spec order regardless of execution order.
    """
    table = ResultTable()
    telemetry = obs.enabled()
    wall0 = time.perf_counter()
    if processes is None or processes <= 1 or len(specs) <= 1:
        durations: list[float] = []
        for index, spec in enumerate(specs):
            t0 = time.perf_counter() if telemetry else 0.0
            table.extend(worker(spec))
            if telemetry:
                seconds = time.perf_counter() - t0
                durations.append(seconds)
                _note_spec(index, spec, seconds)
        if telemetry:
            _note_run(durations, time.perf_counter() - wall0, workers=1)
        return table
    workers = min(processes, len(specs))
    chunksize = max(1, len(specs) // (processes * 4) or 1)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        if not telemetry:
            for rows in pool.map(worker, specs, chunksize=chunksize):
                table.extend(rows)
            return table
        durations = []
        wrapped = _TelemetryWorker(worker)
        for index, (rows, seconds, snap) in enumerate(
            pool.map(wrapped, specs, chunksize=chunksize)
        ):
            table.extend(rows)
            durations.append(seconds)
            obs.merge_snapshot(snap)
            _note_spec(index, specs[index], seconds)
    _note_run(durations, time.perf_counter() - wall0, workers=workers)
    return table
