"""Extension experiment (not in the paper): protocol robustness to
telemetry loss.

The paper's protocol assumes reliable delivery of the per-slot task-count
updates.  This experiment drops those updates with probability ``p`` (the
control plane — requests, grants, decisions, termination — stays
reliable) and measures how the equilibrium degrades: decision slots to
termination, the fraction of runs that terminate at a true Nash
equilibrium, the residual epsilon-Nash gap, and the total profit.

Expected: graceful degradation — small drop rates mostly still reach a
(near-)equilibrium because stale agents simply request updates a slot
late; large drop rates terminate prematurely on stale views, leaving a
measurable epsilon gap.
"""

from __future__ import annotations

from repro.core.equilibrium import epsilon_nash_gap, is_nash_equilibrium
from repro.distributed import DistributedSimulation
from repro.experiments.common import RepSpec, make_specs
from repro.experiments.results import ResultTable
from repro.experiments.runner import repeat_map
from repro.scenario import ScenarioConfig, build_scenario

DROP_PROBS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
N_USERS = 20
N_TASKS = 40
MAX_SLOTS = 3000


def _worker(spec: RepSpec) -> list[dict]:
    game = build_scenario(
        ScenarioConfig(
            city=spec.city, n_users=spec.n_users, n_tasks=spec.n_tasks,
            seed=spec.seed,
        )
    ).game
    rows: list[dict] = []
    for p in DROP_PROBS:
        out = DistributedSimulation(
            game,
            scheduler="puu",
            seed=spec.seed + int(p * 1000),
            record_history=False,
            drop_prob=p,
            max_slots=MAX_SLOTS,
        ).run()
        rows.append(
            {
                "drop_prob": p,
                "rep": spec.rep,
                "decision_slots": out.decision_slots,
                "terminated": float(out.converged),
                "is_nash": float(is_nash_equilibrium(out.profile)),
                "epsilon_gap": epsilon_nash_gap(out.profile),
                "total_profit": out.total_profit,
                # Messages actually lost in transit — NOT the number of
                # TaskCountUpdate messages sent (sent counters include
                # delivered messages; see MessageBus.dropped_by_type).
                "dropped_messages": out.dropped_messages,
            }
        )
    return rows


def run(
    *,
    repetitions: int = 15,
    seed: int | None = 0,
    processes: int | None = None,
    city: str = "shanghai",
) -> ResultTable:
    """Degradation profile over the drop-probability sweep."""
    specs = make_specs(
        "fig15",
        cities=[city],
        user_counts=[N_USERS],
        task_counts=[N_TASKS],
        algorithms=(),
        repetitions=repetitions,
        seed=seed,
    )
    raw = repeat_map(_worker, specs, processes=processes)
    return raw.aggregate(
        by=["drop_prob"],
        values=["decision_slots", "terminated", "is_nash", "epsilon_gap",
                "total_profit", "dropped_messages"],
        stats=("mean",),
    )
