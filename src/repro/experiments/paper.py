"""One-command reproduction of the whole evaluation section.

``reproduce_paper(out_dir)`` runs every registered artifact, writes its
CSV (and SVG chart where the artifact has one), and emits a markdown
summary indexing the outputs.  At ``repetitions=500`` this is the paper's
full protocol; the default (20) gives stable shapes in minutes on a
laptop.

CLI::

    python -m repro.experiments.paper out/ --repetitions 20 --processes 8
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import default_processes

# Per-artifact repetition multipliers: CORN-backed experiments are costlier,
# trajectory figures need a single run.
_REPETITION_SCALE: dict[str, float] = {
    "fig3": 0.0,  # single-trace figure (0 -> exactly 1 repetition)
    "fig6": 0.0,
    "fig7": 0.5,
    "fig10": 0.5,
    "fig11": 0.25,
    "table4": 0.5,
    "fig17": 0.25,
}


def reproduce_paper(
    out_dir: str | Path,
    *,
    repetitions: int = 20,
    seed: int = 0,
    processes: int | None = None,
    keys: list[str] | None = None,
) -> Path:
    """Run all (or ``keys``) artifacts; returns the summary file path."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    if processes is None:
        processes = default_processes()
    selected = list(EXPERIMENTS) if keys is None else keys
    lines = [
        "# Reproduction outputs",
        "",
        f"repetitions base: {repetitions}; seed: {seed}",
        "",
        "| artifact | description | rows | seconds | outputs |",
        "|---|---|---|---|---|",
    ]
    for key in selected:
        exp = EXPERIMENTS[key]
        kwargs: dict = {"seed": seed}
        scale = _REPETITION_SCALE.get(key, 1.0)
        reps = max(1, int(round(repetitions * scale)))
        if key == "fig13":
            kwargs["out_dir"] = out
        else:
            kwargs["repetitions"] = reps
            kwargs["processes"] = processes
        start = time.perf_counter()
        table = exp.run(**kwargs)
        elapsed = time.perf_counter() - start
        outputs = []
        csv_path = out / f"{key}.csv"
        table.to_csv(str(csv_path))
        outputs.append(csv_path.name)
        if exp.chart is not None and len(table):
            from repro.viz.charts import chart_from_table

            x, y, series = exp.chart
            svg_path = out / f"{key}.svg"
            chart_from_table(
                table, x=x, y=y, series=series,
                title=f"{exp.paper_artifact}: {exp.description}",
                path=svg_path,
            )
            outputs.append(svg_path.name)
        lines.append(
            f"| {key} | {exp.description} | {len(table)} | {elapsed:.1f} "
            f"| {', '.join(outputs)} |"
        )
        print(f"{key:<8} {len(table):>4} rows  {elapsed:6.1f}s")
    summary = out / "SUMMARY.md"
    summary.write_text("\n".join(lines) + "\n")
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Reproduce every table/figure into a directory."
    )
    parser.add_argument("out_dir")
    parser.add_argument("--repetitions", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--processes", type=int, default=None)
    parser.add_argument("--keys", nargs="*", default=None,
                        help="subset of artifact keys (default: all)")
    args = parser.parse_args(argv)
    summary = reproduce_paper(
        args.out_dir,
        repetitions=args.repetitions,
        seed=args.seed,
        processes=args.processes,
        keys=args.keys,
    )
    print(f"summary written to {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
