"""Shard worker pool: process-parallel epochs over a zero-copy data path.

A :class:`ShardPool` runs shard epochs in a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The immutable spec
crosses the process boundary **once per** ``(shard_id, version)``: the
dispatcher publishes it into shared memory via a
:class:`~repro.serve.specstore.SpecStore` and per epoch ships only a
~100-byte :class:`~repro.serve.specstore.SpecTicket` plus the engine's
mutable state snapshot (choices / ext / RNG / proposal cache).  Each
worker keeps a spec cache keyed on the ticket — a churn rebuild bumps
``spec.version``, misses the cache, and re-attaches the new segment;
steady-state epochs are pure cache hits with zero array copies
(``np.frombuffer`` views over the shared mapping).

If shared memory is unavailable the pool degrades to the legacy
transport (full spec pickled per job) — same results, larger payloads.

Telemetry follows :mod:`repro.experiments.runner`'s pattern: when the
driver has telemetry enabled, each job enables + resets it in the worker
process and returns an :class:`repro.obs.TelemetrySnapshot` that the
driver merges, so ``serve.*`` metrics survive the process boundary.
The pool additionally accounts the transport itself:
``serve.worker_cache_hits`` / ``serve.worker_cache_misses`` (spec-cache
behaviour), ``serve.spec_bytes_shipped`` (once-per-version segment
bytes, emitted by the store) and ``serve.epoch_payload_bytes`` (pickled
per-job pipe traffic — the quantity the zero-copy path collapses).
"""

from __future__ import annotations

import pickle
from concurrent.futures import Future, ProcessPoolExecutor

import repro.obs as obs
from repro.serve.shard import EpochResult, ShardEngine, ShardSpec
from repro.serve.specstore import SpecStore, SpecTicket, load_spec
from repro.utils.validation import require

__all__ = ["ShardPool"]


# ---------------------------------------------------------------- worker side
#: Per-worker-process spec cache: shard_id -> (version, spec, shared block).
#: Engines are rebuilt per job from the cached spec (the mutable state is
#: what travels); the *spec* — dominated by the compiled arrays — is the
#: part worth keeping resident.
_SPEC_CACHE: dict[int, tuple[int, ShardSpec, object]] = {}

#: Kernel-backend name this worker process has installed + warmed; jobs
#: re-install only on change (normally once per worker lifetime).
_BACKEND_READY: str | None = None


def _ensure_backend(name: str | None) -> None:
    """Install + warm the requested kernel backend, once per process.

    Runs before the first epoch so JIT compilation (numba) or device
    setup (cupy) never lands inside a measured epoch.  Unavailable
    backends degrade to numpy inside :func:`repro.core.backend.get_backend`
    with its usual single warning.
    """
    global _BACKEND_READY
    if name is None or name == _BACKEND_READY:
        return
    from repro.core.backend import set_backend

    set_backend(name).warmup()
    _BACKEND_READY = name


def _resolve_spec(ref: "ShardSpec | SpecTicket") -> tuple[ShardSpec, bool]:
    """Return (spec, cache_hit) for a job's spec reference."""
    if isinstance(ref, ShardSpec):  # legacy transport: spec came by pickle
        return ref, False
    cached = _SPEC_CACHE.get(ref.shard_id)
    if cached is not None and cached[0] == ref.version:
        return cached[1], True
    spec, block = load_spec(ref)
    _SPEC_CACHE[ref.shard_id] = (ref.version, spec, block)
    if cached is not None:
        # Evict after the replacement lands; closing the stale mapping is
        # safe even if old views linger (see repro.core.shm._quiet_close).
        cached[2].close()  # type: ignore[attr-defined]
    return spec, False


def _run_epoch_job(
    ref: "ShardSpec | SpecTicket",
    state: dict,
    scheduler: str,
    sort_key: str,
    max_slots: int | None,
    telemetry: bool,
    backend: str | None = None,
) -> tuple[EpochResult, dict, "obs.TelemetrySnapshot | None", bool]:
    """Resolve the spec, rebuild the engine, run one epoch, snapshot."""
    if telemetry:
        obs.enable()
        obs.reset()
    _ensure_backend(backend)
    spec, cache_hit = _resolve_spec(ref)
    engine = ShardEngine.from_state(
        spec, state, scheduler=scheduler, sort_key=sort_key
    )
    result = engine.run_epoch(max_slots)
    # Stamp the shard id onto everything the worker collected so merged
    # metric series and `--trace` hotspot tables stay attributable per
    # shard instead of silently folding identical paths together.
    snap = (
        obs.label_snapshot(obs.snapshot(), shard=spec.shard_id)
        if telemetry
        else None
    )
    return result, engine.export_state(), snap, cache_hit


# ------------------------------------------------------------ dispatcher side
class ShardPool:
    """A persistent process pool running shard epochs concurrently."""

    def __init__(
        self,
        processes: int,
        *,
        use_shm: bool = True,
        backend: str | None = None,
    ) -> None:
        require(processes >= 1, "processes must be >= 1")
        self.processes = processes
        #: Kernel-backend name each worker installs + warms before its
        #: first epoch (``None`` = workers keep the ambient default).
        self.backend = backend
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=processes
        )
        self._store: SpecStore | None = None
        if use_shm:
            try:
                self._store = SpecStore()
            except Exception:  # pragma: no cover - no shm on this platform
                self._store = None
        #: spec-cache behaviour reported back by workers.
        self.cache_hits = 0
        self.cache_misses = 0
        #: cumulative pickled per-job payload bytes (pipe traffic).
        self.payload_bytes = 0

    @property
    def spec_bytes_shipped(self) -> int:
        """Once-per-version spec bytes written to shared segments."""
        return self._store.bytes_published if self._store is not None else 0

    def _spec_ref(self, spec: ShardSpec) -> "ShardSpec | SpecTicket":
        if self._store is None:
            return spec
        try:
            return self._store.ticket_for(spec)
        except Exception:  # pragma: no cover - shm runtime failure
            # Degrade permanently to the pickle transport rather than
            # failing the epoch.
            self._store.shutdown()
            self._store = None
            return spec

    # ---------------------------------------------------------------- submit
    def submit_epoch(
        self,
        spec: ShardSpec,
        state: dict,
        *,
        scheduler: str,
        sort_key: str,
        max_slots: int | None = None,
    ) -> Future:
        """Dispatch one shard epoch; pair with :meth:`harvest`."""
        require(self._pool is not None, "ShardPool is shut down")
        ref = self._spec_ref(spec)
        payload = len(
            pickle.dumps((ref, state), protocol=pickle.HIGHEST_PROTOCOL)
        )
        self.payload_bytes += payload
        if obs.enabled():
            obs.counter("serve.epoch_payload_bytes").inc(payload)
        return self._pool.submit(
            _run_epoch_job, ref, state, scheduler, sort_key,
            max_slots, obs.enabled(), self.backend,
        )

    def harvest(self, future: Future) -> tuple[EpochResult, dict]:
        """Collect one submitted epoch: merge telemetry, count the cache."""
        result, state, snap, cache_hit = future.result()
        if snap is not None:
            obs.merge_snapshot(snap)
        if cache_hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if obs.enabled():
            name = (
                "serve.worker_cache_hits"
                if cache_hit
                else "serve.worker_cache_misses"
            )
            obs.counter(name).inc()
        return result, state

    def run_epochs(
        self,
        specs: list[ShardSpec],
        states: list[dict],
        *,
        scheduler: str,
        sort_key: str,
        max_slots: int | None = None,
    ) -> list[tuple[EpochResult, dict]]:
        """Run one epoch per shard; results align with the input order."""
        require(len(specs) == len(states), "one state per spec required")
        futures = [
            self.submit_epoch(
                spec, state, scheduler=scheduler, sort_key=sort_key,
                max_slots=max_slots,
            )
            for spec, state in zip(specs, states)
        ]
        return [self.harvest(fut) for fut in futures]

    # ------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Stop workers and unlink every published segment (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._store is not None:
            self._store.shutdown()
            self._store = None

    # Back-compat alias (pre-refactor API).
    def close(self) -> None:
        self.shutdown()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
