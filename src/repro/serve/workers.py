"""Shard worker pool: process-parallel epochs over picklable snapshots.

A :class:`ShardPool` ships ``(ShardSpec, engine state)`` pairs to a
:class:`~concurrent.futures.ProcessPoolExecutor`, rebuilds each engine in
the worker via :meth:`~repro.serve.shard.ShardEngine.from_state`, runs one
epoch, and ships the :class:`~repro.serve.shard.EpochResult` plus the
post-epoch state back.  Both directions are plain data (numpy arrays,
dataclasses, the RNG's ``bit_generator.state`` dict), mirroring the
snapshot protocol the crash/resume chaos hook already relies on.

Telemetry follows :mod:`repro.experiments.runner`'s pattern: when the
driver has telemetry enabled, each job enables + resets it in the worker
process and returns an :class:`repro.obs.TelemetrySnapshot` that the
driver merges, so ``serve.*`` metrics survive the process boundary.

Shipping the full spec every epoch is deliberate for now — specs change
under churn (rebuilds bump ``spec.version``) and correctness beats the
copy cost at current scales.  Caching specs worker-side keyed on
``(shard_id, version)`` is the "async shard transport" follow-up in
ROADMAP.md.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import repro.obs as obs
from repro.serve.shard import EpochResult, ShardEngine, ShardSpec
from repro.utils.validation import require

__all__ = ["ShardPool"]


def _run_epoch_job(
    spec: ShardSpec,
    state: dict,
    scheduler: str,
    sort_key: str,
    max_slots: int | None,
    telemetry: bool,
) -> tuple[EpochResult, dict, "obs.TelemetrySnapshot | None"]:
    """Rebuild one shard engine in the worker, run an epoch, snapshot."""
    if telemetry:
        obs.enable()
        obs.reset()
    engine = ShardEngine.from_state(
        spec, state, scheduler=scheduler, sort_key=sort_key
    )
    result = engine.run_epoch(max_slots)
    # Stamp the shard id onto everything the worker collected so merged
    # metric series and `--trace` hotspot tables stay attributable per
    # shard instead of silently folding identical paths together.
    snap = (
        obs.label_snapshot(obs.snapshot(), shard=spec.shard_id)
        if telemetry
        else None
    )
    return result, engine.export_state(), snap


class ShardPool:
    """A persistent process pool running shard epochs concurrently."""

    def __init__(self, processes: int) -> None:
        require(processes >= 1, "processes must be >= 1")
        self.processes = processes
        self._pool = ProcessPoolExecutor(max_workers=processes)

    def run_epochs(
        self,
        specs: list[ShardSpec],
        states: list[dict],
        *,
        scheduler: str,
        sort_key: str,
        max_slots: int | None = None,
    ) -> list[tuple[EpochResult, dict]]:
        """Run one epoch per shard; results align with the input order."""
        require(len(specs) == len(states), "one state per spec required")
        telemetry = obs.enabled()
        futures = [
            self._pool.submit(
                _run_epoch_job, spec, state, scheduler, sort_key,
                max_slots, telemetry,
            )
            for spec, state in zip(specs, states)
        ]
        out: list[tuple[EpochResult, dict]] = []
        for fut in futures:
            result, state, snap = fut.result()
            if snap is not None:
                obs.merge_snapshot(snap)
            out.append((result, state))
        return out

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
