"""Shard worker pool: process-parallel epochs over a zero-copy data path.

A :class:`ShardPool` runs shard epochs in a
:class:`~concurrent.futures.ProcessPoolExecutor`.  The immutable spec
crosses the process boundary **once per** ``(shard_id, version)``: the
dispatcher publishes it into shared memory via a
:class:`~repro.serve.specstore.SpecStore` and per epoch ships only a
~100-byte :class:`~repro.serve.specstore.SpecTicket` plus the engine's
mutable state snapshot (choices / ext / RNG / proposal cache).  Each
worker keeps a spec cache keyed on the ticket — a churn rebuild bumps
``spec.version``, misses the cache, and re-attaches the new segment;
steady-state epochs are pure cache hits with zero array copies
(``np.frombuffer`` views over the shared mapping).

If shared memory is unavailable the pool degrades to the legacy
transport (full spec pickled per job) — same results, larger payloads —
and every degradation is observable: a structured ``serve.shm_degraded``
event plus a ``serve.shm_degraded_total{reason}`` counter fire whenever
the pool falls back, transiently or permanently.

Failure surface (consumed by
:class:`~repro.serve.supervisor.ShardSupervisor`): :meth:`submit_epoch`
returns a :class:`PendingEpoch` handle carrying everything needed to
resubmit the same job, and :meth:`harvest` translates infrastructure
failures into the typed errors of :mod:`repro.faults.serveplan` —
``TimeoutError`` → :class:`~repro.faults.serveplan.EpochTimeoutError`,
``BrokenProcessPool`` → :class:`~repro.faults.serveplan.WorkerCrashError`
(after which :meth:`ensure_alive` / :meth:`rebuild` replace the executor;
fresh workers re-warm their kernel backend and start with empty spec
caches).  An optional compiled
:class:`~repro.faults.serveplan.ServeFaultInjector` is consulted per
dispatch to stage worker kills, epoch stalls, attach failures, and
segment corruption deterministically.

Telemetry follows :mod:`repro.experiments.runner`'s pattern: when the
driver has telemetry enabled, each job enables + resets it in the worker
process and returns an :class:`repro.obs.TelemetrySnapshot` that the
driver merges, so ``serve.*`` metrics survive the process boundary.
The pool additionally accounts the transport itself:
``serve.worker_cache_hits`` / ``serve.worker_cache_misses`` (spec-cache
behaviour; legacy pickle jobs count as ``serve.legacy_jobs_total``
instead of cache misses — no segment attach happens), ``serve.
spec_bytes_shipped`` (once-per-version segment bytes, emitted by the
store) and ``serve.epoch_payload_bytes`` (pickled per-job pipe traffic —
the quantity the zero-copy path collapses).
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from concurrent.futures import Future, ProcessPoolExecutor, TimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import repro.obs as obs
from repro.faults.serveplan import (
    EpochTimeoutError,
    ServeFaultInjector,
    SpecAttachError,
    SpecPublishError,
    WorkerCrashError,
)
from repro.serve.shard import EpochResult, ShardEngine, ShardSpec
from repro.serve.specstore import SpecStore, SpecTicket, load_spec
from repro.utils.validation import require

__all__ = ["PendingEpoch", "ShardPool"]


# ---------------------------------------------------------------- worker side
#: Per-worker-process spec cache: shard_id -> (version, spec, shared block).
#: Engines are rebuilt per job from the cached spec (the mutable state is
#: what travels); the *spec* — dominated by the compiled arrays — is the
#: part worth keeping resident.
_SPEC_CACHE: dict[int, tuple[int, ShardSpec, object]] = {}

#: Kernel-backend name this worker process has installed + warmed; jobs
#: re-install only on change (normally once per worker lifetime).
_BACKEND_READY: str | None = None


def _ensure_backend(name: str | None) -> None:
    """Install + warm the requested kernel backend, once per process.

    Runs before the first epoch so JIT compilation (numba) or device
    setup (cupy) never lands inside a measured epoch.  Unavailable
    backends degrade to numpy inside :func:`repro.core.backend.get_backend`
    with its usual single warning.
    """
    global _BACKEND_READY
    if name is None or name == _BACKEND_READY:
        return
    from repro.core.backend import set_backend

    set_backend(name).warmup()
    _BACKEND_READY = name


def _resolve_spec(ref: "ShardSpec | SpecTicket") -> tuple[ShardSpec, bool | None]:
    """Return (spec, cache_hit) for a job's spec reference.

    ``cache_hit`` is ``None`` for the legacy transport — the spec came by
    pickle, so there is no cache to hit or miss."""
    if isinstance(ref, ShardSpec):  # legacy transport: spec came by pickle
        return ref, None
    cached = _SPEC_CACHE.get(ref.shard_id)
    if cached is not None and cached[0] == ref.version:
        return cached[1], True
    spec, block = load_spec(ref)
    _SPEC_CACHE[ref.shard_id] = (ref.version, spec, block)
    if cached is not None:
        # Evict after the replacement lands; closing the stale mapping is
        # safe even if old views linger (see repro.core.shm._quiet_close).
        cached[2].close()  # type: ignore[attr-defined]
    return spec, False


def _run_epoch_job(
    ref: "ShardSpec | SpecTicket",
    state: dict,
    scheduler: str,
    sort_key: str,
    max_slots: int | None,
    telemetry: bool,
    backend: str | None = None,
    stall_seconds: float = 0.0,
    fail_attach: bool = False,
) -> tuple[EpochResult, dict, "obs.TelemetrySnapshot | None", bool | None]:
    """Resolve the spec, rebuild the engine, run one epoch, snapshot.

    ``stall_seconds`` / ``fail_attach`` are injected fates from a
    :class:`~repro.faults.serveplan.ServeFaultPlan`: the stall sleeps
    before the epoch (driving the dispatch past its deadline), the attach
    failure raises :class:`~repro.faults.serveplan.SpecAttachError` as if
    the segment could not be mapped.  Neither touches engine state, so a
    retried epoch replays bit-identically."""
    if stall_seconds > 0.0:
        time.sleep(stall_seconds)
    if fail_attach:
        segment = ref.segment if isinstance(ref, SpecTicket) else "<legacy>"
        raise SpecAttachError(segment)
    if telemetry:
        obs.enable()
        obs.reset()
    _ensure_backend(backend)
    spec, cache_hit = _resolve_spec(ref)
    engine = ShardEngine.from_state(
        spec, state, scheduler=scheduler, sort_key=sort_key
    )
    result = engine.run_epoch(max_slots)
    # Stamp the shard id onto everything the worker collected so merged
    # metric series and `--trace` hotspot tables stay attributable per
    # shard instead of silently folding identical paths together.
    snap = (
        obs.label_snapshot(obs.snapshot(), shard=spec.shard_id)
        if telemetry
        else None
    )
    return result, engine.export_state(), snap, cache_hit


# ------------------------------------------------------------ dispatcher side
@dataclass
class PendingEpoch:
    """Handle for one dispatched epoch: the future plus everything needed
    to resubmit the identical job (engine state travels by value, so a
    resubmission replays the epoch bit-identically)."""

    future: Future
    shard_id: int
    spec: ShardSpec
    state: dict
    scheduler: str
    sort_key: str
    max_slots: int | None
    force_legacy: bool = False


class ShardPool:
    """A persistent process pool running shard epochs concurrently."""

    def __init__(
        self,
        processes: int,
        *,
        use_shm: bool = True,
        backend: str | None = None,
        faults: ServeFaultInjector | None = None,
    ) -> None:
        require(processes >= 1, "processes must be >= 1")
        self.processes = processes
        #: Kernel-backend name each worker installs + warms before its
        #: first epoch (``None`` = workers keep the ambient default).
        self.backend = backend
        #: Compiled serve-side fault schedule (None = clean substrate).
        self.faults = faults
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=processes
        )
        self._broken = False
        self._store: SpecStore | None = None
        if use_shm:
            try:
                self._store = SpecStore(faults=faults)
            except Exception as exc:
                self._store = None
                self._note_degraded("store_init", str(exc))
        #: spec-cache behaviour reported back by workers.
        self.cache_hits = 0
        self.cache_misses = 0
        #: jobs that crossed the pipe on the legacy full-spec transport.
        self.legacy_jobs = 0
        #: cumulative pickled per-job payload bytes (pipe traffic).
        self.payload_bytes = 0
        #: executor replacements after a worker crash (see :meth:`rebuild`).
        self.rebuilds = 0

    @property
    def spec_bytes_shipped(self) -> int:
        """Once-per-version spec bytes written to shared segments."""
        return self._store.bytes_published if self._store is not None else 0

    @property
    def degraded(self) -> bool:
        """True once the pool has permanently fallen back to pickle."""
        return self._store is None

    def _note_degraded(self, reason: str, detail: str) -> None:
        """Record one shm → pickle degradation, visibly."""
        if obs.enabled():
            obs.counter("serve.shm_degraded_total", reason=reason).inc()
            obs.event("serve.shm_degraded", reason=reason, detail=detail)

    def _spec_ref(
        self, spec: ShardSpec, *, force_legacy: bool = False
    ) -> "ShardSpec | SpecTicket":
        if self._store is None or force_legacy:
            return spec
        try:
            return self._store.ticket_for(spec)
        except SpecPublishError as exc:
            # Transient (typically injected): pickle this one job; the
            # next epoch publishes normally.
            self._note_degraded("publish_failure", str(exc))
            return spec
        except Exception as exc:
            # Degrade permanently to the pickle transport rather than
            # failing the epoch.
            self._note_degraded("publish_error", str(exc))
            self._store.shutdown()
            self._store = None
            return spec

    # ---------------------------------------------------------------- submit
    def submit_epoch(
        self,
        spec: ShardSpec,
        state: dict,
        *,
        scheduler: str,
        sort_key: str,
        max_slots: int | None = None,
        force_legacy: bool = False,
    ) -> PendingEpoch:
        """Dispatch one shard epoch; pair with :meth:`harvest`.

        Consults the fault injector (if any) for this dispatch's fate:
        segment corruption lands after the ticket is published (so only
        cache-missing attaches see it), stall / attach-failure fates ship
        with the job, and a worker kill lands right after submission."""
        require(self._pool is not None, "ShardPool is shut down")
        fate = None
        if self.faults is not None:
            fate = self.faults.epoch_fate(spec.shard_id)
        ref = self._spec_ref(spec, force_legacy=force_legacy)
        if (
            fate is not None
            and fate.corrupt_segment
            and self._store is not None
            and isinstance(ref, SpecTicket)
        ):
            self._store.corrupt(spec.shard_id)
        payload = len(
            pickle.dumps((ref, state), protocol=pickle.HIGHEST_PROTOCOL)
        )
        self.payload_bytes += payload
        if obs.enabled():
            obs.counter("serve.epoch_payload_bytes").inc(payload)
        job_args = (
            _run_epoch_job, ref, state, scheduler, sort_key,
            max_slots, obs.enabled(), self.backend,
            fate.stall_seconds if fate is not None else 0.0,
            fate.fail_attach if fate is not None else False,
        )
        try:
            future = self._pool.submit(*job_args)
        except BrokenProcessPool:
            # A worker died between rounds: the executor refuses new work
            # before any harvest has seen the breakage.  State travels by
            # value, so rebuilding and resubmitting is trajectory-neutral.
            self._broken = True
            self.rebuild()
            future = self._pool.submit(*job_args)
        if fate is not None and fate.kill_worker:
            self.kill_worker()
        return PendingEpoch(
            future=future,
            shard_id=spec.shard_id,
            spec=spec,
            state=state,
            scheduler=scheduler,
            sort_key=sort_key,
            max_slots=max_slots,
            force_legacy=force_legacy or not isinstance(ref, SpecTicket),
        )

    def resubmit(self, job: PendingEpoch) -> PendingEpoch:
        """Dispatch the identical epoch again (supervisor retry path)."""
        return self.submit_epoch(
            job.spec,
            job.state,
            scheduler=job.scheduler,
            sort_key=job.sort_key,
            max_slots=job.max_slots,
            force_legacy=job.force_legacy,
        )

    def harvest(
        self,
        job: "PendingEpoch | Future",
        timeout: float | None = None,
    ) -> tuple[EpochResult, dict]:
        """Collect one submitted epoch: merge telemetry, count the cache.

        With a ``timeout``, a late result raises
        :class:`~repro.faults.serveplan.EpochTimeoutError` (the stale
        future is cancelled if still queued; a running one is left to
        finish and its result dropped — the retry re-runs from the same
        by-value state, so nothing diverges).  A broken executor raises
        :class:`~repro.faults.serveplan.WorkerCrashError` and marks the
        pool for :meth:`ensure_alive`."""
        future = job.future if isinstance(job, PendingEpoch) else job
        shard_id = job.shard_id if isinstance(job, PendingEpoch) else -1
        try:
            result, state, snap, cache_hit = future.result(timeout)
        except TimeoutError:
            future.cancel()
            raise EpochTimeoutError(shard_id, timeout or 0.0) from None
        except BrokenProcessPool as exc:
            self._broken = True
            raise WorkerCrashError(shard_id, str(exc)) from exc
        if snap is not None:
            obs.merge_snapshot(snap)
        if cache_hit is None:
            self.legacy_jobs += 1
            if obs.enabled():
                obs.counter("serve.legacy_jobs_total").inc()
        else:
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            if obs.enabled():
                name = (
                    "serve.worker_cache_hits"
                    if cache_hit
                    else "serve.worker_cache_misses"
                )
                obs.counter(name).inc()
        return result, state

    def run_epochs(
        self,
        specs: list[ShardSpec],
        states: list[dict],
        *,
        scheduler: str,
        sort_key: str,
        max_slots: int | None = None,
    ) -> list[tuple[EpochResult, dict]]:
        """Run one epoch per shard; results align with the input order."""
        require(len(specs) == len(states), "one state per spec required")
        jobs = [
            self.submit_epoch(
                spec, state, scheduler=scheduler, sort_key=sort_key,
                max_slots=max_slots,
            )
            for spec, state in zip(specs, states)
        ]
        return [self.harvest(job) for job in jobs]

    # -------------------------------------------------------------- recovery
    def republish(self, shard_id: int) -> None:
        """Retire a shard's live segment so the next dispatch republishes
        it fresh (recovery from segment corruption)."""
        if self._store is not None:
            self._store.retire(shard_id)

    def kill_worker(self) -> None:
        """SIGKILL one live worker process (fault injection only).

        Breaks the executor for real — every in-flight future raises
        ``BrokenProcessPool`` — exercising the same recovery path a
        genuine OOM-kill or segfault would."""
        require(self._pool is not None, "ShardPool is shut down")
        procs = list(self._pool._processes.values())
        require(bool(procs), "no worker processes to kill yet")
        os.kill(procs[0].pid, signal.SIGKILL)

    def rebuild(self) -> None:
        """Replace a broken executor with a fresh one.

        The spec store (and its published segments) survives: fresh
        workers start with empty spec caches, miss once per shard, and
        re-attach the live segments; their first job re-warms the kernel
        backend via ``_ensure_backend``.  In-flight futures of the old
        executor are already dead (``BrokenProcessPool``)."""
        old = self._pool
        self._pool = ProcessPoolExecutor(max_workers=self.processes)
        self._broken = False
        self.rebuilds += 1
        if obs.enabled():
            obs.counter("serve.pool_rebuilds_total").inc()
            obs.event("serve.pool_rebuild", rebuilds=self.rebuilds)
        if old is not None:
            try:
                old.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken pools may throw
                pass

    def ensure_alive(self) -> None:
        """Rebuild the executor iff a harvest marked it broken."""
        if self._broken or self._pool is None:
            self.rebuild()

    # ------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        """Stop workers and unlink every published segment (idempotent)."""
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=True)
            except Exception:  # pragma: no cover - broken pools may throw
                pass
            self._pool = None
        if self._store is not None:
            self._store.shutdown()
            self._store = None

    # Back-compat alias (pre-refactor API).
    def close(self) -> None:
        self.shutdown()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
