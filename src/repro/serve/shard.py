"""Shard specs and the per-shard best-response engine.

A shard owns one region of the task partition and the users assigned to
it.  Its :class:`ShardSpec` is a picklable, versioned description — the
sub-:class:`~repro.core.game.RouteNavigationGame` over the shard's
*visible* tasks (its own region plus every task its users' routes cover),
the local→global task map, and the ``own_mask`` marking which visible
tasks belong to the shard's region.

:class:`ShardEngine` replays the monolithic allocator loop
(:class:`~repro.algorithms.base.Allocator` + DGRN/MUUN ``_slot``) over the
sub-game with one extra rule — **region eligibility**: a proposal is
granted inside a parallel epoch only if its touched-task set ``B_i`` lies
entirely inside the shard's own region.  Region task counts then change
only through their owner shard during an epoch, so every granted gain is
exact, and grants of different shards have pairwise-disjoint ``B_i`` —
each parallel epoch is a valid PUU super-slot of the global game (Eq. 11)
and the global potential strictly increases.  Proposals that cross the
boundary are *deferred*: the engine reports their users and the session
re-evaluates them sequentially at the next sync.

Foreign contributions to visible task counts arrive as an additive ``ext``
offset folded straight into the profile's count vector, so every profit /
best-response kernel sees exact global counts without knowing about
sharding.  For ``K=1`` the own-region mask covers everything, ``ext`` is
identically zero, and the engine's RNG/kernel sequence is bit-for-bit the
monolithic DGRN/MUUN trajectory (asserted over the 34-seed suite).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dc_replace
from typing import Any

import numpy as np

from repro.algorithms.base import ProposalCache, _HistoryRecorder
from repro.algorithms.muun import puu_select_batch
from repro.core.arrays import gather_segments
from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.responses import ProposalBatch, single_best_update
from repro.core.weights import PlatformWeights, UserWeights
from repro.network.routing import Route
from repro.serve.partition import RegionPartition
from repro.tasks.task import Task, TaskSet
from repro.utils.validation import require

__all__ = ["UserRecord", "ShardSpec", "ShardEngine", "EpochResult",
           "build_shard_spec"]

_EMPTY_INTP = np.zeros(0, dtype=np.intp)

#: Epoch slot budget when the caller does not cap it ("run to local
#: convergence"); a backstop, not a tuning knob — FIP terminates far below.
DEFAULT_EPOCH_SLOTS = 100_000


@dataclass(frozen=True)
class UserRecord:
    """One served user: identity, candidate routes, and preferences.

    The serving layer's unit of churn — joins add a record, leaves retire
    one.  Routes must already carry their covered ``task_ids`` in *global*
    task numbering; shard builds remap them.
    """

    user_id: int
    routes: tuple[Route, ...]
    weights: UserWeights

    def __post_init__(self) -> None:
        require(
            len(self.routes) >= 1,
            f"user {self.user_id} has no candidate routes — a served user "
            "needs at least one route to hold a strategy",
        )
        # Coverage is immutable and read on every shard rebuild / owner
        # routing decision — compute it once (frozen dataclass, hence the
        # object.__setattr__).
        ids = [np.asarray(r.task_ids, dtype=np.intp) for r in self.routes]
        flat = np.concatenate(ids) if ids else _EMPTY_INTP
        object.__setattr__(self, "_covered", np.unique(flat))

    def covered_tasks(self) -> np.ndarray:
        """Sorted-unique global task ids covered by any candidate route."""
        return self._covered


@dataclass(frozen=True)
class ShardSpec:
    """Picklable description of one shard's sub-game (versioned).

    ``users`` are global user ids, strictly ascending — local user ``u``
    of the sub-game is global user ``users[u]``.  ``task_map`` maps local
    task ids to global ids (ascending); ``own_mask[t]`` is True iff local
    task ``t``'s region is this shard.  ``version`` increments on every
    membership rebuild (churn), letting pooled workers cache the spec.
    """

    shard_id: int
    users: np.ndarray
    game: RouteNavigationGame
    task_map: np.ndarray
    own_mask: np.ndarray
    version: int = 0

    def __post_init__(self) -> None:
        require(self.users.size >= 1, "a shard spec needs at least one user")
        if self.users.size > 1:
            require(
                bool(np.all(np.diff(self.users) > 0)),
                "shard users must be strictly ascending global ids",
            )
        require(
            self.task_map.size == self.game.num_tasks
            and self.own_mask.size == self.game.num_tasks,
            "task_map/own_mask must cover the sub-game's tasks",
        )


def build_shard_spec(
    shard_id: int,
    records: list[UserRecord],
    tasks: TaskSet,
    partition: RegionPartition,
    platform: PlatformWeights,
    *,
    detour_unit_km: float = 1.0,
    version: int = 0,
    compact: bool = False,
) -> ShardSpec:
    """Compile a shard's sub-game over its visible tasks.

    By default every shard sees the full task set (``task_map`` is the
    identity): the global :class:`TaskSet` and the records' route objects
    are reused verbatim, so the sub-game's compiled arrays are
    bit-identical to the monolithic game's and churn rebuilds skip route
    remapping entirely — foreign counts are handled by the engine's
    ``ext`` offsets either way.  With ``compact=True`` the sub-game
    shrinks to the *visible* tasks (own-region tasks ∪ tasks covered by
    the shard's users) and routes are remapped to local task ids — worth
    it only when the task set dwarfs a shard's footprint.
    """
    require(len(records) >= 1, "cannot build a spec for a dormant shard")
    records = sorted(records, key=lambda r: r.user_id)
    users = np.asarray([r.user_id for r in records], dtype=np.intp)
    if compact:
        covered = [r.covered_tasks() for r in records]
        own = partition.region_tasks(shard_id)
        task_map = np.unique(np.concatenate([own] + covered))
    else:
        task_map = np.arange(len(tasks), dtype=np.intp)
    identity = task_map.size == len(tasks)
    if identity:
        sub_tasks: TaskSet = tasks
        route_sets = [r.routes for r in records]
    else:
        sub_tasks = TaskSet(
            [
                Task(k, tasks[g].x, tasks[g].y, tasks[g].base_reward,
                     tasks[g].reward_increment)
                for k, g in enumerate(task_map.tolist())
            ]
        )
        route_sets = [
            tuple(
                dc_replace(
                    r,
                    task_ids=tuple(
                        np.searchsorted(
                            task_map, np.asarray(r.task_ids, dtype=np.intp)
                        ).tolist()
                    ),
                )
                for r in rec.routes
            )
            for rec in records
        ]
    game = RouteNavigationGame.build(
        sub_tasks,
        route_sets,
        [r.weights for r in records],
        platform,
        detour_unit_km=detour_unit_km,
    )
    own_mask = partition.task_region[task_map] == shard_id
    return ShardSpec(
        shard_id=shard_id,
        users=users,
        game=game,
        task_map=task_map,
        own_mask=own_mask,
        version=version,
    )


@dataclass
class EpochResult:
    """What one parallel epoch produced on one shard."""

    shard_id: int
    #: granted moves as (global_user, old_route, new_route, gain), in
    #: grant order — a valid better-response sequence of the global game.
    moves: list[tuple[int, int, int, float]]
    #: global ids of users whose best response crossed the region boundary
    #: and was deferred to the session's sequential reconciliation pass.
    boundary_users: np.ndarray
    slots: int
    #: True iff the epoch stopped because no eligible proposal remained
    #: (deferred boundary proposals may still exist).
    converged: bool
    #: wall-clock duration of the epoch (straggler detection input).
    seconds: float = 0.0


class ShardEngine:
    """The allocator loop of one shard, with region eligibility and ext counts."""

    def __init__(
        self,
        spec: ShardSpec,
        *,
        scheduler: str = "suu",
        rng: np.random.Generator,
        choices: np.ndarray | None = None,
        record_history: bool = False,
        sort_key: str = "delta",
    ) -> None:
        require(scheduler in ("suu", "puu"), f"unknown scheduler: {scheduler!r}")
        self.spec = spec
        self.scheduler = scheduler
        self.sort_key = sort_key
        self.rng = rng
        # Matches Allocator.run's setup order exactly: the initial profile
        # consumes the RNG first, then the cache binds the same stream for
        # tie-breaking — the K=1 bit-identity contract.
        if choices is None:
            self.profile = StrategyProfile.random(spec.game, self.rng)
        else:
            self.profile = StrategyProfile(spec.game, choices)
        self.ext = np.zeros(spec.game.num_tasks, dtype=np.intp)
        self._cache = ProposalCache(spec.game, pick="random", rng=self.rng)
        self._own_all = bool(spec.own_mask.all())
        require(
            not record_history or self._own_all,
            "history recording requires full visibility (K=1): shard-local "
            "potentials are reconciled by the BoundaryLedger instead",
        )
        self.recorder = _HistoryRecorder(self.profile, enabled=record_history)
        self.granted_per_slot: list[int] = []
        self.total_slots = 0

    # ------------------------------------------------------------ epoch loop
    def run_epoch(self, max_slots: int | None = None) -> EpochResult:
        """Grant region-eligible best responses until quiet or slot-capped."""
        t0 = time.perf_counter()
        limit = DEFAULT_EPOCH_SLOTS if max_slots is None else max_slots
        ga = self.spec.game.arrays
        moves: list[tuple[int, int, int, float]] = []
        boundary: set[int] = set()
        slots = 0
        converged = False
        while slots < limit:
            batch = self._cache.proposals(self.profile)
            if self._own_all:
                eligible = batch
            else:
                eligible, deferred = self._split(batch)
                if deferred.size:
                    boundary.update(
                        int(g) for g in self.spec.users[deferred]
                    )
            if not len(eligible):
                converged = True
                break
            if self.scheduler == "suu":
                rows = [int(self.rng.integers(0, len(eligible)))]
            else:
                rows = puu_select_batch(
                    eligible, self.spec.game.num_tasks, sort_key=self.sort_key
                )
                self.granted_per_slot.append(len(rows))
            granted = [eligible.triple(k) for k in rows]
            slots += 1
            tau_sum = 0.0
            changed: list[np.ndarray] = []
            for user, new_route, gain in granted:
                old = self.profile.move(user, new_route)
                self._cache.note_move(user, old, new_route)
                moves.append(
                    (int(self.spec.users[user]), old, new_route, gain)
                )
                if self.recorder.enabled:
                    tau_sum += gain / float(ga.alpha[user])
                    gained, lost = ga.changed_tasks(
                        ga.route_id(user, old), ga.route_id(user, new_route)
                    )
                    changed.append(gained)
                    changed.append(lost)
            self.recorder.advance(
                self.profile,
                tau_sum=tau_sum,
                changed_tasks=(
                    np.concatenate(changed) if changed else _EMPTY_INTP
                ),
                movers=np.asarray([m[0] for m in granted], dtype=np.intp),
            )
        self.total_slots += slots
        return EpochResult(
            shard_id=self.spec.shard_id,
            moves=moves,
            boundary_users=np.asarray(sorted(boundary), dtype=np.intp),
            slots=slots,
            converged=converged,
            seconds=time.perf_counter() - t0,
        )

    def _split(self, batch: ProposalBatch) -> tuple[ProposalBatch, np.ndarray]:
        """Partition a batch into (region-eligible rows, deferred local users)."""
        if not len(batch):
            return batch, _EMPTY_INTP
        b_indptr, b_tasks = batch.b_indptr, batch.b_tasks
        lengths = np.diff(b_indptr)
        foreign = ~self.spec.own_mask[b_tasks]
        if not foreign.any():
            return batch, _EMPTY_INTP
        # Per-row count of foreign touched tasks; rows with any are deferred.
        owner = np.repeat(np.arange(len(batch), dtype=np.intp), lengths)
        crosses = np.bincount(
            owner, weights=foreign, minlength=len(batch)
        ) > 0
        keep = np.flatnonzero(~crosses)
        deferred = batch.users[crosses]
        if keep.size == len(batch):
            return batch, _EMPTY_INTP
        kept_lens = lengths[keep]
        kept_tasks = gather_segments(b_tasks, b_indptr[:-1][keep], kept_lens)
        kept_indptr = np.concatenate(
            [[0], np.cumsum(kept_lens)]
        ).astype(np.intp)
        eligible = ProposalBatch(
            batch.users[keep],
            batch.new_routes[keep],
            batch.gains[keep],
            batch.taus[keep],
            kept_indptr,
            kept_tasks,
        )
        return eligible, deferred

    # -------------------------------------------------- cross-shard plumbing
    def apply_external(self, local_tasks: np.ndarray, deltas: np.ndarray) -> None:
        """Fold foreign count changes into the profile and invalidate caches."""
        if local_tasks.size == 0:
            return
        self.ext[local_tasks] += deltas
        self.profile.counts[local_tasks] += deltas
        self._cache.invalidate_tasks(local_tasks)

    def local_counts(self) -> np.ndarray:
        """This shard's own contribution to its visible tasks' counts."""
        return self.profile.counts - self.ext

    def local_user_index(self, global_user: int) -> int:
        """Local index of a global user id (must belong to this shard)."""
        pos = int(np.searchsorted(self.spec.users, global_user))
        require(
            pos < self.spec.users.size
            and int(self.spec.users[pos]) == global_user,
            f"user {global_user} is not on shard {self.spec.shard_id}",
        )
        return pos

    def best_move(self, local_user: int):
        """Exact unrestricted best response of one local user (sync pass)."""
        return single_best_update(
            self.profile, local_user, pick="random", rng=self.rng
        )

    def apply_move(
        self, local_user: int, new_route: int
    ) -> tuple[int, np.ndarray, np.ndarray]:
        """Apply a reconciliation move; returns (old_route, gained, lost)
        with the changed tasks in *global* ids."""
        ga = self.spec.game.arrays
        old = self.profile.move(local_user, new_route)
        self._cache.note_move(local_user, old, new_route)
        gained, lost = ga.changed_tasks(
            ga.route_id(local_user, old), ga.route_id(local_user, new_route)
        )
        return old, self.spec.task_map[gained], self.spec.task_map[lost]

    # ------------------------------------------------------------ diagnostics
    def shard_potential(self) -> float:
        """Eq. 8 over visible tasks with *local* counts, minus route costs.

        The quantity the :class:`~repro.serve.ledger.BoundaryLedger`
        reconciles: summed over shards and corrected, it equals the
        monolithic potential.
        """
        game = self.spec.game
        ga = game.arrays
        terms = game.tasks.potential_terms(self.local_counts())
        chosen = ga.chosen_route_ids(self.profile.choices)
        return float(terms.sum() - ga.route_pot_cost[chosen].sum())

    def improving_users(self) -> np.ndarray:
        """Local users with a strictly improving move (exact counts assumed).

        Uses the deterministic ``pick="first"`` path so the engine's RNG
        stream is not consumed by equilibrium checks.
        """
        from repro.core.responses import batch_best_updates

        all_users = np.arange(self.spec.game.num_users, dtype=np.intp)
        return batch_best_updates(self.profile, all_users, pick="first").users

    def nash_residual(self) -> float:
        """Max candidate profit gain across this shard's users (Nash gap).

        Zero exactly at a local Nash profile; one batched best-response
        sweep (the same kernel the allocator loop uses), ``pick="first"``
        so the RNG stream is untouched.  Exact whenever counts are exact,
        i.e. at sync points.
        """
        from repro.core.responses import batch_best_updates

        all_users = np.arange(self.spec.game.num_users, dtype=np.intp)
        batch = batch_best_updates(self.profile, all_users, pick="first")
        return float(batch.gains.max()) if len(batch) else 0.0

    # ------------------------------------------------------ snapshot / resume
    def export_state(self) -> dict[str, Any]:
        """Picklable mutable state (spec travels separately, it is static
        between membership rebuilds)."""
        from repro.core.shm import compact_ints

        return {
            "choices": compact_ints(self.profile.choices),
            "ext": compact_ints(self.ext),
            "rng_state": self.rng.bit_generator.state,
            "cache": self._cache.export_state(),
            "granted_per_slot": list(self.granted_per_slot),
            "total_slots": self.total_slots,
        }

    @classmethod
    def from_state(
        cls,
        spec: ShardSpec,
        state: dict[str, Any],
        *,
        scheduler: str = "suu",
        sort_key: str = "delta",
    ) -> "ShardEngine":
        """Rebuild a live engine from :meth:`export_state` output — the
        crash/resume and process-pool transport path."""
        rng = np.random.default_rng()
        rng.bit_generator.state = state["rng_state"]
        eng = cls(
            spec,
            scheduler=scheduler,
            rng=rng,
            choices=np.asarray(state["choices"], dtype=np.intp),
            sort_key=sort_key,
        )
        ext = np.asarray(state["ext"], dtype=np.intp)
        eng.ext = ext.copy()
        eng.profile.counts += ext
        eng._cache.import_state(state["cache"])
        eng.granted_per_slot = list(state["granted_per_slot"])
        eng.total_slots = int(state["total_slots"])
        return eng
