"""Epoch supervision: deadlines, retries, quarantine, recovery probes.

The :class:`ShardSupervisor` sits between :class:`~repro.serve.session.
ServeSession` and :class:`~repro.serve.workers.ShardPool` and turns the
pool's typed infrastructure failures into a self-healing dispatch loop:

1. **Deadlines.**  Every harvest carries a deadline derived from the
   straggler history the supervisor accumulates (p95 of observed epoch
   seconds × ``deadline_multiplier``, floored at ``deadline_floor``).
   Until ``min_history`` epochs have been observed there is no deadline —
   cold JIT warm-up and first-touch page faults never count as stalls.
2. **Retries.**  A timed-out / failed epoch is retried up to
   ``max_retries`` times with capped exponential backoff.  Engine state
   travels by value, so a retry replays the epoch **bit-identically** —
   supervision never perturbs trajectories, it only re-executes.
   Each failure kind gets its matching recovery action first:
   a broken pool is rebuilt (:meth:`ShardPool.ensure_alive`), an
   unattachable segment flips the job to the pickle transport, a corrupt
   segment is retired and republished.
3. **Quarantine.**  A shard that exhausts its retries is quarantined:
   the supervisor records a structured ``shard_quarantined``
   :class:`~repro.serve.health.Alert`, raises
   :class:`~repro.faults.serveplan.EpochAbandoned`, and the session runs
   that shard's epochs inline (in-dispatcher) — same trajectory, no pool.
4. **Recovery probes.**  Every ``probe_every`` rounds a quarantined
   shard gets one pooled probe dispatch; a successful harvest re-promotes
   it to pooled execution (``shard_promoted`` alert), a failed probe
   re-arms the quarantine clock.

Metrics: ``serve.epoch_timeouts_total``, ``serve.epoch_retries_total``
(labelled by failure kind), ``serve.quarantined_shards`` (gauge),
``serve.pool_rebuilds_total`` (emitted by the pool).  See
``docs/robustness.md`` (serving-layer failure model) for the state
machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import repro.obs as obs
from repro.faults.serveplan import (
    EpochAbandoned,
    EpochTimeoutError,
    ServeFaultError,
    SpecAttachError,
    SpecIntegrityError,
    WorkerCrashError,
)
from repro.serve.health import Alert
from repro.serve.workers import PendingEpoch, ShardPool
from repro.utils.validation import require

__all__ = ["SupervisorConfig", "ShardSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the deadline / retry / quarantine state machine."""

    #: deadline = max(floor, p95(epoch seconds) × multiplier).
    deadline_multiplier: float = 8.0
    #: Generous floor so millisecond epochs on a loaded CI box never
    #: trip spurious timeouts (a spurious retry is wasted work, not a
    #: wrong answer — but quarantine flapping helps nobody).
    deadline_floor: float = 2.0
    #: No deadline until this many epochs have been observed.
    min_history: int = 8
    #: Failed-epoch retries before the shard is quarantined.
    max_retries: int = 2
    #: Exponential backoff: base × 2^attempt, capped.
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    #: Rounds between recovery probes of a quarantined shard.
    probe_every: int = 3
    #: Straggler-history window (observations kept for the p95).
    history_cap: int = 256

    def __post_init__(self) -> None:
        require(self.deadline_multiplier > 0, "deadline_multiplier must be > 0")
        require(self.deadline_floor > 0, "deadline_floor must be > 0")
        require(self.min_history >= 1, "min_history must be >= 1")
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require(self.backoff_base >= 0, "backoff_base must be >= 0")
        require(self.backoff_cap >= 0, "backoff_cap must be >= 0")
        require(self.probe_every >= 1, "probe_every must be >= 1")
        require(self.history_cap >= self.min_history, "history_cap too small")


@dataclass
class _QuarantineEntry:
    since_round: int
    cause: str
    probes: int = 0


class ShardSupervisor:
    """Deadline/retry/quarantine wrapper around one :class:`ShardPool`."""

    def __init__(
        self,
        pool: ShardPool,
        config: SupervisorConfig | None = None,
        health=None,
    ) -> None:
        self.pool = pool
        self.config = config or SupervisorConfig()
        #: Optional :class:`~repro.serve.health.HealthMonitor`; quarantine
        #: and promotion alerts are recorded there when present.
        self.health = health
        self.round = 0
        self._history: list[float] = []
        self._quarantined: dict[int, _QuarantineEntry] = {}
        #: failure/recovery counters (mirrored to obs when enabled).
        self.timeouts = 0
        self.retries = 0
        self.quarantines = 0
        self.promotions = 0

    # ------------------------------------------------------------- deadlines
    def observe(self, seconds: float) -> None:
        """Record one epoch's duration into the straggler history."""
        self._history.append(seconds)
        if len(self._history) > self.config.history_cap:
            del self._history[: -self.config.history_cap]

    def deadline(self) -> float | None:
        """Current harvest deadline; None while history is too thin."""
        if len(self._history) < self.config.min_history:
            return None
        ranked = sorted(self._history)
        p95 = ranked[min(len(ranked) - 1, int(0.95 * (len(ranked) - 1)))]
        return max(self.config.deadline_floor,
                   p95 * self.config.deadline_multiplier)

    # ---------------------------------------------------------------- rounds
    def begin_round(self, round_idx: int) -> None:
        """Advance the supervisor's round clock (probe scheduling)."""
        self.round = round_idx

    # --------------------------------------------------------------- harvest
    def harvest(self, job: PendingEpoch):
        """Harvest one epoch under the deadline, retrying on failure.

        Returns ``(EpochResult, state)``.  After ``max_retries`` failed
        attempts the shard is quarantined and :class:`EpochAbandoned` is
        raised — the caller must run the epoch inline from the same state
        (bit-identical by construction)."""
        attempt = 0
        while True:
            try:
                result, state = self.pool.harvest(job, timeout=self.deadline())
            except ServeFaultError as exc:
                self._count_failure(exc)
                if attempt >= self.config.max_retries:
                    self._quarantine(job.shard_id, exc)
                    raise EpochAbandoned(job.shard_id, exc) from exc
                self._recover(job, exc)
                self._backoff(attempt)
                attempt += 1
                self.retries += 1
                if obs.enabled():
                    obs.counter(
                        "serve.epoch_retries_total",
                        kind=type(exc).__name__,
                    ).inc()
                job = self.pool.resubmit(job)
            else:
                self.observe(result.seconds)
                return result, state

    def _count_failure(self, exc: ServeFaultError) -> None:
        if isinstance(exc, EpochTimeoutError):
            self.timeouts += 1
            if obs.enabled():
                obs.counter("serve.epoch_timeouts_total").inc()

    def _recover(self, job: PendingEpoch, exc: ServeFaultError) -> None:
        """Apply the failure kind's recovery action before resubmitting."""
        if isinstance(exc, WorkerCrashError):
            self.pool.ensure_alive()
        elif isinstance(exc, SpecAttachError):
            # The segment cannot be mapped from this worker: ship the
            # retry on the pickle transport instead of failing again.
            job.force_legacy = True
        elif isinstance(exc, SpecIntegrityError):
            # Mangled segment: unlink it so the retry republishes fresh
            # bytes from the dispatcher's intact spec.
            self.pool.republish(job.shard_id)
        # EpochTimeoutError needs no substrate action — resubmit replays
        # the epoch; the stalled worker's late result is dropped.

    def _backoff(self, attempt: int) -> None:
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2.0 ** attempt),
        )
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------ quarantine
    @property
    def quarantined(self) -> tuple[int, ...]:
        """Currently quarantined shard ids, ascending."""
        return tuple(sorted(self._quarantined))

    def is_quarantined(self, shard_id: int) -> bool:
        return shard_id in self._quarantined

    def _quarantine(self, shard_id: int, cause: ServeFaultError) -> None:
        if shard_id in self._quarantined:
            return
        self._quarantined[shard_id] = _QuarantineEntry(
            since_round=self.round, cause=type(cause).__name__
        )
        self.quarantines += 1
        self._record_alert(
            kind="shard_quarantined",
            value=float(shard_id),
            threshold=float(self.config.max_retries),
            message=(
                f"shard {shard_id} quarantined to inline execution after "
                f"{self.config.max_retries + 1} failed attempts "
                f"({type(cause).__name__}: {cause}); probing every "
                f"{self.config.probe_every} rounds"
            ),
        )
        self._gauge()

    def probe_due(self, shard_id: int) -> bool:
        """True when a quarantined shard should get a pooled probe this
        round (every ``probe_every`` rounds since quarantine/last probe)."""
        entry = self._quarantined.get(shard_id)
        if entry is None:
            return False
        return self.round - entry.since_round >= self.config.probe_every

    def probe_harvest(self, job: PendingEpoch):
        """Harvest a recovery probe: one attempt, no retries.

        Success re-promotes the shard and returns ``(result, state)``;
        failure re-arms the quarantine clock and returns ``None`` (the
        caller runs the epoch inline, as for any quarantined shard)."""
        entry = self._quarantined[job.shard_id]
        entry.probes += 1
        try:
            result, state = self.pool.harvest(job, timeout=self.deadline())
        except ServeFaultError as exc:
            self._count_failure(exc)
            self._recover(job, exc)
            entry.since_round = self.round  # re-arm the probe clock
            return None
        self._promote(job.shard_id)
        self.observe(result.seconds)
        return result, state

    def _promote(self, shard_id: int) -> None:
        entry = self._quarantined.pop(shard_id, None)
        if entry is None:
            return
        self.promotions += 1
        self._record_alert(
            kind="shard_promoted",
            value=float(shard_id),
            threshold=0.0,
            message=(
                f"shard {shard_id} re-promoted to pooled execution after "
                f"{entry.probes} probe(s) "
                f"({self.round - entry.since_round} rounds quarantined)"
            ),
        )
        self._gauge()

    def _record_alert(self, **kwargs) -> None:
        alert = Alert(round=self.round, **kwargs)
        if self.health is not None:
            self.health.record(alert)
        elif obs.enabled():
            obs.counter("health.alerts_total", kind=alert.kind).inc()
            obs.event("health.alert", **alert.as_dict())

    def _gauge(self) -> None:
        if obs.enabled():
            obs.gauge("serve.quarantined_shards").set(len(self._quarantined))

    # ---------------------------------------------------------------- report
    def report(self) -> dict:
        """Supervision counters for session summaries / the serve CLI."""
        return {
            "deadline": self.deadline(),
            "timeouts": self.timeouts,
            "retries": self.retries,
            "quarantines": self.quarantines,
            "promotions": self.promotions,
            "quarantined_shards": list(self.quarantined),
            "pool_rebuilds": self.pool.rebuilds,
            "history_len": len(self._history),
        }
