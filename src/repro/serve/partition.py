"""Region partitioner: geometric tiling plus greedy boundary refinement.

The serving layer (``docs/serving.md``) scales the PUU disjointness
argument (Algorithm 3 / Eq. 11) from per-slot grants to whole shards: if
every move granted inside shard ``s`` touches only tasks of region ``s``,
then moves granted concurrently by *different* shards automatically have
pairwise-disjoint ``B_i`` and the global potential rises by the sum of
their ``tau_i`` exactly.  The quality of that guarantee is a partitioning
problem — the fewer routes straddle a region border, the fewer best
responses must be deferred to the sequential boundary pass.

Two stages:

1. **Geometric tiling** (:func:`tile_tasks`): recursive balanced median
   splits of the task positions along the wider axis — a k-d tiling that
   yields exactly ``k`` count-balanced cells even when coordinates
   collide (abstract games place every task at the origin; the split
   then degrades gracefully to an index split).
2. **Greedy boundary refinement** (:func:`refine_regions`): reassign one
   task at a time to the region that most reduces the *cut size* — the
   number of extra ``(route, region)`` incidences beyond one per route —
   subject to a balance cap.  This is the move-based local search of
   classic graph partitioners, run on the route->task incidence of the
   compiled :class:`~repro.core.arrays.GameArrays`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.game import RouteNavigationGame
from repro.utils.validation import require

__all__ = [
    "RegionPartition",
    "tile_tasks",
    "refine_regions",
    "partition_game",
    "cut_size",
]


@dataclass(frozen=True)
class RegionPartition:
    """Assignment of every task to one of ``num_shards`` regions.

    Region ``s`` is owned by shard ``s``; a task's owner shard is the
    single writer allowed to grant moves touching it during a parallel
    epoch.  Regions may be empty (``num_shards`` larger than the number
    of occupied tiles is legal; the extra shards simply stay dormant).
    """

    num_shards: int
    task_region: np.ndarray  # (num_tasks,) intp in [0, num_shards)

    def __post_init__(self) -> None:
        require(self.num_shards >= 1, "num_shards must be >= 1")
        region = np.asarray(self.task_region, dtype=np.intp)
        object.__setattr__(self, "task_region", region)
        if region.size:
            require(
                int(region.min()) >= 0 and int(region.max()) < self.num_shards,
                "task_region entries must lie in [0, num_shards)",
            )

    @property
    def num_tasks(self) -> int:
        return int(self.task_region.size)

    def region_tasks(self, shard: int) -> np.ndarray:
        """Global task ids of region ``shard`` (ascending)."""
        return np.flatnonzero(self.task_region == shard)

    def region_sizes(self) -> np.ndarray:
        """Task count per region."""
        return np.bincount(self.task_region, minlength=self.num_shards)

    def owner_shard(self, task_ids: np.ndarray, *, fallback: int = 0) -> int:
        """Deterministic owner shard of a user covering ``task_ids``.

        Majority region over the covered tasks, ties broken by the lowest
        region id; a user covering no task at all lands on ``fallback``
        (the session passes ``user_id % num_shards`` to spread such users).
        """
        ids = np.asarray(task_ids, dtype=np.intp)
        if ids.size == 0:
            return int(fallback) % self.num_shards
        votes = np.bincount(
            self.task_region[np.unique(ids)], minlength=self.num_shards
        )
        return int(np.argmax(votes))


def tile_tasks(xy: np.ndarray, k: int) -> np.ndarray:
    """Balanced k-d tiling of task positions into exactly ``k`` regions.

    Recursively splits the cell with the proportional share of regions at
    the count median along the wider coordinate axis.  Ties (identical
    coordinates) are broken by task index, so the split stays balanced
    even when every task sits at the same point.
    """
    require(k >= 1, "k must be >= 1")
    pts = np.asarray(xy, dtype=float).reshape(-1, 2)
    region = np.zeros(len(pts), dtype=np.intp)
    next_region = [0]

    def split(indices: np.ndarray, parts: int) -> None:
        if parts == 1 or indices.size <= 1:
            region[indices] = next_region[0]
            next_region[0] += 1
            return
        spread = pts[indices].max(axis=0) - pts[indices].min(axis=0)
        axis = int(np.argmax(spread))
        order = indices[np.lexsort((indices, pts[indices, axis]))]
        left_parts = parts // 2
        cut = int(round(indices.size * left_parts / parts))
        cut = min(max(cut, 1), indices.size - 1)
        split(order[:cut], left_parts)
        split(order[cut:], parts - left_parts)

    if len(pts):
        split(np.arange(len(pts), dtype=np.intp), k)
    # Unused region labels (cells that ran out of points) stay legal: the
    # label counter never exceeds k because each split consumes its parts.
    require(next_region[0] <= k, "tiling produced too many regions")
    return region


def _route_region_counts(
    game: RouteNavigationGame, task_region: np.ndarray, k: int
) -> np.ndarray:
    """``cnt[g, r]`` = number of tasks of global route ``g`` in region ``r``."""
    ga = game.arrays
    cnt = np.zeros((ga.num_routes_total, k), dtype=np.intp)
    if ga.task_ids.size:
        route_of_elem = np.repeat(
            np.arange(ga.num_routes_total, dtype=np.intp), ga.route_len
        )
        np.add.at(cnt, (route_of_elem, task_region[ga.task_ids]), 1)
    return cnt


def cut_size(game: RouteNavigationGame, task_region: np.ndarray) -> int:
    """Extra ``(route, region)`` incidences beyond one per non-empty route.

    Zero iff every route lies entirely inside one region — then *no* best
    response ever needs the sequential boundary pass.
    """
    k = int(task_region.max()) + 1 if task_region.size else 1
    cnt = _route_region_counts(game, task_region, k)
    spans = (cnt > 0).sum(axis=1)
    return int(np.maximum(spans - 1, 0).sum())


def refine_regions(
    game: RouteNavigationGame,
    task_region: np.ndarray,
    num_shards: int,
    *,
    passes: int = 2,
    balance_factor: float = 2.0,
) -> np.ndarray:
    """Greedy cut-minimizing refinement of a region assignment.

    One pass visits every covered task and moves it to the region that
    most reduces the cut size (strict improvement only), never growing a
    region beyond ``balance_factor * num_tasks / num_shards`` tasks.
    Stops early when a pass moves nothing.  The returned array is a new
    assignment; the input is not mutated.
    """
    region = np.asarray(task_region, dtype=np.intp).copy()
    n = region.size
    if n == 0 or num_shards == 1:
        return region
    ga = game.arrays
    if ga.task_ids.size == 0:
        return region
    max_size = max(1, int(np.ceil(balance_factor * n / num_shards)))
    cnt = _route_region_counts(game, region, num_shards)
    sizes = np.bincount(region, minlength=num_shards)
    # task -> covering routes CSR (an element per (route, task) incidence).
    route_of_elem = np.repeat(
        np.arange(ga.num_routes_total, dtype=np.intp), ga.route_len
    )
    order = np.argsort(ga.task_ids, kind="stable")
    routes_by_task = route_of_elem[order]
    t_indptr = np.zeros(n + 1, dtype=np.intp)
    np.cumsum(np.bincount(ga.task_ids, minlength=n), out=t_indptr[1:])
    for _ in range(max(passes, 0)):
        moved = 0
        for t in range(n):
            rts = routes_by_task[t_indptr[t] : t_indptr[t + 1]]
            if rts.size == 0:
                continue
            a = int(region[t])
            col = cnt[rts]  # (m, num_shards)
            # Moving t from a to b: routes where region a empties lose an
            # incidence; routes where region b was absent gain one.
            removes = int((col[:, a] == 1).sum())
            delta = (col == 0).sum(axis=0) - removes
            delta[a] = 0
            delta[sizes >= max_size] = np.iinfo(np.intp).max
            delta[a] = 0  # moving nowhere is always admissible
            b = int(np.argmin(delta))
            if delta[b] < 0 and b != a:
                cnt[rts, a] -= 1
                cnt[rts, b] += 1
                sizes[a] -= 1
                sizes[b] += 1
                region[t] = b
                moved += 1
        if moved == 0:
            break
    return region


def partition_game(
    game: RouteNavigationGame,
    num_shards: int,
    *,
    refine_passes: int = 2,
    balance_factor: float = 2.0,
) -> RegionPartition:
    """Tile the game's tasks into ``num_shards`` regions and refine.

    The tiling uses the tasks' planar positions (``game.tasks.xy``);
    abstract coverage-level games collapse to an index split, after which
    the refinement stage does all the work on the coverage structure.
    """
    require(num_shards >= 1, "num_shards must be >= 1")
    tiled = tile_tasks(game.tasks.xy, num_shards)
    if num_shards > 1 and refine_passes > 0:
        tiled = refine_regions(
            game, tiled, num_shards,
            passes=refine_passes, balance_factor=balance_factor,
        )
    return RegionPartition(num_shards=num_shards, task_region=tiled)


def assign_users(
    game: RouteNavigationGame, partition: RegionPartition
) -> np.ndarray:
    """Owner shard of every user: majority region of its covered tasks."""
    indptr, tasks = game.arrays.user_task_csr()
    out = np.empty(game.num_users, dtype=np.intp)
    for i in range(game.num_users):
        out[i] = partition.owner_shard(
            tasks[indptr[i] : indptr[i + 1]],
            fallback=i % partition.num_shards,
        )
    return out
