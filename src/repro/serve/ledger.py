"""Versioned boundary ledger: exact cross-shard potential reconciliation.

Each shard evaluates the potential (Eq. 8) over its *visible* tasks using
its *local* participant counts — the contributions of its own users only.
A task visible to exactly one shard is fully accounted for; a **boundary
task** (visible to two or more shards, because users of different shards
can cover it) is prefix-summed once per shard over a partial count.  The
prefix sum ``F_k(n) = sum_{q<=n} w_k(q)/q`` is not additive in ``n``, so
the sum of shard potentials misses, per boundary task::

    correction_k = F_k(sum_s c_ks) - sum_s F_k(c_ks)

The ledger tracks the per-shard contribution vectors ``c_ks`` with a
version number bumped at every sync, and exposes the correction so that::

    global potential  ==  sum_s shard_potential_s  +  ledger.correction()

holds *exactly* (up to float summation order) at every sync point — the
serving layer asserts this against the monolithic
:func:`~repro.core.potential.potential` in validate mode and in tests.
"""

from __future__ import annotations

import numpy as np

from repro.tasks.task import TaskSet
from repro.utils.validation import require

__all__ = ["BoundaryLedger"]


class BoundaryLedger:
    """Per-shard task-count contributions with a sync version counter."""

    def __init__(self, tasks: TaskSet, num_shards: int) -> None:
        require(num_shards >= 1, "num_shards must be >= 1")
        self.tasks = tasks
        self.num_shards = num_shards
        self.version = 0
        n = len(tasks)
        # contributions[s] is shard s's local counts scattered to global
        # task ids; zero where the task is not visible to the shard.
        self.contributions = np.zeros((num_shards, n), dtype=np.intp)
        # visibility[k] = number of shards whose visible set contains k.
        self.visibility = np.zeros(n, dtype=np.intp)

    def sync(
        self,
        shard_counts: list[tuple[np.ndarray, np.ndarray] | None],
    ) -> None:
        """Record one sync point.

        ``shard_counts[s]`` is ``(task_map, local_counts)`` for shard ``s``
        (``local_counts[k]`` users of shard ``s`` on global task
        ``task_map[k]``), or ``None`` for a dormant shard.
        """
        require(
            len(shard_counts) == self.num_shards,
            "one contribution entry per shard required",
        )
        self.contributions[:] = 0
        self.visibility[:] = 0
        for s, entry in enumerate(shard_counts):
            if entry is None:
                continue
            task_map, local = entry
            self.contributions[s, task_map] = local
            self.visibility[task_map] += 1
        self.version += 1

    # ---------------------------------------------------------------- reads
    def global_counts(self) -> np.ndarray:
        """``n_k = sum_s c_ks`` — the reconciled global participant counts."""
        return self.contributions.sum(axis=0)

    def boundary_tasks(self) -> np.ndarray:
        """Tasks visible to two or more shards (ids, ascending)."""
        return np.flatnonzero(self.visibility >= 2)

    def per_task_corrections(self) -> np.ndarray:
        """``F_k(n_k) - sum_s F_k(c_ks)`` per task.

        Exactly zero for every task visible to at most one shard (its
        global count *is* its single contribution); tests assert this.
        """
        out = self.tasks.potential_terms(self.global_counts())
        for s in range(self.num_shards):
            out = out - self.tasks.potential_terms(self.contributions[s])
        return out

    def correction(self) -> float:
        """The total additive correction to the sum of shard potentials."""
        return float(self.per_task_corrections().sum())
