"""Online churn: seeded arrival/departure schedules and user factories.

The serving workload of the related literature is *online* — users arrive
and depart mid-game, and recommendations must adapt per request.  A
:class:`ChurnSchedule` draws a reproducible stream of join/leave counts
per round; a user factory turns "a user joined" into a concrete
:class:`~repro.serve.shard.UserRecord`:

- :class:`SyntheticUserFactory` — coverage-level users with a *home
  region* (spatial locality): most covered tasks come from one region,
  an adjustable fraction crosses borders.  Drives tests and the capacity
  benchmark, where locality is what sharding monetizes.
- :class:`ScenarioUserFactory` — road-network users: a sampled OD pair is
  routed through the scenario's :class:`~repro.network.routing.RoutePlanner`
  (Yen's k-shortest paths or penalty alternatives over ``network.graph``)
  and covered tasks are attached by the coverage-radius rule, exactly
  like the offline scenario builder.  Raises the builder's
  :class:`~repro.scenario.builder.NoCandidateRoutesError` when an OD pair
  admits no route, instead of surfacing an opaque index error downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.weights import PlatformWeights, UserWeights
from repro.network.routing import Route
from repro.serve.partition import RegionPartition, tile_tasks
from repro.serve.shard import UserRecord
from repro.tasks.task import Task, TaskSet
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require

__all__ = [
    "ChurnSchedule",
    "ScenarioUserFactory",
    "SyntheticUserFactory",
    "synthetic_serve_instance",
]


@dataclass
class ChurnSchedule:
    """Reproducible Poisson joins/leaves per serving round.

    ``rate`` is the expected number of churn events per round; each event
    is a leave with probability ``leave_fraction`` (leaves are skipped
    while the session would drop below ``min_users``).
    """

    rate: float
    leave_fraction: float = 0.5
    min_users: int = 1
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        require(self.rate >= 0, "churn rate must be >= 0")
        require(
            0.0 <= self.leave_fraction <= 1.0,
            "leave_fraction must be in [0, 1]",
        )
        self._rng = as_generator(self.seed)

    def next_round(
        self, active_ids: list[int]
    ) -> tuple[int, list[int]]:
        """Draw ``(n_joins, leave_ids)`` for the next round."""
        events = int(self._rng.poisson(self.rate))
        joins = 0
        leaves: list[int] = []
        pool = list(active_ids)
        for _ in range(events):
            if (
                pool
                and len(pool) > self.min_users
                and self._rng.random() < self.leave_fraction
            ):
                victim = pool.pop(int(self._rng.integers(0, len(pool))))
                leaves.append(int(victim))
            else:
                joins += 1
        return joins, leaves


class SyntheticUserFactory:
    """Coverage-level users with spatial locality over a task partition.

    Each user gets a home region; every route samples ``route_len``
    distinct tasks, each drawn from the home region with probability
    ``locality`` and from the whole task set otherwise — so a fraction of
    users genuinely straddles region borders, exercising the boundary
    pass.
    """

    def __init__(
        self,
        tasks: TaskSet,
        partition: RegionPartition,
        *,
        routes_per_user: tuple[int, int] = (2, 4),
        route_len: tuple[int, int] = (2, 6),
        locality: float = 0.9,
        seed: SeedLike = 0,
    ) -> None:
        require(0.0 <= locality <= 1.0, "locality must be in [0, 1]")
        require(
            1 <= routes_per_user[0] <= routes_per_user[1],
            "routes_per_user must be a nonempty ascending range",
        )
        self.tasks = tasks
        self.partition = partition
        self.routes_per_user = routes_per_user
        self.route_len = route_len
        self.locality = locality
        self.rng = as_generator(seed)
        self._region_tasks = [
            partition.region_tasks(s) for s in range(partition.num_shards)
        ]
        self._occupied = [
            s for s, t in enumerate(self._region_tasks) if t.size
        ]
        require(
            len(self._occupied) >= 1,
            "cannot synthesize users over a partition with no tasks",
        )

    def __call__(self, user_id: int) -> UserRecord:
        rng = self.rng
        home = self._region_tasks[
            self._occupied[int(rng.integers(0, len(self._occupied)))]
        ]
        n_routes = int(
            rng.integers(self.routes_per_user[0], self.routes_per_user[1] + 1)
        )
        n_tasks_total = len(self.tasks)
        routes = []
        for _ in range(n_routes):
            length = int(
                rng.integers(self.route_len[0], self.route_len[1] + 1)
            )
            picked: set[int] = set()
            for _ in range(length):
                if rng.random() < self.locality:
                    t = int(home[int(rng.integers(0, home.size))])
                else:
                    t = int(rng.integers(0, n_tasks_total))
                picked.add(t)
            h = float(rng.uniform(0.0, 3.0))
            c = float(rng.uniform(0.0, 1.0))
            routes.append(
                Route(
                    nodes=(0,),
                    length_km=h,
                    detour_km=h,
                    congestion=c,
                    task_ids=tuple(sorted(picked)),
                )
            )
        return UserRecord(
            user_id=user_id,
            routes=tuple(routes),
            weights=UserWeights.random(rng),
        )


def synthetic_serve_instance(
    n_users: int,
    n_tasks: int,
    num_shards: int,
    *,
    locality: float = 0.9,
    seed: SeedLike = 0,
) -> tuple[TaskSet, PlatformWeights, list[UserRecord], RegionPartition, "SyntheticUserFactory"]:
    """A dense, spatially-local serving workload (CLI / fig19 / bench).

    Tasks are scattered uniformly in a unit square and tiled into
    ``num_shards`` regions from positions alone; users come from a
    :class:`SyntheticUserFactory` over that partition, so most of each
    user's coverage stays inside one region — the workload shape sharding
    is built for.  Returns ``(tasks, platform, records, partition,
    factory)``; the factory keeps minting users for churn.
    """
    rng = as_generator(seed)
    tasks = TaskSet(
        [
            Task(
                task_id=k,
                x=float(rng.uniform(0.0, 10.0)),
                y=float(rng.uniform(0.0, 10.0)),
                base_reward=float(rng.uniform(10.0, 20.0)),
                reward_increment=float(rng.uniform(0.0, 1.0)),
            )
            for k in range(n_tasks)
        ]
    )
    partition = RegionPartition(
        num_shards=num_shards, task_region=tile_tasks(tasks.xy, num_shards)
    )
    platform = PlatformWeights.random(rng)
    factory = SyntheticUserFactory(
        tasks, partition, locality=locality,
        seed=rng.integers(0, 2**63 - 1),
    )
    records = [factory(i) for i in range(n_users)]
    return tasks, platform, records, partition, factory


class ScenarioUserFactory:
    """Road-network users: OD sampling -> planner -> coverage assignment."""

    def __init__(self, scenario, *, seed: SeedLike = 0) -> None:
        self.scenario = scenario
        self.rng = as_generator(seed)
        self.config = scenario.config

    def __call__(self, user_id: int) -> UserRecord:
        from repro.scenario.builder import NoCandidateRoutesError
        from repro.tasks.assignment import assign_tasks_to_routes

        sc = self.scenario
        rng = self.rng
        lo, hi = self.config.route_count_range
        n_nodes = sc.network.num_nodes
        for _ in range(20):
            o = int(rng.integers(0, n_nodes))
            d = int(rng.integers(0, n_nodes))
            if o == d:
                continue
            k = int(rng.integers(lo, hi + 1))
            routes = sc.planner.recommend(o, d, k)
            if routes:
                covered = assign_tasks_to_routes(
                    sc.network, [routes], sc.tasks,
                    coverage_radius_km=self.config.coverage_radius_km,
                )[0]
                return UserRecord(
                    user_id=user_id,
                    routes=tuple(covered),
                    weights=UserWeights.random(rng),
                )
        raise NoCandidateRoutesError(
            f"could not generate candidate routes for joining user "
            f"{user_id}: 20 sampled OD pairs were unreachable or trivial — "
            "check the network's connectivity or widen route_count_range"
        )
