"""Runtime health monitoring for serving sessions (docs/serving.md).

A :class:`HealthMonitor` rides inside a
:class:`~repro.serve.session.ServeSession` and turns the session's
per-round state into the *trigger signals* the drift-hardening roadmap
item needs before any migration policy can act:

- **load imbalance** — max/mean user share across live shards; a drifting
  partition shows up here long before throughput collapses;
- **boundary-pass fraction** — the share of all granted moves that leaked
  to the sequential boundary pass; when this dominates, tiling locality
  is broken and re-tiling from live coverage is due;
- **churn backlog** — join/leave events absorbed since the last converged
  round; a growing backlog means churn outruns re-convergence;
- **epoch stragglers** — slowest/median epoch wall time per round across
  shards (only meaningful for K >= 2);
- **potential monotonicity** — between churn events the global potential
  (cheap sharded form: shard sum + ledger correction) must never drop;
  a drop is a correctness alarm, not a tuning signal;
- **Nash residual** — the max candidate profit gain across all users
  (:meth:`~repro.serve.shard.ShardEngine.nash_residual`), i.e. the
  distance to equilibrium.  The raw per-round series is not monotone
  (other users' moves can open new gains), so the monitor also keeps the
  running-minimum **envelope**, which is non-increasing by construction
  and ends at 0 exactly when the session verifies Nash.

Alerts are structured: appended to :attr:`HealthMonitor.alerts`, counted
in ``health.alerts_total{kind=...}``, and emitted as ``health.alert``
events.  :meth:`HealthMonitor.report` renders the machine-readable
``repro.health_report/v1`` document; :func:`validate_health_report`
checks it.  With telemetry enabled, every observation also lands in the
``health.*`` / ``serve.nash_residual`` time series
(:mod:`repro.obs.timeseries`), keyed by round index.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import TYPE_CHECKING, Any

import repro.obs as obs
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.serve.session import RoundReport, ServeSession
    from repro.serve.shard import EpochResult

__all__ = [
    "HEALTH_SCHEMA",
    "Alert",
    "HealthMonitor",
    "HealthThresholds",
    "validate_health_report",
]

HEALTH_SCHEMA = "repro.health_report/v1"


@dataclass(frozen=True)
class HealthThresholds:
    """Alert trigger levels; ``None`` disables the corresponding check."""

    #: max/mean user share across live shards.
    load_imbalance: float | None = 2.0
    #: boundary moves / all granted moves, cumulative (needs K >= 2).
    boundary_fraction: float | None = 0.5
    #: churn events absorbed since the last converged round.
    churn_backlog: int | None = 50
    #: slowest / median epoch seconds within one round (needs K >= 2).
    straggler_ratio: float | None = 4.0
    #: tolerated potential drop between churn-free rounds (float noise).
    potential_drop_tol: float = 1e-9

    def __post_init__(self) -> None:
        for name in ("load_imbalance", "boundary_fraction", "straggler_ratio"):
            value = getattr(self, name)
            require(
                value is None or value > 0, f"{name} threshold must be > 0"
            )
        require(self.potential_drop_tol >= 0, "potential_drop_tol must be >= 0")


@dataclass(frozen=True)
class Alert:
    """One threshold crossing (or monotonicity violation)."""

    kind: str
    round: int
    value: float
    threshold: float
    message: str

    def as_dict(self) -> dict[str, Any]:
        return dict(vars(self))


class HealthMonitor:
    """Consumes a session's round telemetry; emits alerts and reports.

    Attach via ``ServeSession(..., health=HealthMonitor())`` — the session
    calls :meth:`on_round` after every round's final sync, where counts
    (and hence residuals and potentials) are exact.  ``residual_every``
    thins the Nash-residual sweep (one batched best-response pass over
    all users) to every N-th round; converged rounds are always sampled
    so the series provably ends at the verified equilibrium.
    """

    def __init__(
        self,
        thresholds: HealthThresholds | None = None,
        *,
        residual_every: int = 1,
    ) -> None:
        require(residual_every >= 1, "residual_every must be >= 1")
        self.thresholds = thresholds or HealthThresholds()
        self.residual_every = residual_every
        self.alerts: list[Alert] = []
        self.rounds_seen = 0
        self._residual: list[tuple[int, float]] = []
        self._residual_envelope: list[tuple[int, float]] = []
        self._potential: list[tuple[int, float]] = []
        self._potential_prev: float | None = None
        self._potential_violations = 0
        self._churn_prev = 0
        self._events_since_converged = 0
        self._last_imbalance: float | None = None
        self._last_boundary_fraction: float | None = None
        self._last_straggler_ratio: float | None = None
        self._last_per_shard: dict[int, dict[str, float]] = {}

    # -------------------------------------------------------------- ingest
    def on_round(
        self,
        session: "ServeSession",
        results: list["EpochResult"],
        report: "RoundReport",
    ) -> None:
        """Observe one completed round (counts exact: post-final-sync)."""
        self.rounds_seen += 1
        t = report.round
        telemetry = obs.enabled()

        # --- per-shard shares + stragglers -----------------------------
        per_shard: dict[int, dict[str, float]] = {}
        shares: list[int] = []
        for shard_id, engine in enumerate(session.engines):
            if engine is None:
                continue
            users = int(engine.spec.users.size)
            shares.append(users)
            per_shard[shard_id] = {"users": users}
        for res in results:
            row = per_shard.setdefault(res.shard_id, {})
            row["epoch_seconds"] = res.seconds
            row["epoch_moves"] = float(len(res.moves))
            if telemetry:
                obs.sample(
                    "health.epoch_seconds", t, res.seconds, shard=res.shard_id
                )
        self._last_per_shard = per_shard

        imbalance = (
            max(shares) / (sum(shares) / len(shares)) if shares else 0.0
        )
        self._last_imbalance = imbalance
        self._check(
            "load_imbalance", t, imbalance, self.thresholds.load_imbalance,
            f"max/mean shard load {imbalance:.2f}",
        )

        epoch_secs = [res.seconds for res in results]
        if len(epoch_secs) >= 2:
            mid = median(epoch_secs)
            ratio = max(epoch_secs) / mid if mid > 0 else 1.0
            self._last_straggler_ratio = ratio
            self._check(
                "epoch_straggler", t, ratio, self.thresholds.straggler_ratio,
                f"slowest epoch {max(epoch_secs):.4f}s vs median {mid:.4f}s",
            )
        else:
            self._last_straggler_ratio = None

        # --- boundary-pass dominance (cumulative) ----------------------
        stats = session.stats
        total_moves = stats.epoch_moves + stats.boundary_moves
        fraction = stats.boundary_moves / total_moves if total_moves else 0.0
        self._last_boundary_fraction = fraction
        if session.num_shards > 1:
            self._check(
                "boundary_dominance", t, fraction,
                self.thresholds.boundary_fraction,
                f"{stats.boundary_moves}/{total_moves} moves crossed regions",
            )

        # --- churn backlog ---------------------------------------------
        churn_now = stats.joins + stats.leaves
        self._events_since_converged += churn_now - self._churn_prev
        churned = churn_now != self._churn_prev
        self._churn_prev = churn_now
        if report.converged:
            self._events_since_converged = 0
        backlog = self._events_since_converged
        if self.thresholds.churn_backlog is not None:
            self._check(
                "churn_backlog", t, float(backlog),
                float(self.thresholds.churn_backlog),
                f"{backlog} churn events since last converged round",
            )

        # --- potential monotonicity watch ------------------------------
        pot = session.sharded_potential()
        self._potential.append((t, pot))
        if (
            self._potential_prev is not None
            and not churned
            and pot < self._potential_prev - self.thresholds.potential_drop_tol
        ):
            self._potential_violations += 1
            self._alert(
                "potential_drop", t, pot - self._potential_prev, 0.0,
                f"potential fell {self._potential_prev!r} -> {pot!r} "
                "without churn",
            )
        self._potential_prev = pot

        # --- Nash residual ---------------------------------------------
        if report.converged or self.rounds_seen % self.residual_every == 0:
            residual = session.nash_residual()
            self._residual.append((t, residual))
            prev_env = (
                self._residual_envelope[-1][1]
                if self._residual_envelope
                else float("inf")
            )
            self._residual_envelope.append((t, min(residual, prev_env)))
            if telemetry:
                obs.sample("serve.nash_residual", t, residual)

        if telemetry:
            obs.sample("health.load_imbalance", t, imbalance)
            obs.sample("health.boundary_fraction", t, fraction)
            obs.sample("health.churn_backlog", t, float(backlog))
            obs.sample("serve.potential", t, pot)

    # -------------------------------------------------------------- alerts
    def _check(
        self,
        kind: str,
        t: int,
        value: float,
        threshold: float | None,
        detail: str,
    ) -> None:
        if threshold is not None and value > threshold:
            self._alert(kind, t, value, threshold, detail)

    def _alert(
        self, kind: str, t: int, value: float, threshold: float, detail: str
    ) -> None:
        alert = Alert(
            kind=kind, round=t, value=float(value),
            threshold=float(threshold),
            message=f"{kind} at round {t}: {detail}",
        )
        self.alerts.append(alert)
        if obs.enabled():
            obs.counter("health.alerts_total", kind=kind).inc()
            obs.event(
                "health.alert", kind=kind, round=t,
                value=round(float(value), 6),
                threshold=float(threshold), detail=detail,
            )

    def record(self, alert: Alert) -> None:
        """Record an externally raised alert (e.g. the
        :class:`~repro.serve.supervisor.ShardSupervisor`'s quarantine /
        promotion events) with the same bookkeeping as internal checks."""
        self.alerts.append(alert)
        if obs.enabled():
            obs.counter("health.alerts_total", kind=alert.kind).inc()
            obs.event("health.alert", **alert.as_dict())

    @property
    def healthy(self) -> bool:
        return not self.alerts

    # -------------------------------------------------------------- report
    def nash_residual_series(self) -> list[tuple[int, float]]:
        """Raw sampled ``(round, residual)`` points."""
        return list(self._residual)

    def nash_residual_envelope(self) -> list[tuple[int, float]]:
        """Running-minimum residual — non-increasing by construction."""
        return list(self._residual_envelope)

    def report(self, session: "ServeSession | None" = None) -> dict[str, Any]:
        """The machine-readable ``repro.health_report/v1`` document."""
        final_residual = self._residual[-1][1] if self._residual else None
        return {
            "schema": HEALTH_SCHEMA,
            "rounds_observed": self.rounds_seen,
            "shards": session.num_shards if session is not None else None,
            "active_users": session.num_users if session is not None else None,
            "per_shard": {
                str(shard): row
                for shard, row in sorted(self._last_per_shard.items())
            },
            "load_imbalance": self._last_imbalance,
            "boundary_fraction": self._last_boundary_fraction,
            "straggler_ratio": self._last_straggler_ratio,
            "churn_backlog": self._events_since_converged,
            "potential": {
                "series": [[t, v] for t, v in self._potential],
                "last": self._potential_prev,
                "monotonic": self._potential_violations == 0,
                "violations": self._potential_violations,
            },
            "nash_residual": {
                "series": [[t, v] for t, v in self._residual],
                "envelope": [[t, v] for t, v in self._residual_envelope],
                "final": final_residual,
                "at_equilibrium": final_residual == 0.0,
            },
            "alerts": [a.as_dict() for a in self.alerts],
            "healthy": self.healthy,
        }


_REPORT_FIELDS: dict[str, type | tuple[type, ...]] = {
    "rounds_observed": int,
    "per_shard": dict,
    "potential": dict,
    "nash_residual": dict,
    "alerts": list,
    "healthy": bool,
}


def validate_health_report(report: dict[str, Any]) -> dict[str, Any]:
    """Check a health report against ``repro.health_report/v1``.

    Raises ``ValueError`` on schema mismatch, missing keys, or
    wrong-typed fields; returns the report unchanged for chaining.
    """
    if not isinstance(report, dict):
        raise ValueError(f"health report must be a dict, got {type(report)}")
    schema = report.get("schema")
    if schema != HEALTH_SCHEMA:
        raise ValueError(f"expected schema {HEALTH_SCHEMA!r}, got {schema!r}")
    missing = [
        key
        for key in (
            "load_imbalance", "boundary_fraction", "churn_backlog",
            *_REPORT_FIELDS,
        )
        if key not in report
    ]
    if missing:
        raise ValueError(f"health report is missing fields: {missing}")
    for key, types in _REPORT_FIELDS.items():
        if not isinstance(report[key], types):
            raise ValueError(
                f"health report field {key!r} must be {types}, "
                f"got {type(report[key])}"
            )
    residual = report["nash_residual"]
    for key in ("series", "envelope", "final", "at_equilibrium"):
        if key not in residual:
            raise ValueError(f"nash_residual section is missing {key!r}")
    env = [v for _, v in residual["envelope"]]
    if any(b > a for a, b in zip(env, env[1:])):
        raise ValueError("nash_residual envelope must be non-increasing")
    for alert in report["alerts"]:
        if not {"kind", "round", "value", "threshold", "message"} <= set(alert):
            raise ValueError(f"malformed alert entry: {alert!r}")
    return report
