"""Versioned shard-spec transport over shared memory.

A :class:`~repro.serve.shard.ShardSpec` splits naturally into an
**immutable part** — the compiled :class:`~repro.core.arrays.GameArrays`
buffers plus the cheap metadata (records' routes, weights, task map) —
and a **mutable delta** (choices / ext / RNG / proposal cache) that the
engine snapshot protocol already ships.  The immutable part only changes
when churn rebuilds the shard and bumps ``spec.version``.

This module publishes the immutable part **once per** ``(shard_id,
version)`` into one shared-memory segment:

```
[16-byte header][pickled skeleton][64-aligned GameArrays block]
```

The skeleton is the metadata pickle plus the
:class:`~repro.core.shm.BufferTable` manifest; the array block is packed
by the manifest.  What crosses the pipe per epoch is a
:class:`SpecTicket` — ~100 bytes naming the segment and the cache key —
and workers :func:`load_spec` it back with **zero copies** of the array
buffers (``np.frombuffer`` views over the mapping, stitched into a live
``ShardSpec`` via :meth:`RouteNavigationGame.from_parts`).

Lifecycle: the dispatcher-side :class:`SpecStore` owns every live
segment.  Publishing a new version unlinks the old segment immediately —
POSIX keeps existing worker mappings valid until they evict — and
:meth:`SpecStore.shutdown` (idempotent, also registered via ``atexit``
and a GC finalizer on each block) unlinks everything else, so crashed or
abandoned sessions never orphan segments.
"""

from __future__ import annotations

import atexit
import pickle
from dataclasses import dataclass

import repro.obs as obs
from repro.core.arrays import GameArrays
from repro.core.game import RouteNavigationGame
from repro.core.shm import BufferTable, SharedBlock, _align
from repro.faults.serveplan import (
    SpecAttachError,
    SpecIntegrityError,
    SpecPublishError,
)
from repro.serve.shard import ShardSpec
from repro.utils.validation import require

__all__ = ["SpecTicket", "SpecStore", "publish_spec", "load_spec"]

_MAGIC = b"RPRSPEC1"
_HEADER = 16  # magic + 8-byte little-endian skeleton length


@dataclass(frozen=True)
class SpecTicket:
    """Pipe-sized reference to a published spec.

    ``(shard_id, version)`` is the worker cache key; ``segment`` is the
    shared-memory name to attach on a miss.  ``nbytes`` is the segment
    size (accounting only).
    """

    shard_id: int
    version: int
    segment: str
    nbytes: int


def _skeleton_bytes(spec: ShardSpec, table: BufferTable) -> bytes:
    game = spec.game
    skeleton = {
        "shard_id": spec.shard_id,
        "users": spec.users,
        "task_map": spec.task_map,
        "own_mask": spec.own_mask,
        "version": spec.version,
        "tasks": game.tasks,
        "route_sets": game.route_sets,
        "user_weights": game.user_weights,
        "platform": game.platform,
        "detour_unit_km": game.detour_unit_km,
        "table": table,
    }
    return pickle.dumps(skeleton, protocol=pickle.HIGHEST_PROTOCOL)


def publish_spec(spec: ShardSpec) -> tuple[SpecTicket, SharedBlock]:
    """Write one spec into a fresh owned segment; returns (ticket, block)."""
    arrays = spec.game.arrays
    table = arrays.buffer_table()
    payload = _skeleton_bytes(spec, table)
    base = _align(_HEADER + len(payload))
    block = SharedBlock.create(base + table.total_bytes)
    buf = block.buf
    buf[:8] = _MAGIC
    buf[8:_HEADER] = len(payload).to_bytes(8, "little")
    buf[_HEADER : _HEADER + len(payload)] = payload
    table.pack_into(
        buf,
        {f: getattr(arrays, f) for f in GameArrays.BUFFER_FIELDS},
        base=base,
    )
    ticket = SpecTicket(
        shard_id=spec.shard_id,
        version=spec.version,
        segment=block.name,
        nbytes=block.size,
    )
    return ticket, block


def load_spec(ticket: SpecTicket) -> tuple[ShardSpec, SharedBlock]:
    """Attach a published segment and rebuild a live spec over it.

    The skeleton unpickle copies a few KB of metadata; every
    ``GameArrays`` buffer stays a zero-copy read-only view into the
    mapping.  The returned block must outlive the spec (the worker cache
    holds both together).

    Raises :class:`SpecAttachError` when the segment cannot be mapped
    and :class:`SpecIntegrityError` when validation of the mapped bytes
    fails — in the latter case the mapping is closed before raising, so
    a mangled segment never leaks a worker-side attachment."""
    try:
        block = SharedBlock.attach(ticket.segment)
    except (FileNotFoundError, OSError, ValueError) as exc:
        raise SpecAttachError(ticket.segment) from exc
    try:
        buf = block.buf
        if bytes(buf[:8]) != _MAGIC:
            raise SpecIntegrityError(ticket.segment, "bad magic bytes")
        ln = int.from_bytes(bytes(buf[8:_HEADER]), "little")
        if _HEADER + ln > block.size:
            raise SpecIntegrityError(ticket.segment, "skeleton overruns segment")
        try:
            skeleton = pickle.loads(bytes(buf[_HEADER : _HEADER + ln]))
        except Exception as exc:
            raise SpecIntegrityError(
                ticket.segment, f"skeleton unpickle failed: {exc}"
            ) from exc
        table: BufferTable = skeleton["table"]
        arrays = GameArrays.from_table(
            table, buf, base=_align(_HEADER + ln), shm=block
        )
        game = RouteNavigationGame.from_parts(
            tasks=skeleton["tasks"],
            route_sets=skeleton["route_sets"],
            user_weights=skeleton["user_weights"],
            platform=skeleton["platform"],
            detour_unit_km=skeleton["detour_unit_km"],
            arrays=arrays,
        )
        spec = ShardSpec(
            shard_id=skeleton["shard_id"],
            users=skeleton["users"],
            game=game,
            task_map=skeleton["task_map"],
            own_mask=skeleton["own_mask"],
            version=skeleton["version"],
        )
    except BaseException:
        # Drop any views of the mapping before closing so the close is
        # immediate rather than deferred to the GC finalizer.
        buf = arrays = game = None  # noqa: F841
        block.close()
        raise
    return spec, block


class SpecStore:
    """Dispatcher-side registry: one live segment per shard, keyed on version.

    ``faults`` is an optional compiled
    :class:`~repro.faults.serveplan.ServeFaultInjector`; when set,
    :meth:`ticket_for` consults it before each publish and raises
    :class:`SpecPublishError` for scheduled publish failures (the caller
    falls back to the pickle transport for that job and re-publishes on
    the next epoch)."""

    def __init__(self, faults=None) -> None:
        self._live: dict[int, tuple[int, SpecTicket, SharedBlock]] = {}
        self._closed = False
        self.faults = faults
        #: cumulative bytes written into segments (the once-per-version
        #: spec traffic — the "shipped" side of the payload ledger).
        self.bytes_published = 0
        self.publishes = 0
        atexit.register(self.shutdown)

    def ticket_for(self, spec: ShardSpec) -> SpecTicket:
        """Return the live ticket for ``spec``, publishing if its
        ``(shard_id, version)`` is not resident yet."""
        require(not self._closed, "SpecStore is shut down")
        cur = self._live.get(spec.shard_id)
        if cur is not None and cur[0] == spec.version:
            return cur[1]
        if self.faults is not None and self.faults.publish_fails(
            spec.shard_id, spec.version
        ):
            raise SpecPublishError(spec.shard_id, spec.version)
        if cur is not None:
            cur[2].close()  # unlink the stale version; live worker
            # mappings survive until their caches evict.
        ticket, block = publish_spec(spec)
        self._live[spec.shard_id] = (spec.version, ticket, block)
        self.bytes_published += block.size
        self.publishes += 1
        if obs.enabled():
            obs.counter("serve.spec_bytes_shipped").inc(block.size)
            obs.counter("serve.spec_publishes_total").inc()
        return ticket

    def corrupt(self, shard_id: int) -> None:
        """Flip the live segment's magic bytes (fault injection only).

        A cache-missing worker that attaches the segment afterwards sees
        :class:`SpecIntegrityError`; workers with the spec already cached
        are unaffected (they never re-read the header)."""
        cur = self._live.get(shard_id)
        require(cur is not None, f"no live segment for shard {shard_id}")
        buf = cur[2].buf
        buf[:8] = bytes(b ^ 0xFF for b in bytes(buf[:8]))

    def retire(self, shard_id: int) -> None:
        """Unlink a shard's segment (e.g. the shard went dormant)."""
        cur = self._live.pop(shard_id, None)
        if cur is not None:
            cur[2].close()

    def shutdown(self) -> None:
        """Unlink every live segment (idempotent; atexit-registered)."""
        if self._closed:
            return
        self._closed = True
        for _, _, block in self._live.values():
            block.close()
        self._live.clear()
        atexit.unregister(self.shutdown)
