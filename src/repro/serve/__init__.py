"""Sharded online serving layer (see ``docs/serving.md``).

Region-partitioned game shards running the array-native engine
concurrently, reconciled through a versioned boundary ledger, with
churn-driven sessions (join/leave mid-game) and a crash/resume snapshot
protocol.  ``K=1`` sessions are bit-identical to the monolithic
DGRN/MUUN allocators.
"""

from repro.serve.churn import (
    ChurnSchedule,
    ScenarioUserFactory,
    SyntheticUserFactory,
)
from repro.serve.health import (
    HEALTH_SCHEMA,
    Alert,
    HealthMonitor,
    HealthThresholds,
    validate_health_report,
)
from repro.serve.ledger import BoundaryLedger
from repro.serve.partition import (
    RegionPartition,
    cut_size,
    partition_game,
    refine_regions,
    tile_tasks,
)
from repro.serve.session import RoundReport, ServeSession
from repro.serve.shard import (
    EpochResult,
    ShardEngine,
    ShardSpec,
    UserRecord,
    build_shard_spec,
)
from repro.serve.specstore import (
    SpecStore,
    SpecTicket,
    load_spec,
    publish_spec,
)
from repro.serve.supervisor import ShardSupervisor, SupervisorConfig
from repro.serve.workers import PendingEpoch, ShardPool

__all__ = [
    "HEALTH_SCHEMA",
    "Alert",
    "BoundaryLedger",
    "ChurnSchedule",
    "EpochResult",
    "HealthMonitor",
    "HealthThresholds",
    "PendingEpoch",
    "RegionPartition",
    "RoundReport",
    "ScenarioUserFactory",
    "ServeSession",
    "ShardEngine",
    "ShardPool",
    "ShardSpec",
    "ShardSupervisor",
    "SpecStore",
    "SpecTicket",
    "SupervisorConfig",
    "SyntheticUserFactory",
    "UserRecord",
    "build_shard_spec",
    "cut_size",
    "load_spec",
    "partition_game",
    "publish_spec",
    "refine_regions",
    "tile_tasks",
    "validate_health_report",
]
