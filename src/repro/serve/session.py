"""The serving session: dispatcher, sync protocol, churn admission.

A :class:`ServeSession` owns K region shards and drives them in *rounds*:

1. **Parallel epochs** — every shard runs its allocator loop over its
   sub-game, granting only region-eligible moves (``B_i`` inside its own
   region).  Region counts change only through their owner shard, so all
   gains are exact and cross-shard grant sets have pairwise-disjoint
   ``B_i``: each epoch is a valid PUU super-slot of the global game
   (Eq. 11) and the global potential strictly increases.
2. **Sync** — the dispatcher recomputes global counts as the sum of shard
   contributions, refreshes every shard's ``ext`` offsets (invalidating
   exactly the users whose visible counts moved), records the state in
   the :class:`~repro.serve.ledger.BoundaryLedger`, and (in validate
   mode) asserts cross-shard count consistency plus the ledger identity
   ``sum of shard potentials + correction == monolithic potential``.
3. **Boundary reconciliation** — users whose best response crossed a
   region border are re-evaluated *sequentially* with exact counts, their
   moves applied one at a time with immediate count propagation — plain
   better-response steps of the global game, so the potential argument is
   untouched.
4. **Churn admission** — joins/leaves are folded in at round boundaries
   (micro-batching): the affected shard's sub-game is rebuilt, retained
   users keep their strategies, and a joiner is admitted on its exact
   best response.

A round that grants nothing in either phase proves global quiescence:
every improving user would have appeared in some shard's proposal batch
(caches are exact — they saw every count change), eligible rows would
have been granted, and deferred rows were re-checked exactly in the
boundary pass.  Hence "no grants anywhere" ⇔ Nash equilibrium.

For ``K=1`` the single shard sees everything, no move is ever deferred,
and the session is bit-for-bit the monolithic DGRN/MUUN trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

import repro.obs as obs
from repro.core.game import RouteNavigationGame
from repro.core.profile import StrategyProfile
from repro.core.potential import potential
from repro.core.profit import all_profits
from repro.core.weights import PlatformWeights
from repro.faults.invariants import InvariantViolation
from repro.faults.serveplan import (
    EpochAbandoned,
    ServeFaultError,
    ServeFaultPlan,
)
from repro.serve.health import HealthMonitor
from repro.serve.ledger import BoundaryLedger
from repro.serve.partition import RegionPartition, partition_game, refine_regions
from repro.serve.shard import (
    EpochResult,
    ShardEngine,
    UserRecord,
    build_shard_spec,
)
from repro.tasks.task import TaskSet
from repro.utils.rng import RngStream, as_generator
from repro.utils.validation import require

if TYPE_CHECKING:
    from repro.serve.supervisor import SupervisorConfig

__all__ = ["ServeSession", "RoundReport"]

_EMPTY_INTP = np.zeros(0, dtype=np.intp)

#: Relative tolerance for the ledger reconciliation identity.  The two
#: sides sum the same float terms in different association orders; any
#: real bookkeeping bug lands orders of magnitude above this.
LEDGER_RTOL = 1e-9


@dataclass
class RoundReport:
    """Outcome of one serving round."""

    round: int
    epoch_moves: int
    boundary_moves: int
    slots: int
    converged: bool
    crashed_shards: tuple[int, ...] = ()
    joins: int = 0
    leaves: int = 0
    #: epochs dispatched ahead for the *next* round (pipeline mode).
    prefetched: int = 0


@dataclass
class ServeStats:
    """Cumulative session counters (CLI/report surface)."""

    rounds: int = 0
    epoch_moves: int = 0
    boundary_moves: int = 0
    joins: int = 0
    leaves: int = 0
    shard_rebuilds: int = 0
    shard_crashes: int = 0
    sync_points: int = 0
    prefetched_epochs: int = 0
    retiles: int = 0

    def as_dict(self) -> dict[str, int]:
        return dict(vars(self))


class ServeSession:
    """K region shards of one crowdsensing game, served online."""

    def __init__(
        self,
        *,
        tasks: TaskSet,
        platform: PlatformWeights,
        records: list[UserRecord],
        num_shards: int = 1,
        partition: RegionPartition | None = None,
        scheduler: str = "suu",
        seed: int = 0,
        detour_unit_km: float = 1.0,
        record_history: bool = False,
        validate: bool = False,
        epoch_slots: int | None = None,
        processes: int | None = None,
        sort_key: str = "delta",
        refine_passes: int = 2,
        compact_shards: bool = False,
        health: "HealthMonitor | None" = None,
        pipeline: bool = False,
        auto_retile: bool = False,
        retile_cooldown: int = 10,
        backend: str | None = None,
        supervise: bool = True,
        supervisor_config: "SupervisorConfig | None" = None,
        fault_plan: ServeFaultPlan | None = None,
        use_shm: bool = True,
    ) -> None:
        require(len(records) >= 1, "a session needs at least one user")
        ids = [r.user_id for r in records]
        require(len(set(ids)) == len(ids), "duplicate user ids in records")
        self.tasks = tasks
        self.platform = platform
        self.detour_unit_km = detour_unit_km
        self.scheduler = scheduler
        self.sort_key = sort_key
        self.validate = validate
        #: Kernel-backend name pinned onto every engine's arrays and
        #: propagated to pool workers (``None`` = ambient default).
        self.backend = backend
        if backend is not None:
            # Warm in the dispatcher too: K=1 and in-process shards run
            # their epochs here, not in a worker.
            from repro.core.backend import get_backend

            get_backend(backend).warmup()
        self.epoch_slots = epoch_slots
        self.compact_shards = compact_shards
        self.records: dict[int, UserRecord] = {
            r.user_id: r for r in sorted(records, key=lambda r: r.user_id)
        }
        self._next_user_id = max(ids) + 1
        if partition is None:
            partition = partition_game(
                self._build_global_game(), num_shards,
                refine_passes=refine_passes,
            )
        else:
            require(
                partition.num_tasks == len(tasks),
                "partition does not match the task set",
            )
        self.partition = partition
        self.num_shards = partition.num_shards
        require(
            not record_history or self.num_shards == 1,
            "history recording is only defined for K=1 sessions",
        )
        self.record_history = record_history
        # K=1 reuses the monolithic allocator's stream verbatim (the
        # bit-identity contract); K>1 shards get independent children.
        if self.num_shards == 1:
            self._shard_rngs = [as_generator(seed)]
        else:
            self._shard_rngs = RngStream(seed).children("shard", self.num_shards)
        self._user_shard: dict[int, int] = {}
        for rec in self.records.values():
            self._user_shard[rec.user_id] = partition.owner_shard(
                rec.covered_tasks(), fallback=rec.user_id
            )
        self._spec_versions = [0] * self.num_shards
        self.engines: list[ShardEngine | None] = [None] * self.num_shards
        for s in range(self.num_shards):
            recs = self._shard_records(s)
            if recs:
                self.engines[s] = self._new_engine(s, recs, choices=None)
        self.counts = np.zeros(len(tasks), dtype=np.intp)
        self.ledger = BoundaryLedger(tasks, self.num_shards)
        self.violations: list[InvariantViolation] = []
        self.stats = ServeStats()
        self.health = health
        self.round_idx = 0
        self._global_cache: tuple[RouteNavigationGame, np.ndarray] | None = None
        self._refine_passes = refine_passes
        self.auto_retile = auto_retile
        require(retile_cooldown >= 1, "retile_cooldown must be >= 1")
        self._retile_cooldown = retile_cooldown
        self._last_retile_round = -retile_cooldown
        self._alerts_seen = 0
        self._pool = None
        self._supervisor = None
        #: Compiled serve-side fault schedule (None = clean substrate).
        #: Only the pool / spec store consult it — an inline (K=1 or
        #: process-less) session has no serving substrate to perturb.
        self.fault_injector = (
            fault_plan.compile(self.num_shards)
            if fault_plan is not None and not fault_plan.is_null()
            else None
        )
        if processes is not None and processes > 1 and self.num_shards > 1:
            from repro.serve.supervisor import ShardSupervisor
            from repro.serve.workers import ShardPool

            self._pool = ShardPool(
                min(processes, self.num_shards), backend=self.backend,
                use_shm=use_shm, faults=self.fault_injector,
            )
            if supervise:
                # Supervision is trajectory-neutral by construction:
                # engine state travels by value, so retried / inline /
                # quarantined epochs replay bit-identically.
                self._supervisor = ShardSupervisor(
                    self._pool, config=supervisor_config, health=health
                )
        # Pipeline mode overlaps worker epochs with the dispatcher's
        # boundary pass; it needs the pool (and K=1 never creates one, so
        # the bit-identity contract is untouched by construction).
        self.pipeline = bool(pipeline) and self._pool is not None
        self._inflight: dict[int, object] = {}
        self._banked: list[EpochResult] = []
        self._sync_dirty = False
        self._sync()

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_game(
        cls, game: RouteNavigationGame, *, num_shards: int = 1, **kwargs
    ) -> "ServeSession":
        """Serve an existing monolithic game instance."""
        records = [
            UserRecord(
                user_id=i,
                routes=game.route_sets[i],
                weights=game.user_weights[i],
            )
            for i in range(game.num_users)
        ]
        kwargs.setdefault("detour_unit_km", game.detour_unit_km)
        return cls(
            tasks=game.tasks,
            platform=game.platform,
            records=records,
            num_shards=num_shards,
            **kwargs,
        )

    @classmethod
    def from_scenario(
        cls, scenario, *, num_shards: int = 1, **kwargs
    ) -> "ServeSession":
        """Serve a road-network scenario (see :mod:`repro.scenario.builder`)."""
        kwargs.setdefault("detour_unit_km", scenario.game.detour_unit_km)
        return cls.from_game(scenario.game, num_shards=num_shards, **kwargs)

    # ----------------------------------------------------------------- rounds
    def run_round(
        self,
        *,
        crash_shards: tuple[int, ...] = (),
        epoch_slots: int | None = None,
    ) -> RoundReport:
        """One parallel-epoch + sync + boundary-reconciliation round.

        ``crash_shards`` simulates shard-worker crashes: the shard does its
        epoch work, loses it before the sync, and is resumed from its
        last-sync snapshot — the chaos hook's entry point.
        """
        t0 = time.perf_counter()
        self.round_idx += 1
        slots_cap = epoch_slots if epoch_slots is not None else self.epoch_slots
        crashed = tuple(sorted(set(crash_shards)))
        results = self._run_epochs(slots_cap, crashed)
        if self._banked:
            # Epochs harvested early by a churn-time flush: their moves are
            # already in the engine states, but they still count against
            # this round's quiescence claim (and their deferred boundary
            # users still need the sequential pass below).
            results = self._banked + results
            self._banked = []
        epoch_moves = sum(len(r.moves) for r in results)
        all_quiet = all(r.converged for r in results)
        self._sync()
        # A pipelined epoch runs against a snapshot taken *before* the
        # previous round's boundary pass; if this sync had to repair any
        # ext offset, some epoch's foreign view was stale and its
        # "converged" verdict is not trusted this round.
        sync_dirty = self._sync_dirty
        boundary_users = sorted(
            {int(u) for r in results for u in r.boundary_users}
        )
        prefetched = self._prefetch(slots_cap, crashed, boundary_users, all_quiet)
        boundary_moves = self._boundary_pass(boundary_users)
        if boundary_moves:
            self._sync()
        self.stats.rounds += 1
        self.stats.epoch_moves += epoch_moves
        self.stats.boundary_moves += boundary_moves
        self.stats.shard_crashes += len(crashed)
        converged = (
            epoch_moves == 0 and boundary_moves == 0 and all_quiet
            and not crashed and not sync_dirty
        )
        report = RoundReport(
            round=self.round_idx,
            epoch_moves=epoch_moves,
            boundary_moves=boundary_moves,
            slots=sum(r.slots for r in results),
            converged=converged,
            crashed_shards=crashed,
            prefetched=prefetched,
        )
        if obs.enabled():
            round_seconds = time.perf_counter() - t0
            obs.counter("serve.rounds_total").inc()
            obs.counter("serve.epoch_moves_total").inc(epoch_moves)
            obs.counter("serve.boundary_moves_total").inc(boundary_moves)
            if crashed:
                obs.counter("serve.shard_crashes_total").inc(len(crashed))
            obs.histogram("serve.round_seconds").observe(round_seconds)
            obs.gauge("serve.active_users").set(float(len(self.records)))
            obs.sample("serve.round_seconds", self.round_idx, round_seconds)
            obs.sample(
                "serve.active_users", self.round_idx, float(len(self.records))
            )
            for res in results:
                obs.sample(
                    "serve.epoch_moves", self.round_idx, float(len(res.moves)),
                    shard=res.shard_id,
                )
        if self.health is not None:
            # Counts are exact here (post-final-sync), so the monitor's
            # potential/residual observations are exact too.
            self.health.on_round(self, results, report)
            if self.auto_retile:
                self._maybe_auto_retile()
        return report

    def run_to_convergence(
        self, *, max_rounds: int = 10_000, epoch_slots: int | None = None
    ) -> list[RoundReport]:
        """Rounds until one grants nothing anywhere (global Nash)."""
        reports: list[RoundReport] = []
        for _ in range(max_rounds):
            rep = self.run_round(epoch_slots=epoch_slots)
            reports.append(rep)
            if rep.converged:
                return reports
        raise RuntimeError(
            f"no quiescence within {max_rounds} rounds — the potential "
            "argument guarantees termination, so this indicates a bug"
        )

    def _run_epochs(
        self, slots_cap: int | None, crashed: tuple[int, ...]
    ) -> list[EpochResult]:
        live = [s for s in range(self.num_shards) if self.engines[s] is not None]
        results: list[EpochResult] = []
        # Crashed shards: snapshot at sync state, do the epoch, lose it.
        for s in live:
            if s in crashed:
                fut = self._inflight.pop(s, None)
                if fut is not None:
                    # The prefetched epoch *is* the work the crash
                    # destroys: drain the worker (keeping its telemetry
                    # attributable) and discard the outcome — the
                    # dispatcher engine is still at its last-sync state.
                    try:
                        self._pool.harvest(fut)  # type: ignore[union-attr]
                    except ServeFaultError:
                        # The outcome was headed for the bin anyway; just
                        # make sure the executor is usable again.
                        self._pool.ensure_alive()  # type: ignore[union-attr]
                    continue
                engine = self.engines[s]
                assert engine is not None
                snap = engine.export_state()
                engine.run_epoch(slots_cap)  # work the crash destroys
                self.engines[s] = ShardEngine.from_state(
                    engine.spec, snap,
                    scheduler=self.scheduler, sort_key=self.sort_key,
                )
        healthy = [s for s in live if s not in crashed]
        if self._pool is not None and (len(healthy) > 1 or self._inflight):
            if self._supervisor is not None:
                self._supervisor.begin_round(self.round_idx)
            futures: dict[int, object] = {}
            probes: set[int] = set()
            for s in healthy:
                fut = self._inflight.pop(s, None)
                if fut is None:
                    if (
                        self._supervisor is not None
                        and self._supervisor.is_quarantined(s)
                    ):
                        if not self._supervisor.probe_due(s):
                            # Quarantined: run this shard's epoch inline
                            # (same state, same trajectory, no pool).
                            engine = self.engines[s]
                            assert engine is not None
                            results.append(engine.run_epoch(slots_cap))
                            continue
                        probes.add(s)
                    engine = self.engines[s]
                    assert engine is not None
                    fut = self._pool.submit_epoch(
                        engine.spec, engine.export_state(),
                        scheduler=self.scheduler, sort_key=self.sort_key,
                        max_slots=slots_cap,
                    )
                futures[s] = fut
            for s, fut in futures.items():
                harvested = self._harvest_job(s, fut, probe=s in probes)
                if harvested is None:
                    # Abandoned (quarantine) or failed probe: the engine
                    # still holds the exported state by value, so the
                    # inline rerun replays the epoch bit-identically.
                    engine = self.engines[s]
                    assert engine is not None
                    results.append(engine.run_epoch(slots_cap))
                    continue
                result, state = harvested
                self.engines[s] = ShardEngine.from_state(
                    self.engines[s].spec, state,  # type: ignore[union-attr]
                    scheduler=self.scheduler, sort_key=self.sort_key,
                )
                results.append(result)
        else:
            for s in healthy:
                engine = self.engines[s]
                assert engine is not None
                results.append(engine.run_epoch(slots_cap))
        return results

    def _harvest_job(self, s: int, job, *, probe: bool = False):
        """Harvest one pooled epoch through the supervisor (when present).

        Returns ``(EpochResult, state)``, or ``None`` when the epoch was
        abandoned (shard quarantined / probe failed) and the caller must
        run it inline from the engine's unchanged state."""
        if self._supervisor is None:
            return self._pool.harvest(job)  # type: ignore[union-attr]
        if probe:
            return self._supervisor.probe_harvest(job)
        try:
            return self._supervisor.harvest(job)
        except EpochAbandoned:
            return None

    def _prefetch(
        self,
        slots_cap: int | None,
        crashed: tuple[int, ...],
        boundary_users: list[int],
        all_quiet: bool,
    ) -> int:
        """Dispatch next-round epochs for shards the boundary pass can't touch.

        A prefetched epoch runs against the post-sync snapshot while the
        dispatcher does boundary reconciliation.  It stays an *exact* PUU
        super-slot iff none of the dispatcher's sequential moves touches
        the shard's own-region counts — so a shard is eligible only when
        no boundary user belongs to it **and** no boundary user's coverage
        intersects its region.  (Its *foreign* counts may still drift;
        the next ``_sync`` repairs those ext offsets and ``_sync_dirty``
        blocks any convergence claim built on the stale view.)
        """
        if not self.pipeline or self._pool is None:
            return 0
        if all_quiet and not boundary_users:
            return 0  # round is about to claim quiescence — nothing to overlap
        dirty: set[int] = set(crashed)
        for uid in boundary_users:
            rec = self.records.get(uid)
            if rec is None:
                continue
            dirty.add(self._user_shard[uid])
            cov = rec.covered_tasks()
            if cov.size:
                dirty.update(
                    int(r) for r in np.unique(self.partition.task_region[cov])
                )
        n = 0
        for s in range(self.num_shards):
            engine = self.engines[s]
            if engine is None or s in dirty or s in self._inflight:
                continue
            if self._supervisor is not None and self._supervisor.is_quarantined(s):
                continue  # quarantined shards run inline, never ahead
            self._inflight[s] = self._pool.submit_epoch(
                engine.spec, engine.export_state(),
                scheduler=self.scheduler, sort_key=self.sort_key,
                max_slots=slots_cap,
            )
            n += 1
        if n:
            self.stats.prefetched_epochs += n
            if obs.enabled():
                obs.counter("serve.prefetched_epochs_total").inc(n)
        return n

    def _flush_inflight(self) -> None:
        """Harvest every prefetched epoch before a structural change.

        Join / leave / re-tile rebuild shard specs, so an in-flight epoch
        must land first.  Its results are *banked* into the next round:
        the moves are already in the engine state, but the move count and
        deferred boundary users still have to reach that round's
        quiescence decision — dropping deferred users would let a session
        claim convergence with a cross-region improvement outstanding.
        """
        if not self._inflight:
            return
        for s in sorted(self._inflight):
            job = self._inflight[s]
            harvested = self._harvest_job(s, job)
            engine = self.engines[s]
            assert engine is not None
            if harvested is None:
                # Abandoned: replay the prefetched epoch inline from the
                # engine's unchanged state (bit-identical by value).
                cap = getattr(job, "max_slots", None)
                self._banked.append(engine.run_epoch(cap))
                continue
            result, state = harvested
            self.engines[s] = ShardEngine.from_state(
                engine.spec, state,
                scheduler=self.scheduler, sort_key=self.sort_key,
            )
            self._banked.append(result)
        self._inflight.clear()

    # ------------------------------------------------------------------- sync
    def _sync(self) -> None:
        """Reconcile global counts, refresh ext offsets, feed the ledger."""
        new_global = np.zeros(len(self.tasks), dtype=np.intp)
        contribs: list[tuple[np.ndarray, np.ndarray] | None] = []
        for engine in self.engines:
            if engine is None:
                contribs.append(None)
                continue
            local = engine.local_counts()
            new_global[engine.spec.task_map] += local
            contribs.append((engine.spec.task_map, local))
        self.counts = new_global
        dirty = False
        for engine in self.engines:
            if engine is None:
                continue
            new_ext = new_global[engine.spec.task_map] - engine.local_counts()
            delta = new_ext - engine.ext
            nz = np.flatnonzero(delta)
            if nz.size:
                dirty = True
            engine.apply_external(nz, delta[nz])
        self._sync_dirty = dirty
        self.ledger.sync(contribs)
        self.stats.sync_points += 1
        if self.validate:
            self._check_sync()

    def _check_sync(self) -> None:
        """Cross-shard count consistency + the ledger potential identity."""
        total = self.ledger.global_counts()
        if not np.array_equal(total, self.counts):
            self.violations.append(
                InvariantViolation(
                    "cross_shard_counts",
                    self.round_idx,
                    "dispatcher global counts diverged from the sum of "
                    "shard contributions",
                )
            )
        for engine in self.engines:
            if engine is None:
                continue
            seen = self.counts[engine.spec.task_map]
            if not np.array_equal(np.asarray(engine.profile.counts), seen):
                self.violations.append(
                    InvariantViolation(
                        "cross_shard_counts",
                        self.round_idx,
                        f"shard {engine.spec.shard_id} visible counts are "
                        "stale after sync",
                    )
                )
        sharded = (
            sum(
                e.shard_potential()
                for e in self.engines
                if e is not None
            )
            + self.ledger.correction()
        )
        exact = self.global_potential()
        if not np.isclose(sharded, exact, rtol=LEDGER_RTOL, atol=1e-9):
            self.violations.append(
                InvariantViolation(
                    "potential_reconciliation",
                    self.round_idx,
                    f"shard-sum potential + ledger correction {sharded!r} "
                    f"!= monolithic potential {exact!r}",
                )
            )

    def _boundary_pass(self, boundary_users: list[int]) -> int:
        """Sequentially re-evaluate deferred users with exact counts."""
        moves = 0
        for uid in boundary_users:
            if uid not in self.records:
                continue  # left between epoch and sync
            shard = self._user_shard[uid]
            engine = self.engines[shard]
            assert engine is not None
            li = engine.local_user_index(uid)
            prop = engine.best_move(li)
            if prop is None:
                continue
            self._apply_cross_move(shard, li, prop.new_route)
            moves += 1
        return moves

    def _apply_cross_move(
        self, shard: int, local_user: int, new_route: int
    ) -> None:
        """Apply one sequential global move and propagate count deltas."""
        engine = self.engines[shard]
        assert engine is not None
        _, gained, lost = engine.apply_move(local_user, new_route)
        if gained.size:
            self.counts[gained] += 1
        if lost.size:
            self.counts[lost] -= 1
        for other in self.engines:
            if other is None or other is engine:
                continue
            tm = other.spec.task_map
            for tasks, delta in ((gained, 1), (lost, -1)):
                if tasks.size == 0:
                    continue
                pos = np.searchsorted(tm, tasks)
                ok = pos < tm.size
                ok[ok] = tm[pos[ok]] == tasks[ok]
                visible = pos[ok]
                if visible.size:
                    other.apply_external(
                        visible,
                        np.full(visible.size, delta, dtype=np.intp),
                    )

    # ------------------------------------------------------------------ churn
    def next_user_id(self) -> int:
        """A fresh, never-used user id for a join."""
        uid = self._next_user_id
        self._next_user_id += 1
        return uid

    def join(self, record: UserRecord) -> int:
        """Admit one user: rebuild its owner shard, best-respond, sync."""
        require(
            record.user_id not in self.records,
            f"user id {record.user_id} is already active",
        )
        self._flush_inflight()
        self._next_user_id = max(self._next_user_id, record.user_id + 1)
        shard = self.partition.owner_shard(
            record.covered_tasks(), fallback=record.user_id
        )
        self.records[record.user_id] = record
        self._user_shard[record.user_id] = shard
        self._rebuild_shard(shard)
        self._sync()
        engine = self.engines[shard]
        assert engine is not None
        li = engine.local_user_index(record.user_id)
        prop = engine.best_move(li)
        if prop is not None:
            self._apply_cross_move(shard, li, prop.new_route)
        self.stats.joins += 1
        if obs.enabled():
            obs.counter("serve.joins_total").inc()
        return record.user_id

    def leave(self, user_id: int) -> None:
        """Retire one user; its coverage counts decrement at the rebuild."""
        require(user_id in self.records, f"unknown user id {user_id}")
        self._flush_inflight()
        shard = self._user_shard.pop(user_id)
        del self.records[user_id]
        self._rebuild_shard(shard)
        self._sync()
        self.stats.leaves += 1
        if obs.enabled():
            obs.counter("serve.leaves_total").inc()

    # ---------------------------------------------------------------- re-tile
    def retile(self) -> bool:
        """Re-partition regions to the current load and rebuild all shards.

        Users keep their strategies — only task *ownership* moves — so the
        global profile is invariant and the potential must agree across
        the re-tile up to float association order (asserted at
        :data:`LEDGER_RTOL`; a mismatch is recorded as a
        ``retile_potential`` invariant violation).  Returns ``True`` iff
        the refinement actually changed the region assignment.
        """
        if self.num_shards == 1:
            return False
        self._flush_inflight()
        game, profile = self.global_profile()
        pot_before = potential(profile)
        new_region = refine_regions(
            game, self.partition.task_region, self.num_shards,
            passes=self._refine_passes,
        )
        if np.array_equal(new_region, self.partition.task_region):
            return False
        self.partition = RegionPartition(
            num_shards=self.num_shards, task_region=new_region
        )
        # Capture every user's current route before tearing engines down:
        # migrating users must carry their strategy to the new owner.
        kept: dict[int, int] = {}
        for engine in self.engines:
            if engine is None:
                continue
            for li, uid in enumerate(engine.spec.users.tolist()):
                kept[uid] = int(engine.profile.choices[li])
        for rec in self.records.values():
            self._user_shard[rec.user_id] = self.partition.owner_shard(
                rec.covered_tasks(), fallback=rec.user_id
            )
        self._global_cache = None
        for s in range(self.num_shards):
            recs = self._shard_records(s)
            self._spec_versions[s] += 1
            if not recs:
                self.engines[s] = None
                continue
            choices = np.asarray(
                [kept[r.user_id] for r in recs], dtype=np.intp
            )
            self.engines[s] = self._new_engine(s, recs, choices)
            self.stats.shard_rebuilds += 1
            if obs.enabled():
                obs.counter("serve.shard_rebuilds_total").inc()
        self._sync()
        pot_after = self.sharded_potential()
        if not np.isclose(pot_before, pot_after, rtol=LEDGER_RTOL, atol=1e-9):
            self.violations.append(
                InvariantViolation(
                    "retile_potential",
                    self.round_idx,
                    f"global potential moved across a re-tile: "
                    f"{pot_before!r} -> {pot_after!r}",
                )
            )
        self.stats.retiles += 1
        if obs.enabled():
            obs.counter("serve.retiles_total").inc()
        return True

    def _maybe_auto_retile(self) -> None:
        """React to fresh load-imbalance alerts with a cooldown-gated re-tile.

        The monitor re-fires its imbalance alert every round the shares
        stay skewed, so without a cooldown the session would re-tile (and
        re-publish every spec) each round while converging toward balance.
        """
        assert self.health is not None
        alerts = self.health.alerts
        fresh = [
            a for a in alerts[self._alerts_seen:] if a.kind == "load_imbalance"
        ]
        self._alerts_seen = len(alerts)
        if not fresh:
            return
        if self.round_idx - self._last_retile_round < self._retile_cooldown:
            return
        if self.retile():
            self._last_retile_round = self.round_idx

    def _shard_records(self, shard: int) -> list[UserRecord]:
        return [
            self.records[uid]
            for uid in sorted(self.records)
            if self._user_shard[uid] == shard
        ]

    def _new_engine(
        self, shard: int, recs: list[UserRecord], choices: np.ndarray | None
    ) -> ShardEngine:
        spec = build_shard_spec(
            shard, recs, self.tasks, self.partition, self.platform,
            detour_unit_km=self.detour_unit_km,
            version=self._spec_versions[shard],
            compact=self.compact_shards,
        )
        if self.backend is not None:
            # Pinned on the arrays so in-process epochs and pickled spec
            # round-trips (legacy transport) inherit the choice; workers
            # on the zero-copy path install it via ShardPool(backend=).
            spec.game.arrays.set_backend(self.backend)
        return ShardEngine(
            spec,
            scheduler=self.scheduler,
            rng=self._shard_rngs[shard],
            choices=choices,
            record_history=self.record_history,
            sort_key=self.sort_key,
        )

    def _rebuild_shard(self, shard: int) -> None:
        """Re-compile a shard's sub-game after a membership change.

        Retained users keep their current routes; a joiner starts on route
        0 and is best-responded immediately after the sync.  The engine's
        RNG object is shared through ``self._shard_rngs``, so its stream
        continues across rebuilds.
        """
        self._global_cache = None
        recs = self._shard_records(shard)
        old = self.engines[shard]
        if not recs:
            self.engines[shard] = None
            return
        kept: dict[int, int] = {}
        if old is not None:
            for li, uid in enumerate(old.spec.users.tolist()):
                kept[uid] = int(old.profile.choices[li])
        choices = np.asarray(
            [kept.get(r.user_id, 0) for r in recs], dtype=np.intp
        )
        self._spec_versions[shard] += 1
        self.engines[shard] = self._new_engine(shard, recs, choices)
        self.stats.shard_rebuilds += 1
        if obs.enabled():
            obs.counter("serve.shard_rebuilds_total").inc()

    # ------------------------------------------------------------ global views
    def _build_global_game(self) -> RouteNavigationGame:
        recs = [self.records[uid] for uid in sorted(self.records)]
        return RouteNavigationGame.build(
            self.tasks,
            [r.routes for r in recs],
            [r.weights for r in recs],
            self.platform,
            detour_unit_km=self.detour_unit_km,
        )

    def global_profile(self) -> tuple[RouteNavigationGame, StrategyProfile]:
        """The monolithic game + profile equivalent to the current state.

        Rebuilt on demand (cached until churn changes membership); the
        serving hot path never touches it — it exists for validation,
        tests, and equilibrium-quality comparisons.
        """
        if self._global_cache is None:
            game = self._build_global_game()
            ids = np.asarray(sorted(self.records), dtype=np.intp)
            self._global_cache = (game, ids)
        game, ids = self._global_cache
        choices = np.empty(ids.size, dtype=np.intp)
        for engine in self.engines:
            if engine is None:
                continue
            pos = np.searchsorted(ids, engine.spec.users)
            choices[pos] = engine.profile.choices
        return game, StrategyProfile(game, choices)

    def global_potential(self) -> float:
        """Monolithic Eq. 8 potential of the current global state."""
        _, profile = self.global_profile()
        return potential(profile)

    def sharded_potential(self) -> float:
        """Global potential from shard sums + the ledger correction.

        Equal to :meth:`global_potential` up to float association order
        (the ledger identity, asserted at rtol 1e-9 in validate mode) but
        computed without rebuilding the monolithic game — the cheap form
        the :class:`~repro.serve.health.HealthMonitor` samples per round.
        """
        return float(
            sum(e.shard_potential() for e in self.engines if e is not None)
            + self.ledger.correction()
        )

    def nash_residual(self) -> float:
        """Max candidate profit gain across all users (0.0 iff at Nash).

        Exact at sync points; one batched best-response sweep per shard,
        RNG-neutral (``pick="first"``) — the distance-to-equilibrium
        gauge behind ``serve.nash_residual``.
        """
        return max(
            (e.nash_residual() for e in self.engines if e is not None),
            default=0.0,
        )

    def total_profit(self) -> float:
        """Sum of all users' exact profits (counts are exact at syncs)."""
        return float(
            sum(
                float(all_profits(e.profile).sum())
                for e in self.engines
                if e is not None
            )
        )

    def is_nash(self) -> bool:
        """No user anywhere has an improving move (exact at syncs)."""
        return all(
            e.improving_users().size == 0
            for e in self.engines
            if e is not None
        )

    def check_quiescence(self) -> None:
        """Record a Nash-at-quiescence violation if any user still improves."""
        for engine in self.engines:
            if engine is None:
                continue
            improving = engine.improving_users()
            if improving.size:
                ids = engine.spec.users[improving].tolist()
                self.violations.append(
                    InvariantViolation(
                        "nash_at_quiescence",
                        self.round_idx,
                        f"users {ids} still improve at quiescence",
                    )
                )

    # --------------------------------------------------------------- plumbing
    @property
    def num_users(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violations(self) -> None:
        if self.violations:
            lines = "\n".join(f"  - {v}" for v in self.violations)
            raise AssertionError(
                f"{len(self.violations)} serving invariant violation(s):\n{lines}"
            )

    def supervision_report(self) -> dict | None:
        """Supervisor counters (deadline, retries, quarantines, rebuilds)
        plus injected-fault totals; ``None`` for unsupervised sessions."""
        if self._supervisor is None:
            return None
        report = self._supervisor.report()
        if self.fault_injector is not None:
            report["injected_faults"] = self.fault_injector.summary()
        return report

    def history(self) -> dict[str, np.ndarray | None]:
        """K=1 trajectory histories (bitwise the monolithic allocator's)."""
        require(
            self.num_shards == 1 and self.engines[0] is not None,
            "histories are only recorded for K=1 sessions",
        )
        return self.engines[0].recorder.as_arrays()

    def close(self) -> None:
        if self._pool is not None:
            # Prefetched futures left by a converged final round: the pool
            # shutdown waits for the workers, the outcomes are irrelevant.
            self._inflight.clear()
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ServeSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
