"""Time-domain execution of a strategy profile.

Each user traverses its selected route edge-by-edge at the network's
*observed* speeds (congestion-aware).  A covered task is performed at the
moment the vehicle passes the point of its route closest to the task.
Outputs:

- per-user :class:`UserTrip` (travel time, distance),
- per-(user, task) :class:`CompletionEvent` timeline,
- an :class:`ExecutionReport` with the aggregate latency/VKT metrics used
  by the ``fig16`` extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.profile import StrategyProfile
from repro.geometry.polyline import point_to_segment_distance
from repro.network.graph import RoadNetwork
from repro.utils.validation import require


@dataclass(frozen=True, slots=True)
class CompletionEvent:
    """One task performed by one passing vehicle."""

    user: int
    task: int
    time_s: float  # since the user's departure (all users depart at t=0)
    along_km: float  # arc length along the user's route


@dataclass(frozen=True, slots=True)
class UserTrip:
    """One user's executed route."""

    user: int
    route: int
    distance_km: float
    travel_time_s: float
    tasks_performed: tuple[int, ...]


@dataclass
class ExecutionReport:
    """Aggregate outcome of executing a whole profile."""

    trips: list[UserTrip]
    events: list[CompletionEvent]
    first_completion_s: dict[int, float] = field(default_factory=dict)

    @property
    def total_distance_km(self) -> float:
        """Total vehicle-kilometres travelled (VKT)."""
        return float(sum(t.distance_km for t in self.trips))

    @property
    def mean_travel_time_s(self) -> float:
        return float(np.mean([t.travel_time_s for t in self.trips]))

    @property
    def mean_first_completion_s(self) -> float:
        """Mean time until a covered task receives its *first* result."""
        if not self.first_completion_s:
            return 0.0
        return float(np.mean(list(self.first_completion_s.values())))

    @property
    def completions_per_km(self) -> float:
        """Sensing efficiency: task completions per vehicle-km."""
        dist = self.total_distance_km
        return len(self.events) / dist if dist > 0 else 0.0


def _route_timeline(
    net: RoadNetwork, nodes: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Cumulative ``(distance_km, time_s)`` at every route vertex."""
    if len(nodes) < 2:
        return np.zeros(1), np.zeros(1)
    eids = net.path_edge_ids(list(nodes))
    lengths = net.edge_lengths[eids]
    assert net.observed_kmh is not None
    speeds = np.maximum(net.observed_kmh[eids], 1e-3)
    seg_time_s = lengths / speeds * 3600.0
    dist = np.concatenate([[0.0], np.cumsum(lengths)])
    time = np.concatenate([[0.0], np.cumsum(seg_time_s)])
    return dist, time


def _task_passing_point(
    poly: np.ndarray, cum_dist: np.ndarray, tx: float, ty: float
) -> float:
    """Arc length (km) at which the route passes closest to ``(tx, ty)``."""
    best_d = np.inf
    best_along = 0.0
    for i in range(len(poly) - 1):
        ax, ay = poly[i]
        bx, by = poly[i + 1]
        d = float(
            point_to_segment_distance(
                np.array([tx]), np.array([ty]), ax, ay, bx, by
            )[0]
        )
        if d < best_d:
            best_d = d
            seg = np.array([bx - ax, by - ay])
            seg_len = float(np.hypot(*seg))
            if seg_len > 0:
                t = float(
                    np.clip(
                        ((tx - ax) * seg[0] + (ty - ay) * seg[1]) / seg_len**2,
                        0.0,
                        1.0,
                    )
                )
            else:
                t = 0.0
            best_along = float(cum_dist[i] + t * (cum_dist[i + 1] - cum_dist[i]))
    return best_along


def execute_profile(
    net: RoadNetwork,
    profile: StrategyProfile,
) -> ExecutionReport:
    """Drive every user's selected route; return the execution report.

    All users depart simultaneously at ``t = 0`` (the navigation scenario:
    routes are chosen, then everyone drives).  Requires the profile's game
    to have been built on ``net`` (routes reference its node ids).
    """
    net.freeze()
    game = profile.game
    tasks = game.tasks
    trips: list[UserTrip] = []
    events: list[CompletionEvent] = []
    first: dict[int, float] = {}
    for i in game.users:
        route_idx = profile.route_of(i)
        route = game.route_sets[i][route_idx]
        require(
            max(route.nodes) < net.num_nodes,
            f"route of user {i} references nodes outside the network",
        )
        nodes = route.nodes
        cum_dist, cum_time = _route_timeline(net, nodes)
        poly = net.path_polyline(list(nodes))
        performed: list[int] = []
        for k in route.task_ids:
            along = _task_passing_point(
                poly, cum_dist, float(tasks.xy[k, 0]), float(tasks.xy[k, 1])
            )
            t_s = float(np.interp(along, cum_dist, cum_time))
            events.append(
                CompletionEvent(user=i, task=int(k), time_s=t_s, along_km=along)
            )
            performed.append(int(k))
            if int(k) not in first or t_s < first[int(k)]:
                first[int(k)] = t_s
        trips.append(
            UserTrip(
                user=i,
                route=route_idx,
                distance_km=float(cum_dist[-1]),
                travel_time_s=float(cum_time[-1]),
                tasks_performed=tuple(performed),
            )
        )
    events.sort(key=lambda e: e.time_s)
    return ExecutionReport(trips=trips, events=events, first_completion_s=first)
