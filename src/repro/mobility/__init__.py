"""Route-execution substrate: drive the chosen routes through time.

The game decides *which* route each vehicle takes; this package simulates
the vehicles actually driving them — edge-by-edge at the congestion
model's observed speeds — and performing each covered task as they pass
it.  It turns an equilibrium profile into a timeline of task-completion
events, powering latency/travel-time evaluation beyond the paper's static
profit metrics.
"""

from repro.mobility.execution import (
    CompletionEvent,
    ExecutionReport,
    UserTrip,
    execute_profile,
)

__all__ = [
    "CompletionEvent",
    "ExecutionReport",
    "UserTrip",
    "execute_profile",
]
