"""Profile-level metrics used throughout Section 5.3.

- *coverage* (Fig. 8): covered tasks / total tasks.
- *average reward* (Figs. 9, 11, 12a): total task reward received by all
  users divided by the number of users (raw reward shares, before the
  user's ``alpha`` weighting — the quantity a user is actually paid).
- *Jain's fairness index* (Fig. 10) over per-user profits.
- *overlap ratio* (Table 3): tasks with more than one participant / total.
- *average detour* / *average congestion* (Fig. 12b-c, Table 5): mean of
  ``h(s_i)`` and ``c(s_i)`` over users.
"""

from __future__ import annotations

import numpy as np

from repro.core.profile import StrategyProfile


def coverage(profile: StrategyProfile) -> float:
    """Fraction of tasks with at least one participant."""
    n = profile.game.num_tasks
    if n == 0:
        return 0.0
    return float(np.count_nonzero(profile.counts) / n)


def per_user_rewards(profile: StrategyProfile) -> np.ndarray:
    """Raw reward income ``sum_{k in L_{s_i}} w_k(n_k)/n_k`` per user.

    One gather + segmented reduction over the game's CSR layout.
    """
    game = profile.game
    shares = game.tasks.shares(profile.counts)
    return game.arrays.chosen_segment_sums(profile.choices, shares)


def average_reward(profile: StrategyProfile) -> float:
    """Total user reward divided by the number of users (Fig. 9)."""
    return float(per_user_rewards(profile).mean())


def jain_fairness(values: np.ndarray | StrategyProfile) -> float:
    """Jain's index ``(sum x)^2 / (n * sum x^2)`` in (0, 1].

    Accepts either a value vector or a profile (then uses per-user profits,
    as in Fig. 10).  Degenerate all-zero inputs return 1.0 (everyone is
    equally profitless).
    """
    if isinstance(values, StrategyProfile):
        from repro.core.profit import all_profits

        values = all_profits(values)
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return 1.0
    denom = x.size * float(np.sum(x * x))
    if denom == 0.0:
        return 1.0
    return float(np.sum(x) ** 2 / denom)


def overlap_ratio(profile: StrategyProfile) -> float:
    """Tasks with more than one participant / total tasks (Table 3)."""
    n = profile.game.num_tasks
    if n == 0:
        return 0.0
    return float(np.count_nonzero(profile.counts > 1) / n)


def average_detour(profile: StrategyProfile) -> float:
    """Mean selected-route detour ``h(s_i)`` over users (game units)."""
    ga = profile.game.arrays
    return float(ga.route_detour[ga.chosen_route_ids(profile.choices)].mean())


def average_congestion(profile: StrategyProfile) -> float:
    """Mean selected-route congestion level ``c(s_i)`` over users."""
    ga = profile.game.arrays
    return float(ga.route_congestion[ga.chosen_route_ids(profile.choices)].mean())


def platform_utility(
    profile: StrategyProfile, *, quality_rate: float = 0.7
) -> float:
    """Sensing value accrued to the platform.

    Section 3.1 motivates the log reward bonus by "task completion quality
    is improved when receiving multiple results"; the standard model for
    that is diminishing-returns quality ``q(n) = 1 - exp(-lambda * n)``.
    The platform's utility is the sum of task qualities — the quantity its
    ``phi``/``theta`` knobs ultimately steer.
    """
    if quality_rate <= 0:
        raise ValueError(f"quality_rate must be > 0, got {quality_rate}")
    counts = profile.counts.astype(float)
    return float(np.sum(1.0 - np.exp(-quality_rate * counts)))
