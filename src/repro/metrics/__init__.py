"""Evaluation metrics of Section 5.3."""

from repro.metrics.measures import (
    average_congestion,
    average_detour,
    average_reward,
    coverage,
    jain_fairness,
    overlap_ratio,
    per_user_rewards,
    platform_utility,
)
from repro.metrics.convergence import ConvergenceStats, convergence_stats

__all__ = [
    "ConvergenceStats",
    "average_congestion",
    "average_detour",
    "average_reward",
    "convergence_stats",
    "coverage",
    "jain_fairness",
    "overlap_ratio",
    "per_user_rewards",
    "platform_utility",
]
