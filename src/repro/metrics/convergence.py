"""Convergence diagnostics tying runs back to Theorem 4."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import AllocationResult
from repro.core.convergence import convergence_slot_bound
from repro.core.game import RouteNavigationGame


@dataclass(frozen=True, slots=True)
class ConvergenceStats:
    """Measured convergence behaviour of one run."""

    decision_slots: int
    total_moves: int
    min_gain: float  # smallest profit improvement any granted move realized
    theorem4_bound: float  # the bound evaluated at that min gain
    potential_monotone: bool  # did the potential ever decrease?

    @property
    def within_bound(self) -> bool:
        return self.decision_slots < self.theorem4_bound


def convergence_stats(
    game: RouteNavigationGame, result: AllocationResult
) -> ConvergenceStats:
    """Compute :class:`ConvergenceStats` from a recorded run.

    ``min_gain`` instantiates Theorem 4's ``dP_min`` with the smallest gain
    observed in the move log; runs without moves get an infinite bound
    (converged instantly).
    """
    if result.moves:
        min_gain = min(m.gain for m in result.moves)
        min_gain = max(min_gain, 1e-12)  # numerical floor
        bound = convergence_slot_bound(game, min_gain)
    else:
        bound = float("inf")
        min_gain = float("inf")
    monotone = True
    if result.potential_history is not None and len(result.potential_history) > 1:
        diffs = np.diff(result.potential_history)
        monotone = bool(np.all(diffs >= -1e-9))
    return ConvergenceStats(
        decision_slots=result.decision_slots,
        total_moves=len(result.moves),
        min_gain=float(min_gain),
        theorem4_bound=float(bound),
        potential_monotone=monotone,
    )
