#!/usr/bin/env python
"""Steering equilibria with platform and user weights (Fig. 12 / Table 5).

The same physical instance is re-weighted: the platform trades task
coverage against detour and congestion via (phi, theta), and a single
driver shifts its own outcome via (alpha, beta, gamma) — without any
central reassignment.

Run:  python examples/preference_tuning.py
"""

import numpy as np

from repro.algorithms import DGRN
from repro.core import PlatformWeights, StrategyProfile
from repro.metrics import (
    average_congestion,
    average_detour,
    average_reward,
    per_user_rewards,
)
from repro.scenario import ScenarioConfig, build_scenario


def main() -> None:
    scenario = build_scenario(
        ScenarioConfig(
            city="epfl", n_users=25, n_tasks=45, seed=13, phi=0.4, theta=0.4
        )
    )
    base_game = scenario.game
    initial = StrategyProfile.random(base_game, np.random.default_rng(2)).choices

    print("== Platform steering: sweep (phi, theta) on one instance ==")
    print(f"{'phi':>4} {'theta':>5} | {'avg reward':>10} {'avg detour':>10} "
          f"{'avg congestion':>14}")
    for phi, theta in [(0.1, 0.1), (0.7, 0.1), (0.1, 0.7), (0.7, 0.7)]:
        game = base_game.with_platform(PlatformWeights(phi, theta))
        profile = DGRN(seed=1).run(game, initial=initial).profile
        print(f"{phi:>4.1f} {theta:>5.1f} | {average_reward(profile):>10.2f} "
              f"{average_detour(profile):>10.2f} "
              f"{average_congestion(profile):>14.2f}")

    print("\n== Driver steering: user 0 sweeps its own weights ==")
    user = 0
    base_weights = base_game.user_weights[user]
    print(f"user {user} sampled weights: alpha={base_weights.alpha:.2f}, "
          f"beta={base_weights.beta:.2f}, gamma={base_weights.gamma:.2f}")
    for name in ("alpha", "beta", "gamma"):
        print(f"\n  sweeping {name}:")
        for value in (0.1, 0.45, 0.8):
            game = base_game.with_user_weights(
                user, base_weights.replace(**{name: value})
            )
            profile = DGRN(seed=1).run(game, initial=initial).profile
            route = profile.route_of(user)
            print(f"    {name}={value:.2f} -> reward "
                  f"{per_user_rewards(profile)[user]:6.2f}, detour "
                  f"{game.detour_h(user, route):6.2f}, congestion "
                  f"{game.congestion_level(user, route):6.2f}")

    print("\nExpected trends (paper, Fig. 12 & Table 5): reward falls as "
          "phi/theta rise; the driver's reward rises with alpha, its detour "
          "falls with beta, its congestion falls with gamma.")


if __name__ == "__main__":
    main()
