#!/usr/bin/env python
"""Operational view: drive the equilibrium and watch tasks get sensed.

Builds a Shanghai campaign with *trace-derived* congestion (the paper's
own recipe: congestion from observed taxi velocities), solves the game,
then executes the chosen routes through the mobility simulator, printing
the task-completion timeline and the operational comparison against
random routing.

Run:  python examples/fleet_operations.py
"""

from repro.algorithms import DGRN, RRN
from repro.mobility import execute_profile
from repro.scenario import ScenarioConfig, build_scenario


def main() -> None:
    scenario = build_scenario(
        ScenarioConfig(
            city="shanghai", n_users=15, n_tasks=30, seed=99,
            congestion_source="traces",
        )
    )
    traffic = scenario.planner.traffic
    print(f"Congestion estimated from {len(scenario.traces)} taxi traces "
          f"({traffic.coverage_fraction:.0%} of road edges observed)\n")

    result = DGRN(seed=1).run(scenario.game)
    report = execute_profile(scenario.network, result.profile)

    print("First ten sensing events (all vehicles depart at t = 0):")
    print(f"{'t (s)':>7} | user | task | km along route")
    for e in report.events[:10]:
        print(f"{e.time_s:>7.1f} | {e.user:>4} | {e.task:>4} | {e.along_km:.2f}")

    print(f"\nFleet totals: {report.total_distance_km:.1f} vehicle-km, "
          f"mean trip {report.mean_travel_time_s:.0f} s, "
          f"{len(report.events)} completions "
          f"({report.completions_per_km:.2f} per km)")
    print(f"Mean time-to-first-result per task: "
          f"{report.mean_first_completion_s:.0f} s "
          f"over {len(report.first_completion_s)} sensed tasks")

    random_report = execute_profile(
        scenario.network, RRN(seed=1).run(scenario.game).profile
    )
    print("\nEquilibrium routing vs. random routing:")
    print(f"  completions/km : {report.completions_per_km:.2f} vs. "
          f"{random_report.completions_per_km:.2f}")
    print(f"  sensed tasks   : {len(report.first_completion_s)} vs. "
          f"{len(random_report.first_completion_s)}")
    print(f"  mean trip time : {report.mean_travel_time_s:.0f}s vs. "
          f"{random_report.mean_travel_time_s:.0f}s")


if __name__ == "__main__":
    main()
