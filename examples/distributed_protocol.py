#!/usr/bin/env python
"""Drive the faithful message-passing protocol (Algorithms 1-3).

Unlike the in-memory engines, this simulation has *no shared state*: user
agents see only their recommended routes, the platform's cost annotations,
and restricted task-count updates — the privacy property the paper argues
for.  The script reports the protocol's message traffic and compares SUU
against PUU scheduling.

Run:  python examples/distributed_protocol.py
"""

from repro.core import is_nash_equilibrium
from repro.distributed import DistributedSimulation
from repro.scenario import ScenarioConfig, build_scenario


def main() -> None:
    scenario = build_scenario(
        ScenarioConfig(city="roma", n_users=25, n_tasks=50, seed=21)
    )
    game = scenario.game
    print(f"Roma instance: {game.num_users} users, {game.num_tasks} tasks\n")

    for scheduler in ("suu", "puu"):
        sim = DistributedSimulation(
            game, scheduler=scheduler, seed=5, validate_local_views=True
        )
        out = sim.run()
        assert out.converged and is_nash_equilibrium(out.profile)
        grants = out.granted_per_slot
        print(f"== {scheduler.upper()} scheduling ==")
        print(f"decision slots:        {out.decision_slots}")
        print(f"total profit:          {out.total_profit:.2f}")
        print(f"messages exchanged:    {out.total_messages}")
        for mtype, count in sorted(out.message_traffic.items()):
            print(f"  {mtype:<20} {count:>5}")
        if grants:
            print(f"parallel grants/slot:  mean {sum(grants)/len(grants):.2f}, "
                  f"max {max(grants)}")
        print()

    print("Every user agent's locally-computed profit was validated against "
          "the global game state at every slot (validate_local_views=True).")


if __name__ == "__main__":
    main()
