#!/usr/bin/env python
"""A full vehicular-crowdsensing campaign in the Shanghai-like city.

Walks through the scenario the paper's introduction motivates: a platform
posts sensing tasks across the city, commuting drivers pick among their
recommended routes, and the platform steers the outcome with its weights.

Compares all seven allocation algorithms on the same instance, verifies
the potential-game guarantees at runtime, and reports the Theorem 4
convergence bound and the Price-of-Anarchy envelope.

Run:  python examples/shanghai_campaign.py
"""

import numpy as np

from repro.algorithms import ALGORITHM_REGISTRY, make_allocator
from repro.core import StrategyProfile
from repro.core.poa import poa_lower_bound
from repro.metrics import (
    average_reward,
    convergence_stats,
    coverage,
    jain_fairness,
    overlap_ratio,
)
from repro.scenario import ScenarioConfig, build_scenario

N_USERS = 14  # small enough for the exact CORN solver
N_TASKS = 35


def main() -> None:
    scenario = build_scenario(
        ScenarioConfig(city="shanghai", n_users=N_USERS, n_tasks=N_TASKS, seed=7)
    )
    game = scenario.game
    print(f"Campaign: {N_USERS} drivers, {N_TASKS} tasks, "
          f"phi={game.platform.phi:.2f}, theta={game.platform.theta:.2f}")
    print(f"OD pairs from {len(scenario.traces)} synthetic taxi traces "
          f"({scenario.traces.name} profile)\n")

    # Same random starting profile for every algorithm.
    initial = StrategyProfile.random(game, np.random.default_rng(1))

    header = (f"{'algorithm':>9} | {'slots':>5} | {'profit':>8} | "
              f"{'coverage':>8} | {'avg rwd':>7} | {'jain':>5} | {'nash':>5}")
    print(header)
    print("-" * len(header))
    results = {}
    for name in ("RRN", "BATS", "BRUN", "DGRN", "BUAU", "MUUN", "GREEDY", "CORN"):
        algo = make_allocator(name, seed=3)
        res = algo.run(game, initial=initial)
        results[name] = res
        print(f"{name:>9} | {res.decision_slots:>5} | {res.total_profit:>8.2f} | "
              f"{coverage(res.profile):>8.2%} | {average_reward(res.profile):>7.2f} | "
              f"{jain_fairness(res.profile):>5.3f} | {str(res.is_nash):>5}")

    # Theorem 4: the run must finish within the convergence bound.
    dgrn = results["DGRN"]
    stats = convergence_stats(game, dgrn)
    print(f"\nDGRN convergence: {stats.decision_slots} slots "
          f"< Theorem-4 bound {stats.theorem4_bound:.0f} "
          f"(min update gain {stats.min_gain:.4f})")
    print(f"Potential monotone non-decreasing: {stats.potential_monotone}")

    # Price of Anarchy: measured ratio vs. the pessimistic bound.
    ratio = dgrn.total_profit / results["CORN"].total_profit
    print(f"\nPoA check: DGRN/CORN = {ratio:.3f} "
          f">= bound {poa_lower_bound(game):.3f}")
    print(f"Task overlap ratio at equilibrium: "
          f"{overlap_ratio(dgrn.profile):.3f}")


if __name__ == "__main__":
    main()
