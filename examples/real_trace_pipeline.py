#!/usr/bin/env python
"""Drop-in real-data pipeline: trace files -> OD pairs -> game -> map.

The CRAWDAD datasets cannot be redistributed, so this script first writes
synthetic traces in the three *real* on-disk formats (Roma semicolon CSV,
Epfl cabspotting per-cab files, Shanghai HERO CSV), then runs the exact
pipeline a user with the real files would run: parse, extract trips, build
the scenario, solve, and render the Fig. 13-style map.

Run:  python examples/real_trace_pipeline.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.algorithms import MUUN
from repro.scenario import ScenarioConfig, build_scenario
from repro.traces import (
    get_city,
    parse_roma_file,
    synthesize_traces,
    write_roma_file,
)
from repro.traces.parsers import (
    parse_epfl_directory,
    parse_shanghai_file,
    write_epfl_cab_file,
    write_shanghai_file,
)
from repro.viz import render_ascii, render_svg


def main(out_dir: Path) -> None:
    data_dir = out_dir / "trace_data"
    data_dir.mkdir(parents=True, exist_ok=True)

    # --- 1. Materialize files in the three real formats. -----------------
    roma_file = data_dir / "taxi_february.txt"
    write_roma_file(
        roma_file,
        synthesize_traces(get_city("roma"), n_vehicles=60, seed=1),
    )
    epfl_dir = data_dir / "cabspottingdata"
    epfl_dir.mkdir(exist_ok=True)
    for traj in synthesize_traces(get_city("epfl"), n_vehicles=40, seed=2):
        write_epfl_cab_file(epfl_dir / f"new_{traj.vehicle_id}.txt", traj)
    shanghai_file = data_dir / "shanghai_gps.csv"
    write_shanghai_file(
        shanghai_file,
        synthesize_traces(get_city("shanghai"), n_vehicles=60, seed=3),
    )
    print(f"wrote trace files under {data_dir}")

    # --- 2. Parse them back exactly as real data would be. ---------------
    parsed = {
        "roma": parse_roma_file(roma_file),
        "epfl": parse_epfl_directory(epfl_dir),
        "shanghai": parse_shanghai_file(shanghai_file),
    }
    for name, traces in parsed.items():
        print(f"parsed {name}: {len(traces)} vehicles, "
              f"{traces.total_points()} GPS fixes")

    # --- 3. Build a game from the parsed traces and solve it. ------------
    for city, traces in parsed.items():
        scenario = build_scenario(
            ScenarioConfig(city=city, n_users=10, n_tasks=25, seed=4),
            traces=traces,
        )
        result = MUUN(seed=0).run(scenario.game)
        print(f"\n{city}: equilibrium after {result.decision_slots} slots, "
              f"total profit {result.total_profit:.1f}")
        svg_path = out_dir / f"map_{city}.svg"
        render_svg(scenario.network, scenario.tasks, result.profile,
                   path=svg_path)
        print(f"  map written to {svg_path}")
        if city == "roma":
            print(render_ascii(scenario.network, scenario.tasks,
                               result.profile, width=68, height=22))


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro_traces_")
    )
    main(target)
