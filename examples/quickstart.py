#!/usr/bin/env python
"""Quickstart: build a city instance, run the paper's algorithm, inspect
the equilibrium.

Run:  python examples/quickstart.py
"""

from repro.algorithms import CORN, DGRN, RRN
from repro.core import is_nash_equilibrium
from repro.metrics import average_reward, coverage, jain_fairness
from repro.scenario import ScenarioConfig, build_scenario


def main() -> None:
    # 1. Build a Shanghai-like instance: road graph, synthetic taxi traces,
    #    recommended routes, random sensing tasks (Table 2 parameters).
    scenario = build_scenario(
        ScenarioConfig(city="shanghai", n_users=12, n_tasks=30, seed=42)
    )
    game = scenario.game
    print(f"Instance: {game.num_users} users, {game.num_tasks} tasks, "
          f"routes per user: {[game.num_routes(i) for i in game.users]}")

    # 2. Run the distributed game-theoretical route navigation algorithm.
    result = DGRN(seed=0).run(game)
    print(f"\nDGRN converged in {result.decision_slots} decision slots "
          f"({len(result.moves)} route switches)")
    print(f"Nash equilibrium reached: {is_nash_equilibrium(result.profile)}")
    print(f"Total profit:   {result.total_profit:.2f}")
    print(f"Task coverage:  {coverage(result.profile):.2%}")
    print(f"Average reward: {average_reward(result.profile):.2f}")
    print(f"Jain fairness:  {jain_fairness(result.profile):.3f}")

    # 3. Compare against the random baseline and the centralized optimum.
    random_profit = RRN(seed=0).run(game).total_profit
    optimal_profit = CORN(seed=0).run(game).total_profit
    print(f"\nRRN (random):         {random_profit:8.2f}")
    print(f"DGRN (equilibrium):   {result.total_profit:8.2f}")
    print(f"CORN (optimal):       {optimal_profit:8.2f}")
    print(f"Equilibrium efficiency: {result.total_profit / optimal_profit:.1%} "
          f"of the centralized optimum")


if __name__ == "__main__":
    main()
