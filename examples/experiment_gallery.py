#!/usr/bin/env python
"""Render a gallery of the paper's figures as SVG charts.

Runs a reduced-scale version of each chartable experiment and writes one
SVG per figure (plus the Fig. 13 maps) into the output directory — a
self-contained, matplotlib-free reproduction gallery.

Run:  python examples/experiment_gallery.py [output_dir] [repetitions]
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS
from repro.viz.charts import chart_from_table

# Reduced-scale knobs per experiment so the gallery finishes in minutes.
GALLERY = {
    "fig4": dict(repetitions=3, cities=("shanghai",)),
    "fig5": dict(repetitions=3, cities=("shanghai",)),
    "fig7": dict(repetitions=3, cities=("shanghai",), user_counts=(10, 11, 12)),
    "fig8": dict(repetitions=3, cities=("shanghai",)),
    "fig9": dict(repetitions=3, cities=("shanghai",)),
    "fig10": dict(repetitions=3, cities=("shanghai",), user_counts=(8, 10, 12)),
    "table4": dict(repetitions=3, user_counts=(9, 10, 11)),
    "fig14": dict(repetitions=5),
    "fig15": dict(repetitions=3),
}


def main(out_dir: Path, repetitions: int | None = None) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    for key, kwargs in GALLERY.items():
        exp = EXPERIMENTS[key]
        if repetitions is not None:
            kwargs = dict(kwargs, repetitions=repetitions)
        start = time.perf_counter()
        table = exp.run(seed=0, **kwargs)
        assert exp.chart is not None
        x, y, series = exp.chart
        path = out_dir / f"{key}.svg"
        chart_from_table(
            table, x=x, y=y, series=series,
            title=f"{exp.paper_artifact}: {exp.description}", path=path,
        )
        print(f"{key:<8} {len(table):>3} rows  {time.perf_counter()-start:5.1f}s"
              f"  -> {path}")
    # Fig. 13: the route maps.
    EXPERIMENTS["fig13"].run(seed=0, out_dir=out_dir)
    print(f"fig13    maps written under {out_dir}")


if __name__ == "__main__":
    target = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro_gallery_")
    )
    reps = int(sys.argv[2]) if len(sys.argv) > 2 else None
    main(target, reps)
