"""Bench for Figure 10: Jain's fairness index vs. user number.

Paper shape: DGRN is the fairest (every user at a personal best response),
RRN the least fair; all indices in (0, 1].
"""

from repro.experiments import run_experiment

from conftest import save_and_print

USER_COUNTS = (8, 10, 12)


def run():
    return run_experiment(
        "fig10",
        repetitions=4,
        seed=0,
        cities=("shanghai",),
        user_counts=USER_COUNTS,
    )


def test_fig10_fairness(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig10", table)
    for r in table:
        assert 0.0 < r["jain_index_mean"] <= 1.0 + 1e-9

    def total(algo):
        return sum(r["jain_index_mean"] for r in table if r["algorithm"] == algo)

    # DGRN is the fairest overall.
    assert total("DGRN") >= total("RRN")
    assert total("DGRN") >= total("CORN") - 0.05 * len(USER_COUNTS)
