"""Perf-regression ledger: append/check pytest-benchmark results.

``make bench-json`` produces ``benchmarks/results/bench.json`` (the raw
pytest-benchmark document).  This script distils it into one compact,
schema-versioned record per run and maintains a committed rolling
baseline in ``BENCH_history.json`` at the repo root:

    python benchmarks/bench_history.py append            # record a run
    python benchmarks/bench_history.py check             # regression gate

Two kinds of quantities are tracked, with different gating rules:

- **Absolute medians** (seconds) of the tracked benchmarks.  Wall time is
  machine-dependent, so the gate only compares against prior records
  whose machine fingerprint (node/machine/processor) matches; with no
  same-machine history the absolute gate passes with a note — a fresh CI
  runner never fails spuriously.
- **Derived speedup ratios** (scalar-vs-batched, K=1-vs-K=4 churn).
  Ratios of two medians from the *same* run cancel machine speed, so
  they are gated across all records regardless of machine.

The gate fails (exit 1) when a median regresses more than ``--threshold``
(default 20%) beyond its rolling baseline, taken over the last
``--window`` (default 5) comparable records.  The baseline is
deliberately conservative — the *slowest* recent median / the *weakest*
recent speedup — so run-to-run timer noise (easily ±20% on sub-ms
kernels on shared hardware) doesn't flake the build, while a genuinely
broken fast path (batched sweep falling back to the scalar loop, a
sharding speedup collapsing to 1x) still trips it immediately.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

SCHEMA = "repro.bench_history/v1"
DEFAULT_HISTORY = Path(__file__).resolve().parent.parent / "BENCH_history.json"
DEFAULT_BENCH = Path(__file__).resolve().parent / "results" / "bench.json"

#: Benchmarks whose absolute medians are tracked (matched by fullname
#: suffix so rootdir differences between local runs and CI don't matter).
TRACKED = (
    "test_bench_kernels.py::TestKernels::test_candidate_profits_csr",
    "test_bench_kernels.py::TestKernels::test_candidate_profits_scalar_reference",
    "test_bench_kernels.py::TestKernels::test_all_profits_csr",
    "test_bench_kernels.py::TestKernels::test_all_profits_scalar_reference",
    "test_bench_proposals.py::TestProposalSweep::test_sweep_batched",
    "test_bench_proposals.py::TestProposalSweep::test_sweep_scalar_loop",
    "test_bench_proposals.py::TestFullSlot::test_slot_batched",
    "test_bench_proposals.py::TestFullSlot::test_slot_scalar",
    "test_bench_proposals.py::TestBackendSweep::test_batch_profits[numpy]",
    "test_bench_proposals.py::TestBackendSweep::test_batch_profits[numba]",
    "test_bench_serve.py::test_churn_round[1]",
    "test_bench_serve.py::test_churn_round[2]",
    "test_bench_serve.py::test_churn_round[4]",
    "test_bench_serve.py::test_pooled_churn_round[plain]",
    "test_bench_serve.py::test_pooled_churn_round[pipelined]",
)

#: Machine-independent quantities read from a benchmark's ``extra_info``
#: (name -> (fullname suffix, extra_info key)).  These are deterministic
#: byte/count ratios, so — like RATIOS — they gate across all records.
EXTRAS = {
    "serve.payload_shrink": (
        "test_bench_serve.py::test_epoch_payload_shrink",
        "payload_shrink",
    ),
}

#: Machine-independent speedup ratios: name -> (numerator, denominator),
#: both fullname suffixes from TRACKED.  Regression = ratio shrinks.
RATIOS = {
    "kernels.candidate_profits_speedup": (
        "test_bench_kernels.py::TestKernels::test_candidate_profits_scalar_reference",
        "test_bench_kernels.py::TestKernels::test_candidate_profits_csr",
    ),
    "kernels.all_profits_speedup": (
        "test_bench_kernels.py::TestKernels::test_all_profits_scalar_reference",
        "test_bench_kernels.py::TestKernels::test_all_profits_csr",
    ),
    "proposals.sweep_speedup": (
        "test_bench_proposals.py::TestProposalSweep::test_sweep_scalar_loop",
        "test_bench_proposals.py::TestProposalSweep::test_sweep_batched",
    ),
    "proposals.slot_speedup": (
        "test_bench_proposals.py::TestFullSlot::test_slot_scalar",
        "test_bench_proposals.py::TestFullSlot::test_slot_batched",
    ),
    "serve.churn_capacity_k4": (
        "test_bench_serve.py::test_churn_round[1]",
        "test_bench_serve.py::test_churn_round[4]",
    ),
    # Both medians come from the same run (the backend sweep pins each
    # backend explicitly), so machine speed cancels; the floor asserted in
    # CI is test_numba_speedup_floor's >=5x, this gate guards drift.
    "backend.numba_candidate_profits_speedup": (
        "test_bench_proposals.py::TestBackendSweep::test_batch_profits[numpy]",
        "test_bench_proposals.py::TestBackendSweep::test_batch_profits[numba]",
    ),
}


def _short_name(fullname: str) -> str:
    """Stable short key for a tracked benchmark (strip the .py path)."""
    module, _, rest = fullname.partition("::")
    return f"{Path(module).stem.removeprefix('test_bench_')}::{rest}"


def load_record(bench_path: Path) -> dict[str, Any]:
    """Distil one pytest-benchmark JSON document into a ledger record."""
    doc = json.loads(bench_path.read_text(encoding="utf-8"))
    by_suffix: dict[str, float] = {}
    extras: dict[str, float] = {}
    for bench in doc.get("benchmarks", []):
        fullname = bench.get("fullname", "")
        median = bench.get("stats", {}).get("median")
        if median is not None:
            for suffix in TRACKED:
                if fullname.endswith(suffix):
                    by_suffix[suffix] = float(median)
        info = bench.get("extra_info", {}) or {}
        for name, (suffix, key) in EXTRAS.items():
            if fullname.endswith(suffix) and key in info:
                extras[name] = float(info[key])
    medians = {_short_name(s): m for s, m in sorted(by_suffix.items())}
    ratios = {}
    for name, (num, den) in sorted(RATIOS.items()):
        if num in by_suffix and den in by_suffix and by_suffix[den] > 0:
            ratios[name] = by_suffix[num] / by_suffix[den]
    # Extras gate exactly like derived ratios: machine-independent,
    # regression = the quantity shrinking.
    ratios.update(sorted(extras.items()))
    machine = doc.get("machine_info", {}) or {}
    commit = (doc.get("commit_info", {}) or {}).get("id")
    return {
        "schema": SCHEMA,
        "created": doc.get("datetime"),
        "commit": commit,
        # The kernel backend the run executed under (stamped by the
        # benchmarks/conftest.py machine-info hook).  Pre-backend records
        # carry no key and are read as "numpy" everywhere.
        "backend": machine.get("kernel_backend", "numpy"),
        "machine": {
            "node": machine.get("node"),
            "machine": machine.get("machine"),
            "processor": machine.get("processor"),
            "python": machine.get("python_version"),
        },
        "medians": medians,
        "ratios": ratios,
    }


def load_history(path: Path) -> list[dict[str, Any]]:
    if not path.exists():
        return []
    records = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(records, list):
        raise SystemExit(f"{path}: expected a JSON array of records")
    for rec in records:
        if rec.get("schema") != SCHEMA:
            raise SystemExit(
                f"{path}: unknown record schema {rec.get('schema')!r} "
                f"(expected {SCHEMA})"
            )
    return records


def _same_machine(a: dict[str, Any], b: dict[str, Any]) -> bool:
    am, bm = a.get("machine", {}), b.get("machine", {})
    return all(am.get(k) == bm.get(k) for k in ("node", "machine", "processor"))


def _same_backend(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Like-for-like: a numba run never gates against numpy baselines."""
    return a.get("backend", "numpy") == b.get("backend", "numpy")


def _baseline(
    values: list[float], window: int, pick=max
) -> float | None:
    """Conservative rolling baseline over the last ``window`` records.

    ``pick=max`` for wall times (gate against the slowest recent run),
    ``pick=min`` for speedup ratios (gate against the weakest recent
    speedup) — either way, only a regression beyond every recent record
    plus the threshold fails the gate.
    """
    tail = values[-window:]
    return pick(tail) if tail else None


def check(
    record: dict[str, Any],
    history: list[dict[str, Any]],
    *,
    threshold: float,
    window: int,
) -> list[str]:
    """Gate ``record`` against the rolling baseline; return failure lines."""
    failures: list[str] = []
    local = [
        r for r in history
        if _same_machine(r, record) and _same_backend(r, record)
    ]
    if not local:
        print(
            "note: no same-machine/same-backend history — "
            "absolute medians not gated"
        )
    for name, median in record["medians"].items():
        prior = [r["medians"][name] for r in local if name in r.get("medians", {})]
        base = _baseline(prior, window, pick=max)
        if base is None:
            continue
        limit = base * (1.0 + threshold)
        status = "FAIL" if median > limit else "ok"
        print(
            f"  [{status}] {name}: {median * 1e3:.3f} ms "
            f"(baseline {base * 1e3:.3f} ms, limit {limit * 1e3:.3f} ms)"
        )
        if median > limit:
            failures.append(
                f"{name}: median {median:.6f}s exceeds baseline "
                f"{base:.6f}s by more than {threshold:.0%}"
            )
    comparable = [r for r in history if _same_backend(r, record)]
    for name, ratio in record["ratios"].items():
        prior = [
            r["ratios"][name]
            for r in comparable
            if name in r.get("ratios", {})
        ]
        base = _baseline(prior, window, pick=min)
        if base is None:
            continue
        floor = base * (1.0 - threshold)
        status = "FAIL" if ratio < floor else "ok"
        print(
            f"  [{status}] {name}: {ratio:.2f}x "
            f"(baseline {base:.2f}x, floor {floor:.2f}x)"
        )
        if ratio < floor:
            failures.append(
                f"{name}: speedup {ratio:.2f}x fell more than "
                f"{threshold:.0%} below baseline {base:.2f}x"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("command", choices=["append", "check"])
    parser.add_argument(
        "--bench", type=Path, default=DEFAULT_BENCH,
        help="pytest-benchmark JSON input (default: benchmarks/results/bench.json)",
    )
    parser.add_argument(
        "--history", type=Path, default=DEFAULT_HISTORY,
        help="ledger path (default: BENCH_history.json at the repo root)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="allowed fractional regression before the gate fails (default 0.20)",
    )
    parser.add_argument(
        "--window", type=int, default=5,
        help="rolling-baseline window: last N comparable records (default 5)",
    )
    args = parser.parse_args(argv)

    if not args.bench.exists():
        raise SystemExit(f"{args.bench}: not found — run `make bench-json` first")
    record = load_record(args.bench)
    if not record["medians"]:
        raise SystemExit(f"{args.bench}: no tracked benchmarks found")
    history = load_history(args.history)

    if args.command == "append":
        history.append(record)
        args.history.write_text(
            json.dumps(history, indent=2) + "\n", encoding="utf-8"
        )
        print(
            f"appended record #{len(history)} "
            f"({len(record['medians'])} medians, {len(record['ratios'])} "
            f"ratios) to {args.history}"
        )
        return 0

    print(
        f"bench gate: {len(record['medians'])} medians / "
        f"{len(record['ratios'])} ratios vs {len(history)} ledger record(s), "
        f"threshold {args.threshold:.0%}"
    )
    failures = check(
        record, history, threshold=args.threshold, window=args.window
    )
    if failures:
        print(f"\nbench gate FAILED ({len(failures)} regression(s)):")
        for line in failures:
            print(f"  - {line}")
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
