"""Ablation benches for the design choices called out in DESIGN.md.

- PUU sort key: the paper's ``delta_i = tau_i/|B_i|`` vs. raw ``tau_i``.
- Best response (DGRN) vs. better response (BRUN) convergence cost.
- Distributed protocol overhead: message-passing simulation vs. the
  in-memory engine on the same instance.
"""

import numpy as np

from repro.algorithms import BRUN, DGRN, MUUN
from repro.core import StrategyProfile
from repro.distributed import DistributedSimulation
from repro.experiments.results import ResultTable

from conftest import save_and_print


def run_puu_sort_ablation(game):
    table = ResultTable()
    for sort_key in ("delta", "tau"):
        slots = []
        for seed in range(6):
            initial = StrategyProfile.random(game, np.random.default_rng(seed))
            res = MUUN(seed=seed, sort_key=sort_key).run(game, initial=initial)
            assert res.is_nash
            slots.append(res.decision_slots)
        table.append(sort_key=sort_key, mean_slots=float(np.mean(slots)))
    return table


def run_response_mode_ablation(game):
    table = ResultTable()
    for name, cls in (("best(DGRN)", DGRN), ("better(BRUN)", BRUN)):
        slots = []
        for seed in range(6):
            initial = StrategyProfile.random(game, np.random.default_rng(seed))
            res = cls(seed=seed).run(game, initial=initial)
            slots.append(res.decision_slots)
        table.append(mode=name, mean_slots=float(np.mean(slots)))
    return table


def test_puu_sort_key_ablation(benchmark, small_scenario):
    game = small_scenario.game
    table = benchmark.pedantic(
        lambda: run_puu_sort_ablation(game), rounds=1, iterations=1
    )
    save_and_print("ablation_puu_sort", table)
    assert len(table) == 2  # both variants converge to Nash (asserted inside)


def test_best_vs_better_response(benchmark, small_scenario):
    game = small_scenario.game
    table = benchmark.pedantic(
        lambda: run_response_mode_ablation(game), rounds=1, iterations=1
    )
    save_and_print("ablation_response_mode", table)
    by = {r["mode"]: r["mean_slots"] for r in table}
    # Best response converges in no more slots than better response.
    assert by["best(DGRN)"] <= by["better(BRUN)"] + 1e-9


def run_sync_vs_async(game):
    from repro.algorithms import AsyncBR, BATS

    table = ResultTable()
    for name, factory in (
        ("slotted(BATS)", lambda s: BATS(seed=s)),
        ("async(Poisson)", lambda s: AsyncBR(seed=s)),
    ):
        activations = []
        for seed in range(6):
            initial = StrategyProfile.random(game, np.random.default_rng(seed))
            res = factory(seed).run(game, initial=initial)
            assert res.is_nash
            activations.append(res.decision_slots)
        table.append(mode=name, mean_activations=float(np.mean(activations)))
    return table


def test_slotted_vs_asynchronous_activation(benchmark, small_scenario):
    """Dropping slot synchronization costs only a bounded activation
    overhead (the quiet-window detection) while reaching the same
    equilibria — the deployment argument for AsyncBR."""
    game = small_scenario.game
    table = benchmark.pedantic(
        lambda: run_sync_vs_async(game), rounds=1, iterations=1
    )
    save_and_print("ablation_sync_vs_async", table)
    by = {r["mode"]: r["mean_activations"] for r in table}
    # Same order of magnitude: async pays at most ~4x in activations.
    assert by["async(Poisson)"] <= 4.0 * by["slotted(BATS)"] + 50


def run_coverage_radius_ablation():
    from repro.algorithms import DGRN
    from repro.metrics import average_reward, coverage
    from repro.scenario import ScenarioConfig, build_scenario

    table = ResultTable()
    for radius in (0.2, 0.35, 0.5):
        rewards, covs, tasks_per_route = [], [], []
        for seed in (1, 2, 3):
            sc = build_scenario(
                ScenarioConfig(city="shanghai", n_users=25, n_tasks=50,
                               seed=seed, coverage_radius_km=radius)
            )
            g = sc.game
            tasks_per_route.append(
                np.mean([
                    len(g.covered_tasks(i, j))
                    for i in g.users
                    for j in range(g.num_routes(i))
                ])
            )
            res = DGRN(seed=seed).run(g)
            rewards.append(average_reward(res.profile))
            covs.append(coverage(res.profile))
        table.append(
            radius_km=radius,
            tasks_per_route=float(np.mean(tasks_per_route)),
            average_reward=float(np.mean(rewards)),
            coverage=float(np.mean(covs)),
        )
    return table


def test_coverage_radius_ablation(benchmark):
    """Substrate design choice (DESIGN.md): the route/task coverage radius
    drives task density per route, hence reward magnitudes."""
    table = benchmark.pedantic(run_coverage_radius_ablation, rounds=1,
                               iterations=1)
    save_and_print("ablation_coverage_radius", table)
    rows = sorted(table, key=lambda r: r["radius_km"])
    # Wider coverage -> more tasks per route -> higher rewards.
    assert rows[-1]["tasks_per_route"] > rows[0]["tasks_per_route"]
    assert rows[-1]["average_reward"] > rows[0]["average_reward"]


def test_protocol_vs_engine_overhead(benchmark, small_scenario):
    game = small_scenario.game

    def run_both():
        proto = DistributedSimulation(game, scheduler="suu", seed=3).run()
        engine = DGRN(seed=3).run(game)
        return proto, engine

    proto, engine = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = ResultTable()
    table.append(
        implementation="protocol",
        decision_slots=proto.decision_slots,
        messages=proto.total_messages,
    )
    table.append(
        implementation="engine",
        decision_slots=engine.decision_slots,
        messages=0,
    )
    save_and_print("ablation_protocol_overhead", table)
    assert proto.converged and engine.converged
