"""Bench for Table 5: influence of one user's alpha/beta/gamma.

Paper shape: the swept user's reward rises with alpha; its detour falls
with beta; its congestion falls with gamma.  Trends are compared between
the low (0.1-0.2) and high (0.7-0.8) ends of the sweep.
"""

from repro.experiments import run_experiment

from conftest import save_and_print


def run():
    return run_experiment("table5", repetitions=12, seed=0)


def _ends(table, weight, metric):
    rows = [r for r in table if r["weight"] == weight]
    rows.sort(key=lambda r: r["value"])
    low = (rows[0][metric] + rows[1][metric]) / 2
    high = (rows[-1][metric] + rows[-2][metric]) / 2
    return low, high


def test_table5_user_weights(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("table5", table)
    low, high = _ends(table, "alpha", "reward_mean")
    assert high >= low - 1e-9  # reward rises with alpha
    low, high = _ends(table, "beta", "detour_mean")
    assert high <= low + 1e-9  # detour falls with beta
    low, high = _ends(table, "gamma", "congestion_mean")
    assert high <= low + 1e-9  # congestion falls with gamma
