"""Micro-benchmarks for the hot paths of the game core and substrates.

These quantify the design choices DESIGN.md calls out:

- incremental potential delta vs. full re-evaluation (O(route) vs. O(L));
- best-response evaluation (candidate_profits) cost;
- PUU's greedy disjoint selection;
- CORN's branch-and-bound vs. exhaustive enumeration;
- route recommendation (penalty method vs. Yen's KSP);
- full scenario construction.
"""

import numpy as np
import pytest

from repro.algorithms import CORN, DGRN, MUUN, exhaustive_optimum
from repro.algorithms.muun import puu_select
from repro.core import StrategyProfile, potential
from repro.core.potential import potential_delta
from repro.core.profit import all_profits, candidate_profits
from repro.core.responses import UpdateProposal
from repro.network.ksp import k_shortest_paths
from repro.network.routing import RoutePlanner
from repro.scenario import ScenarioConfig, build_scenario


@pytest.fixture(scope="module")
def game(small_scenario):
    return small_scenario.game


@pytest.fixture(scope="module")
def profile(game):
    return StrategyProfile.random(game, np.random.default_rng(0))


class TestCoreOps:
    def test_candidate_profits(self, benchmark, game, profile):
        benchmark(candidate_profits, profile, 0)

    def test_all_profits(self, benchmark, profile):
        benchmark(all_profits, profile)

    def test_potential_full(self, benchmark, profile):
        benchmark(potential, profile)

    def test_potential_delta_incremental(self, benchmark, game, profile):
        j = (profile.route_of(0) + 1) % game.num_routes(0)
        benchmark(potential_delta, profile, 0, j)

    def test_profile_move(self, benchmark, game, profile):
        p = profile.copy()
        j0 = p.route_of(0)
        j1 = (j0 + 1) % game.num_routes(0)

        def flip():
            p.move(0, j1)
            p.move(0, j0)

        benchmark(flip)


class TestSchedulers:
    def test_puu_select_100_requests(self, benchmark):
        rng = np.random.default_rng(0)
        props = [
            UpdateProposal(
                user=i,
                new_route=0,
                gain=float(rng.uniform(0.1, 5.0)),
                tau=float(rng.uniform(0.1, 5.0)),
                touched_tasks=frozenset(
                    int(t) for t in rng.choice(60, size=rng.integers(1, 6),
                                               replace=False)
                ),
            )
            for i in range(100)
        ]
        benchmark(puu_select, props)


class TestDynamicsEndToEnd:
    def test_dgrn_full_run(self, benchmark, game):
        benchmark.pedantic(
            lambda: DGRN(seed=1).run(game), rounds=3, iterations=1
        )

    def test_muun_full_run(self, benchmark, game):
        benchmark.pedantic(
            lambda: MUUN(seed=1).run(game), rounds=3, iterations=1
        )


class TestCorn:
    @pytest.fixture(scope="class")
    def small_game(self):
        return build_scenario(
            ScenarioConfig(city="shanghai", n_users=8, n_tasks=20, seed=5)
        ).game

    def test_corn_branch_and_bound(self, benchmark, small_game):
        benchmark.pedantic(
            lambda: CORN(seed=0).run(small_game), rounds=3, iterations=1
        )

    def test_exhaustive_baseline(self, benchmark, small_game):
        benchmark.pedantic(
            lambda: exhaustive_optimum(small_game), rounds=1, iterations=1
        )


class TestRouting:
    def test_penalty_alternatives(self, benchmark, small_scenario):
        net = small_scenario.network
        planner = RoutePlanner(net, method="penalty")
        o, d = small_scenario.od_pairs[0]
        benchmark(planner.recommend, o, d, 5)

    def test_yen_ksp(self, benchmark, small_scenario):
        net = small_scenario.network
        o, d = small_scenario.od_pairs[0]
        benchmark(k_shortest_paths, net, o, d, 5)


class TestScenarioBuild:
    def test_full_pipeline(self, benchmark):
        benchmark.pedantic(
            lambda: build_scenario(
                ScenarioConfig(city="roma", n_users=20, n_tasks=50, seed=9)
            ),
            rounds=3,
            iterations=1,
        )
