"""Bench for Figure 5: decision slots vs. task number.

Paper shape: same algorithm ordering as Fig. 4; slot counts rise mildly
with the task count (denser coverage couples users).
"""

from repro.experiments import run_experiment

from conftest import save_and_print

TASK_COUNTS = (20, 60, 100)


def run():
    return run_experiment(
        "fig5",
        repetitions=5,
        seed=0,
        cities=("shanghai", "roma", "epfl"),
        task_counts=TASK_COUNTS,
    )


def test_fig5_slots_vs_tasks(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig5", table)

    def total(algo):
        return sum(
            r["decision_slots_mean"] for r in table if r["algorithm"] == algo
        )

    assert total("MUUN") <= total("DGRN") <= total("BATS")
    assert total("BUAU") <= total("BRUN")
    # Mild growth with task count for the paper's own algorithm.
    dgrn = {
        n: sum(
            r["decision_slots_mean"]
            for r in table
            if r["algorithm"] == "DGRN" and r["n_tasks"] == n
        )
        for n in TASK_COUNTS
    }
    assert dgrn[TASK_COUNTS[-1] ] >= dgrn[TASK_COUNTS[0]] * 0.8
