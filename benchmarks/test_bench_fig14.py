"""Bench for the extension experiment: reward-curvature (mu) ablation.

Expected shape: the log bonus (mu > 0) softens the sharing externality, so
the equilibrium total profit with mu = 1 is no lower than with mu = 0.
"""

from repro.experiments import run_experiment

from conftest import save_and_print


def run():
    return run_experiment(
        "fig14", repetitions=8, seed=0, mu_values=(0.0, 0.5, 1.0)
    )


def test_fig14_mu_ablation(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig14", table)
    by_mu = {r["mu"]: r for r in table}
    assert by_mu[1.0]["total_profit_mean"] >= by_mu[0.0]["total_profit_mean"] - 1e-9
    for r in table:
        assert 0.0 <= r["overlap_ratio_mean"] <= 1.0
