"""Serving-capacity curve: users/s and peak RSS across instance sizes.

Drives the sharded serving layer over synthetic spatially-local instances
of increasing population (10k -> 100k -> 1M users; the million-user point
is opt-in via ``--full``) and a sweep of shard counts, and reports

- **build seconds** — compiling the instance + session,
- **converge seconds / rounds** — initial convergence to global Nash,
- **users/s** — churn events absorbed per wall second during a scripted
  churn phase (joins + leaves, each including the shard rebuild, sync,
  and incremental re-convergence),
- **peak RSS** — ``ru_maxrss`` after the run (monotonic across the
  process, so sweep sizes ascending),
- **payload bytes/epoch** — per-epoch pipe traffic when a worker pool is
  attached (``--processes``), the quantity the zero-copy spec transport
  collapses.

Modes:

    python benchmarks/capacity.py                    # default curve
    python benchmarks/capacity.py --smoke            # CI: 10k users, K=8,
                                                     #   validate, to Nash
    python benchmarks/capacity.py --record           # append the curve to
                                                     #   BENCH_history.json
    python benchmarks/capacity.py --full             # include 1M users

Records appended by ``--record`` reuse the ``repro.bench_history/v1``
schema with an extra ``capacity`` payload (empty ``medians``/``ratios``),
so ``bench_history.py check`` keeps working against the same ledger.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from pathlib import Path

from bench_history import DEFAULT_HISTORY, SCHEMA, load_history

SEED = 7
LOCALITY = 0.95
CHURN_RATE = 16.0
CHURN_ROUNDS = 5
#: tasks scale sublinearly with users, mirroring a city's fixed sensing grid.
TASKS_PER_SIZE = {10_000: 600, 100_000: 2_000, 1_000_000: 6_000}


def _rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_point(
    users: int,
    shards: int,
    *,
    validate: bool = False,
    processes: int | None = None,
    pipeline: bool = False,
    backend: str | None = None,
    churn_rounds: int = CHURN_ROUNDS,
) -> dict:
    """One (size, K) measurement: build, converge, churn, account."""
    from repro.serve.churn import ChurnSchedule, synthetic_serve_instance
    from repro.serve.session import ServeSession

    n_tasks = TASKS_PER_SIZE.get(users, max(600, users // 160))
    t0 = time.perf_counter()
    tasks, platform, records, partition, factory = synthetic_serve_instance(
        users, n_tasks, shards, locality=LOCALITY, seed=SEED
    )
    sess = ServeSession(
        tasks=tasks, platform=platform, records=records, partition=partition,
        scheduler="puu", seed=SEED, validate=validate,
        processes=processes, pipeline=pipeline, backend=backend,
    )
    t1 = time.perf_counter()
    reports = sess.run_to_convergence(max_rounds=1000)
    t2 = time.perf_counter()
    nash_at_convergence = sess.is_nash()

    schedule = ChurnSchedule(rate=CHURN_RATE, seed=SEED + 1)
    events = 0
    for _ in range(churn_rounds):
        joins, leaves = schedule.next_round(sorted(sess.records))
        for uid in leaves:
            sess.leave(uid)
        for _ in range(joins):
            sess.join(factory(sess.next_user_id()))
        events += joins + len(leaves)
        sess.run_round()
    t3 = time.perf_counter()

    from repro.core.backend import current_backend

    point = {
        "users": users,
        "tasks": n_tasks,
        "shards": shards,
        "processes": processes,
        "backend": backend or current_backend().name,
        "pipeline": bool(pipeline and sess.pipeline),
        "build_seconds": round(t1 - t0, 3),
        "converge_seconds": round(t2 - t1, 3),
        "converge_rounds": len(reports),
        "is_nash": nash_at_convergence,
        "churn_events": events,
        "churn_seconds": round(t3 - t2, 3),
        "users_per_second": round(events / (t3 - t2), 1) if t3 > t2 else None,
        "rss_mb": round(_rss_mb(), 1),
        "violations": len(sess.violations),
    }
    if sess._pool is not None:
        epochs = sess._pool.cache_hits + sess._pool.cache_misses
        point["payload_bytes_total"] = sess._pool.payload_bytes
        point["payload_bytes_per_epoch"] = (
            round(sess._pool.payload_bytes / epochs) if epochs else None
        )
        point["spec_bytes_shipped"] = sess._pool.spec_bytes_shipped
        point["worker_cache_hits"] = sess._pool.cache_hits
        point["worker_cache_misses"] = sess._pool.cache_misses
    if validate:
        sess.raise_if_violations()
    sess.close()
    return point


def smoke() -> int:
    """CI gate: 10k users, K=8, full validation, must reach global Nash."""
    point = run_point(10_000, 8, validate=True)
    print(json.dumps(point, indent=2))
    ok = point["is_nash"] and point["violations"] == 0
    print(f"capacity smoke: {'ok' if ok else 'FAIL'}")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: 10k users, K=8, validate, to Nash")
    parser.add_argument("--full", action="store_true",
                        help="include the 1M-user point (minutes + GBs)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated user counts (overrides defaults)")
    parser.add_argument("--shards", default="1,4,8",
                        help="comma-separated shard counts (default 1,4,8)")
    parser.add_argument("--processes", type=int, default=None,
                        help="attach a worker pool of this size")
    parser.add_argument("--pipeline", action="store_true",
                        help="overlap worker epochs with the boundary pass")
    parser.add_argument("--validate", action="store_true",
                        help="check cross-shard invariants at every sync")
    parser.add_argument("--backend", default=None,
                        choices=["numpy", "numba", "cupy"],
                        help="kernel backend for shard engines and workers")
    parser.add_argument("--churn-rounds", type=int, default=CHURN_ROUNDS)
    parser.add_argument("--record", action="store_true",
                        help="append the curve to BENCH_history.json")
    parser.add_argument("--history", type=Path, default=DEFAULT_HISTORY)
    args = parser.parse_args(argv)

    if args.smoke:
        return smoke()

    if args.sizes:
        sizes = [int(s) for s in args.sizes.split(",")]
    else:
        sizes = [10_000, 100_000] + ([1_000_000] if args.full else [])
    shard_counts = [int(k) for k in args.shards.split(",")]

    points = []
    for users in sorted(sizes):  # ascending: ru_maxrss is monotonic
        for k in shard_counts:
            point = run_point(
                users, k, validate=args.validate, processes=args.processes,
                pipeline=args.pipeline, backend=args.backend,
                churn_rounds=args.churn_rounds,
            )
            points.append(point)
            print(
                f"  users={users:>9,} K={k:<2} "
                f"{point['users_per_second'] or 0:>8.1f} users/s  "
                f"converge {point['converge_seconds']:>7.1f}s "
                f"({point['converge_rounds']} rounds)  "
                f"rss {point['rss_mb']:>8.1f} MB"
            )

    if args.record:
        import platform

        from repro.core.backend import current_backend

        history = load_history(args.history)
        history.append({
            "schema": SCHEMA,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "kind": "capacity",
            "backend": args.backend or current_backend().name,
            "machine": {"node": platform.node(),
                        "machine": platform.machine(),
                        "processor": platform.processor(),
                        "python": platform.python_version()},
            "medians": {},
            "ratios": {},
            "capacity": points,
        })
        args.history.write_text(
            json.dumps(history, indent=2) + "\n", encoding="utf-8"
        )
        print(f"appended capacity record ({len(points)} points) to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
