"""Bench for Figure 7: total profit vs. user number (DGRN/CORN/RRN).

Paper shape: RRN < DGRN < CORN at every point, DGRN close to CORN.
"""

from repro.experiments import run_experiment

from conftest import save_and_print

USER_COUNTS = (10, 11, 12)


def run():
    return run_experiment(
        "fig7",
        repetitions=3,
        seed=0,
        cities=("shanghai",),
        user_counts=USER_COUNTS,
    )


def test_fig7_total_profit(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig7", table)
    for m in USER_COUNTS:
        by = {
            r["algorithm"]: r["total_profit_mean"]
            for r in table
            if r["n_users"] == m
        }
        assert by["RRN"] <= by["DGRN"] + 1e-9
        assert by["DGRN"] <= by["CORN"] + 1e-9
        # "Close to the optimal solution".
        assert by["DGRN"] / by["CORN"] > 0.7
