"""Bench for Figure 6: potential-function value and total profit vs. slot.

Paper shape: potential monotone non-decreasing to a plateau (Theorem 2);
total profit trends upward but may dip (users optimize selfishly).
"""

from repro.experiments import run_experiment

from conftest import save_and_print


def run():
    return run_experiment("fig6", repetitions=1, seed=0)


def test_fig6_potential_and_profit(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig6", table)
    for city in ("shanghai", "roma", "epfl"):
        rows = sorted(
            (r for r in table if r["city"] == city), key=lambda r: r["slot"]
        )
        pots = [r["potential"] for r in rows]
        profits = [r["total_profit"] for r in rows]
        # Potential: monotone non-decreasing, strictly above start at end.
        assert all(b >= a - 1e-9 for a, b in zip(pots, pots[1:]))
        assert pots[-1] >= pots[0]
        # Total profit improves overall even if not monotonically.
        assert profits[-1] >= profits[0]
