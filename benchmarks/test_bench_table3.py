"""Bench for Table 3: PUU's selected-user count vs. overlap ratio.

Paper shape: sweeping the task count from 50 to 90, PUU's average
selected-user count per slot *falls* (the paper's 2.01 -> 1.70 trend).
The overlap-ratio column is reported for comparison; see EXPERIMENTS.md
for why its direction differs on the synthetic substrate.
"""

import numpy as np

from repro.experiments import run_experiment

from conftest import save_and_print


def run():
    return run_experiment("table3", repetitions=15, seed=0)


def test_table3_overlap_vs_selected(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("table3", table)
    overlap = np.array([r["overlap_ratio_mean"] for r in table])
    selected = np.array([r["selected_users_mean"] for r in table])
    assert np.all(selected >= 1.0)  # PUU always grants someone
    assert np.all((overlap >= 0) & (overlap <= 1))
    # The paper's actionable trend: fewer parallel grants at higher task
    # counts (denser coverage -> more conflicting B_i sets).
    assert selected[-1] < selected[0]
