"""Shared helpers for the benchmark harness.

Every paper table/figure has one bench module.  Each bench runs a reduced-
scale version of the corresponding experiment (the full-scale protocol is
``repro-experiments <key> --repetitions 500``), prints the rows/series the
paper reports, writes them under ``benchmarks/results/``, and asserts the
paper's qualitative *shape* (orderings, monotonicity, bounds).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.results import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"


def save_and_print(key: str, table: ResultTable) -> None:
    """Persist a bench's result table and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    table.to_csv(str(RESULTS_DIR / f"{key}.csv"))
    print(f"\n== {key} ==")
    print(table.to_markdown())


@pytest.fixture(scope="session")
def small_scenario():
    """A shared mid-size instance for micro-benchmarks."""
    from repro.scenario import ScenarioConfig, build_scenario

    return build_scenario(
        ScenarioConfig(city="shanghai", n_users=30, n_tasks=60, seed=404)
    )
