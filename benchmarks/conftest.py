"""Shared helpers for the benchmark harness.

Every paper table/figure has one bench module.  Each bench runs a reduced-
scale version of the corresponding experiment (the full-scale protocol is
``repro-experiments <key> --repetitions 500``), prints the rows/series the
paper reports, writes them under ``benchmarks/results/``, and asserts the
paper's qualitative *shape* (orderings, monotonicity, bounds).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.results import ResultTable

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def kernel_backend():
    """Warm the session's kernel backend before any timer starts.

    Compiled backends (numba) pay a one-off JIT cost on first call; doing
    it here keeps that cost out of every benchmark's first round.  The
    resolved backend is returned so benches can tag their results.
    """
    from repro.core.backend import current_backend

    backend = current_backend()
    backend.warmup()
    return backend


def pytest_benchmark_update_machine_info(config, machine_info):
    """Stamp the active kernel backend into the pytest-benchmark document.

    ``bench_history.py`` reads this to keep its ledger like-for-like: a
    numba run's medians are never gated against numpy baselines.
    """
    from repro.core.backend import current_backend

    machine_info["kernel_backend"] = current_backend().name


def save_and_print(key: str, table: ResultTable) -> None:
    """Persist a bench's result table and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    table.to_csv(str(RESULTS_DIR / f"{key}.csv"))
    print(f"\n== {key} ==")
    print(table.to_markdown())


@pytest.fixture(scope="session")
def small_scenario():
    """A shared mid-size instance for micro-benchmarks."""
    from repro.scenario import ScenarioConfig, build_scenario

    return build_scenario(
        ScenarioConfig(city="shanghai", n_users=30, n_tasks=60, seed=404)
    )
