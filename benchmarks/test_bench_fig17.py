"""Bench for the extension experiment: equilibrium-selection spread.

Expected shape: few distinct equilibria per instance, all within a narrow
quality band below the CORN optimum.
"""

from repro.experiments import run_experiment
from repro.experiments.fig17_equilibrium_spread import summarize

from conftest import save_and_print


def run():
    return run_experiment("fig17", repetitions=4, seed=0)


def test_fig17_equilibrium_spread(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    digest = summarize(table)
    save_and_print("fig17", digest)
    row = digest[0]
    assert row["instances"] == 4
    assert row["ratio_mean_mean"] > 0.7  # equilibria stay near-optimal
    assert row["ratio_spread_mean"] < 0.4  # and tightly clustered
    assert row["distinct_equilibria_mean"] >= 1.0
