"""Benchmarks for the batched proposal engine (perf trajectory).

The same dense synthetic instance as ``test_bench_kernels.py`` (500 users,
12 routes each, 400 tasks) drives the *slot-level* pipeline the allocators
run per decision slot: one full best-response sweep over every user plus
PUU conflict resolution (Algorithm 3).  Two implementations race:

- **scalar** — the pre-batch loop: one :func:`repro.core.responses.best_update`
  call per user (object proposals, ``frozenset`` touched-task sets) +
  :func:`repro.algorithms.muun.puu_select`'s Python-set scan;
- **batched** — :func:`repro.core.responses.batch_best_updates` (one gather
  + segmented reductions for all 500 users) +
  :func:`repro.algorithms.muun.puu_select_batch`'s occupancy-mask scan.

``test_speedup_floor`` asserts the >=3x end-to-end speedup this PR
promises, with min-of-repeats wall timing.  Results land in
``benchmarks/results/bench.json`` via ``make bench-json``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms.muun import puu_select, puu_select_batch
from repro.core import (
    PlatformWeights,
    RouteNavigationGame,
    StrategyProfile,
    UserWeights,
)
from repro.core.backend import available_backends, get_backend
from repro.core.responses import batch_best_updates, best_update

N_USERS = 500
N_TASKS = 400
N_ROUTES = 12
ROUTE_LEN = 15


@pytest.fixture(scope="module")
def dense_game() -> RouteNavigationGame:
    """Dense synthetic instance: 500 users x 12 routes x 15 tasks/route."""
    rng = np.random.default_rng(7)
    cov = [
        [
            sorted(rng.choice(N_TASKS, size=ROUTE_LEN, replace=False).tolist())
            for _ in range(N_ROUTES)
        ]
        for _ in range(N_USERS)
    ]
    return RouteNavigationGame.from_coverage(
        cov,
        base_rewards=rng.uniform(10, 20, N_TASKS).tolist(),
        reward_increments=rng.uniform(0, 1, N_TASKS).tolist(),
        detours=[[float(rng.uniform(0, 5)) for _ in r] for r in cov],
        congestions=[[float(rng.uniform(0, 5)) for _ in r] for r in cov],
        user_weights=[
            UserWeights(*(float(v) for v in rng.uniform(0.2, 0.9, 3)))
            for _ in range(N_USERS)
        ],
        platform=PlatformWeights(0.5, 0.5),
    )


@pytest.fixture(scope="module")
def dense_profile(dense_game):
    return StrategyProfile.random(dense_game, np.random.default_rng(1))


@pytest.fixture(scope="module")
def all_users(dense_game):
    return np.arange(dense_game.num_users, dtype=np.intp)


def _scalar_sweep(profile, users):
    """The pre-batch per-user loop (object proposals, frozenset B_i)."""
    out = []
    for u in users:
        prop = best_update(profile, int(u), pick="first")
        if prop is not None:
            out.append(prop)
    return out


def _scalar_slot(profile, users):
    """Scalar sweep + Python-set PUU: one pre-batch MUUN slot."""
    return puu_select(_scalar_sweep(profile, users))


def _batched_slot(profile, users):
    """Batched sweep + occupancy-mask PUU: one current MUUN slot."""
    batch = batch_best_updates(profile, users, pick="first")
    return puu_select_batch(batch, profile.game.num_tasks)


class TestProposalSweep:
    def test_sweep_batched(self, benchmark, dense_profile, all_users):
        benchmark(batch_best_updates, dense_profile, all_users, pick="first")

    def test_sweep_scalar_loop(self, benchmark, dense_profile, all_users):
        benchmark(_scalar_sweep, dense_profile, all_users)


class TestPUUSelection:
    def test_puu_batched(self, benchmark, dense_profile, all_users):
        batch = batch_best_updates(dense_profile, all_users, pick="first")
        n = dense_profile.game.num_tasks
        benchmark(puu_select_batch, batch, n)

    def test_puu_scalar_sets(self, benchmark, dense_profile, all_users):
        proposals = batch_best_updates(
            dense_profile, all_users, pick="first"
        ).as_list()
        benchmark(puu_select, proposals)


class TestFullSlot:
    def test_slot_batched(self, benchmark, dense_profile, all_users):
        benchmark(_batched_slot, dense_profile, all_users)

    def test_slot_scalar(self, benchmark, dense_profile, all_users):
        benchmark(_scalar_slot, dense_profile, all_users)


class TestBackendSweep:
    """``batch_candidate_profits`` raced across every installed backend.

    Each parametrized case pins one backend for the call, so a run with
    numba installed produces both ``[numpy]`` and ``[numba]`` medians in
    the same document — the ledger derives a machine-independent speedup
    ratio from the pair (``backend.numba_candidate_profits_speedup``).
    """

    @pytest.mark.parametrize("backend_name", available_backends())
    def test_batch_profits(
        self, benchmark, dense_profile, all_users, backend_name
    ):
        backend = get_backend(backend_name)
        backend.warmup()
        benchmark.extra_info["backend"] = backend_name
        ga = dense_profile.game.arrays
        counts = dense_profile.counts
        choices = np.asarray(dense_profile.choices, dtype=np.intp)
        benchmark(
            backend.batch_candidate_profits, ga, counts, choices, all_users
        )


@pytest.mark.skipif(
    "numba" not in available_backends(), reason="numba backend not installed"
)
def test_numba_speedup_floor(dense_profile, all_users):
    """Numba batch sweep must beat numpy by >=5x on the dense instance.

    Parity within the declared rtol is checked first — a fast wrong
    answer is no speedup.
    """
    ga = dense_profile.game.arrays
    counts = dense_profile.counts
    choices = np.asarray(dense_profile.choices, dtype=np.intp)
    np_b = get_backend("numpy")
    nb_b = get_backend("numba")
    nb_b.warmup()

    ref, _, _ = np_b.batch_candidate_profits(ga, counts, choices, all_users)
    got, _, _ = nb_b.batch_candidate_profits(ga, counts, choices, all_users)
    np.testing.assert_allclose(got, ref, rtol=nb_b.rtol, atol=0)

    t_np = _best_of(np_b.batch_candidate_profits, ga, counts, choices, all_users)
    t_nb = _best_of(nb_b.batch_candidate_profits, ga, counts, choices, all_users)
    print(
        f"\nbatch_candidate_profits: {t_np * 1e3:8.2f}ms numpy -> "
        f"{t_nb * 1e3:8.2f}ms numba ({t_np / t_nb:4.1f}x)"
    )
    assert t_np / t_nb >= 5.0, "numba batch_candidate_profits speedup below 5x"


def _best_of(f, *args, reps: int = 3, passes: int = 5) -> float:
    best = float("inf")
    for _ in range(passes):
        t0 = time.perf_counter()
        for _ in range(reps):
            f(*args)
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def test_speedup_floor(dense_profile, all_users):
    """Batched sweep + PUU must beat the scalar slot loop by >=3x."""
    # Same granted set first — a fast wrong answer is no speedup.
    batch = batch_best_updates(dense_profile, all_users, pick="first")
    granted = puu_select_batch(batch, dense_profile.game.num_tasks)
    oracle = _scalar_slot(dense_profile, all_users)
    assert [int(batch.users[k]) for k in granted] == [p.user for p in oracle]

    scalar = _best_of(_scalar_slot, dense_profile, all_users)
    batched = _best_of(_batched_slot, dense_profile, all_users)
    print(
        f"\nproposal slot: {scalar * 1e3:8.2f}ms scalar -> "
        f"{batched * 1e3:8.2f}ms batched ({scalar / batched:4.1f}x)"
    )
    assert scalar / batched >= 3.0, "batched proposal slot speedup below 3x"
