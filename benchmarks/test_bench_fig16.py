"""Bench for the extension experiment: executed-route operations.

Expected shape: DGRN beats RRN on sensing efficiency (completions per
vehicle-km) and covers at least as many tasks with a first result, while
keeping mean travel time within a modest factor (the detour-cost term
restrains route stretching).
"""

from repro.experiments import run_experiment

from conftest import save_and_print


def run():
    return run_experiment("fig16", repetitions=6, seed=0)


def test_fig16_execution(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig16", table)
    by = {r["algorithm"]: r for r in table}
    assert by["DGRN"]["completions_per_km_mean"] >= by["RRN"][
        "completions_per_km_mean"
    ]
    assert by["DGRN"]["tasks_with_result_mean"] >= by["RRN"][
        "tasks_with_result_mean"
    ] - 1.0
    # Travel times stay in the same regime across algorithms.
    times = [r["mean_travel_time_s_mean"] for r in table]
    assert max(times) <= 3.0 * min(times)
