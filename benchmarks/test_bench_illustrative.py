"""Bench for Figures 1-2: the worked examples as end-to-end runs.

Regenerates the Fig. 1 comparison table (approach, profits, equilibrium?)
and the Fig. 2 platform-steering table.
"""

import numpy as np

from repro.algorithms import BUAU, CORN
from repro.core import (
    PlatformWeights,
    RouteNavigationGame,
    StrategyProfile,
    UserWeights,
    is_nash_equilibrium,
    total_profit,
)
from repro.core.profit import all_profits
from repro.experiments.results import ResultTable
from repro.metrics import average_congestion, average_detour, coverage

from conftest import save_and_print


def fig1_game():
    return RouteNavigationGame.from_coverage(
        [[[1], [0]], [[0]], [[0], [2]]],
        base_rewards=[6.0, 5.0, 1.0],
        reward_increments=0.0,
        platform=PlatformWeights(0.0, 0.0),
    )


def fig2_game(phi, theta):
    return RouteNavigationGame.from_coverage(
        [[[0], [1]], [[0], [1]]],
        base_rewards=[3.0, 3.0],
        reward_increments=0.0,
        detours=[[0.0, 2.0]] * 2,
        congestions=[[3.0, 1.0]] * 2,
        user_weights=[UserWeights(1.0, 1.0, 1.0)] * 2,
        platform=PlatformWeights(phi, theta),
    )


def run_fig1():
    game = fig1_game()
    table = ResultTable()
    solutions = {
        "maximum-profit": [1, 0, 0],
        "distributed-equilibrium": [0, 0, 0],
        "centralized-optimal": [0, 0, 1],
    }
    for name, choices in solutions.items():
        p = StrategyProfile(game, choices)
        profits = all_profits(p)
        table.append(
            approach=name,
            u1=float(profits[0]),
            u2=float(profits[1]),
            u3=float(profits[2]),
            total=total_profit(p),
            equilibrium=is_nash_equilibrium(p),
        )
    # The dynamics and the exact solver land where the paper says.
    assert list(BUAU(seed=0).run(game).profile.choices) == [0, 0, 0]
    assert CORN(seed=0).run(game).total_profit == 12.0
    return table


def run_fig2():
    table = ResultTable()
    for phi, theta in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9)]:
        game = fig2_game(phi, theta)
        profile = BUAU(seed=0).run(game).profile
        table.append(
            phi=phi,
            theta=theta,
            tasks_covered=int(round(coverage(profile) * 2)),
            total_detour=average_detour(profile) * 2,
            total_congestion=average_congestion(profile) * 2,
        )
    return table


def test_fig1_comparison_table(benchmark):
    table = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    save_and_print("fig1", table)
    rows = {r["approach"]: r for r in table}
    assert rows["maximum-profit"]["total"] == 6.0
    assert not rows["maximum-profit"]["equilibrium"]
    assert rows["distributed-equilibrium"]["total"] == 11.0
    assert rows["distributed-equilibrium"]["equilibrium"]
    assert rows["centralized-optimal"]["total"] == 12.0
    assert not rows["centralized-optimal"]["equilibrium"]


def test_fig2_platform_steering(benchmark):
    table = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    save_and_print("fig2", table)
    rows = {(r["phi"], r["theta"]): r for r in table}
    assert rows[(0.1, 0.1)]["tasks_covered"] == 2
    assert rows[(0.9, 0.1)]["total_detour"] == 0.0
    assert rows[(0.1, 0.9)]["total_congestion"] == 2.0
