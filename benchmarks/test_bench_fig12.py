"""Bench for Figure 12: influence of the platform weights phi and theta.

Paper shape (Shanghai): average reward falls as (phi, theta) grow; the
detour distance falls along phi; the congestion level falls along theta.
"""

from repro.experiments import run_experiment

from conftest import save_and_print


def run():
    return run_experiment("fig12", repetitions=8, seed=0)


def test_fig12_platform_weights(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig12", table)
    grid = {(r["phi"], r["theta"]): r for r in table}
    phis = sorted({r["phi"] for r in table})
    thetas = sorted({r["theta"] for r in table})

    # Reward: lowest-cost corner beats highest-cost corner.
    assert (
        grid[(phis[0], thetas[0])]["average_reward_mean"]
        >= grid[(phis[-1], thetas[-1])]["average_reward_mean"] - 1e-9
    )
    # Detour falls along phi (averaged over theta).
    detour_by_phi = [
        sum(grid[(p, t)]["detour_mean"] for t in thetas) / len(thetas)
        for p in phis
    ]
    assert detour_by_phi[-1] < detour_by_phi[0]
    # Congestion falls along theta (averaged over phi).
    cong_by_theta = [
        sum(grid[(p, t)]["congestion_mean"] for p in phis) / len(phis)
        for t in thetas
    ]
    assert cong_by_theta[-1] < cong_by_theta[0]
