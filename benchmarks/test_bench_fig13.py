"""Bench for Figure 13: the map presentation of the selected routes.

Renders the three per-city scenes (SVG written under
``benchmarks/results/``) and reports each shown user's route statistics.
"""

from repro.experiments import run_experiment

from conftest import RESULTS_DIR, save_and_print


def run():
    RESULTS_DIR.mkdir(exist_ok=True)
    return run_experiment("fig13", seed=0, out_dir=RESULTS_DIR)


def test_fig13_presentation(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig13", table)
    assert len(table) == 6  # 2 users x 3 cities
    for city in ("shanghai", "roma", "epfl"):
        assert (RESULTS_DIR / f"fig13_{city}.svg").exists()
    for r in table:
        assert 1 <= r["n_recommended"] <= 5
        assert 0 <= r["selected_route"] < r["n_recommended"]
        assert r["reward"] >= 0.0
