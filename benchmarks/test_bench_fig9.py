"""Bench for Figure 9: average reward vs. task number (DGRN/BATS/RRN).

Paper shape: reward grows with the task count; RRN < BATS <= DGRN.
"""

from repro.experiments import run_experiment

from conftest import save_and_print

TASK_COUNTS = (20, 60, 100)


def run():
    return run_experiment(
        "fig9",
        repetitions=5,
        seed=0,
        cities=("shanghai", "roma", "epfl"),
        task_counts=TASK_COUNTS,
    )


def test_fig9_average_reward(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig9", table)

    def total(algo):
        return sum(r["average_reward_mean"] for r in table if r["algorithm"] == algo)

    assert total("RRN") <= total("BATS") + 1e-9
    assert total("BATS") <= total("DGRN") + 1e-9
    for algo in ("DGRN", "BATS", "RRN"):
        by_n = {
            n: sum(
                r["average_reward_mean"]
                for r in table
                if r["algorithm"] == algo and r["n_tasks"] == n
            )
            for n in TASK_COUNTS
        }
        assert by_n[100] > by_n[20]
