"""Bench for Figure 11: average-reward surface over tasks x users.

Paper shape: reward increases along the task axis and decreases along the
user axis.
"""

from repro.experiments import run_experiment

from conftest import save_and_print

TASKS = (20, 100, 200)
USERS = (20, 60, 100)


def run():
    return run_experiment(
        "fig11",
        repetitions=3,
        seed=0,
        cities=("shanghai",),
        task_counts=TASKS,
        user_counts=USERS,
    )


def test_fig11_surface(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig11", table)
    grid = {
        (r["n_tasks"], r["n_users"]): r["average_reward_mean"] for r in table
    }
    # Increasing in tasks at every user level.
    for m in USERS:
        assert grid[(TASKS[-1], m)] > grid[(TASKS[0], m)]
    # Decreasing in users at every task level.
    for n in TASKS:
        assert grid[(n, USERS[-1])] < grid[(n, USERS[0])]
