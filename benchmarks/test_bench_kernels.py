"""Micro-benchmarks for the flat CSR game kernels (perf trajectory).

One dense synthetic instance (500 users, 12 routes each, 400 tasks) drives
four benchmark groups that land in ``benchmarks/results/bench.json`` via
``make bench-json``:

- ``candidate_profits`` — vectorized CSR kernel vs. the retained scalar
  reference (:mod:`repro.core.reference`);
- ``potential_delta`` — sorted-segment ``setdiff1d`` vs. Python sets;
- ``all_profits`` — one gather + segmented reduction vs. the per-user loop;
- a full DGRN run to Nash equilibrium on the same instance.

``test_speedup_floor`` asserts the >=3x kernel speedup the refactor
promises, using min-of-repeats wall timing (robust to scheduler noise).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.algorithms import DGRN
from repro.algorithms.base import RunConfig
from repro.core import (
    PlatformWeights,
    RouteNavigationGame,
    StrategyProfile,
    UserWeights,
)
from repro.core.potential import potential_delta
from repro.core.profit import all_profits, candidate_profits
from repro.core.reference import (
    all_profits_reference,
    candidate_profits_reference,
    potential_delta_reference,
)

N_USERS = 500
N_TASKS = 400
N_ROUTES = 12
ROUTE_LEN = 15


@pytest.fixture(scope="module")
def dense_game() -> RouteNavigationGame:
    """Dense synthetic instance: 500 users x 12 routes x 15 tasks/route."""
    rng = np.random.default_rng(7)
    cov = [
        [
            sorted(rng.choice(N_TASKS, size=ROUTE_LEN, replace=False).tolist())
            for _ in range(N_ROUTES)
        ]
        for _ in range(N_USERS)
    ]
    return RouteNavigationGame.from_coverage(
        cov,
        base_rewards=rng.uniform(10, 20, N_TASKS).tolist(),
        reward_increments=rng.uniform(0, 1, N_TASKS).tolist(),
        detours=[[float(rng.uniform(0, 5)) for _ in r] for r in cov],
        congestions=[[float(rng.uniform(0, 5)) for _ in r] for r in cov],
        user_weights=[
            UserWeights(*(float(v) for v in rng.uniform(0.2, 0.9, 3)))
            for _ in range(N_USERS)
        ],
        platform=PlatformWeights(0.5, 0.5),
    )


@pytest.fixture(scope="module")
def dense_profile(dense_game):
    return StrategyProfile.random(dense_game, np.random.default_rng(1))


class TestKernels:
    def test_candidate_profits_csr(self, benchmark, dense_profile):
        benchmark(candidate_profits, dense_profile, 0)

    def test_candidate_profits_scalar_reference(self, benchmark, dense_profile):
        benchmark(candidate_profits_reference, dense_profile, 0)

    def test_potential_delta_csr(self, benchmark, dense_profile):
        benchmark(potential_delta, dense_profile, 0, 1)

    def test_potential_delta_scalar_reference(self, benchmark, dense_profile):
        benchmark(potential_delta_reference, dense_profile, 0, 1)

    def test_all_profits_csr(self, benchmark, dense_profile):
        benchmark(all_profits, dense_profile)

    def test_all_profits_scalar_reference(self, benchmark, dense_profile):
        benchmark(all_profits_reference, dense_profile)

    def test_profile_recount(self, benchmark, dense_profile):
        benchmark(dense_profile._recount)


class TestFullRun:
    def test_dgrn_dense_500_users(self, benchmark, dense_game):
        """Full best-response dynamics to Nash on the dense instance."""

        def run():
            return DGRN(
                seed=0, config=RunConfig(record_history=False)
            ).run(dense_game)

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        assert result.converged
        assert result.profile.game is dense_game


def _best_of(f, *args, reps: int = 100, passes: int = 5) -> float:
    best = float("inf")
    for _ in range(passes):
        t0 = time.perf_counter()
        for _ in range(reps):
            f(*args)
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def test_speedup_floor(dense_profile):
    """The CSR kernels must beat the scalar references by >=3x (dense case)."""
    pairs = {
        "candidate_profits": (
            _best_of(candidate_profits_reference, dense_profile, 0),
            _best_of(candidate_profits, dense_profile, 0),
        ),
        "potential_delta": (
            _best_of(potential_delta_reference, dense_profile, 0, 1),
            _best_of(potential_delta, dense_profile, 0, 1),
        ),
        "all_profits": (
            _best_of(all_profits_reference, dense_profile, reps=20),
            _best_of(all_profits, dense_profile, reps=20),
        ),
    }
    print()
    for name, (scalar, csr) in pairs.items():
        print(
            f"{name}: {scalar * 1e6:8.1f}us scalar -> {csr * 1e6:8.1f}us csr "
            f"({scalar / csr:4.1f}x)"
        )
    for name, (scalar, csr) in pairs.items():
        assert scalar / csr >= 3.0, f"{name} speedup below 3x"
