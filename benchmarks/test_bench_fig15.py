"""Bench for the extension experiment: telemetry-loss robustness.

Expected shape: with reliable delivery every run terminates at a true
Nash equilibrium (gap 0); as the drop probability grows the protocol
still terminates but the residual epsilon-Nash gap and the nash-fraction
degrade gracefully.
"""

from repro.experiments import run_experiment

from conftest import save_and_print


def run():
    return run_experiment("fig15", repetitions=5, seed=0)


def test_fig15_lossy_protocol(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig15", table)
    by_p = {r["drop_prob"]: r for r in table}
    assert by_p[0.0]["is_nash_mean"] == 1.0
    assert by_p[0.0]["epsilon_gap_mean"] <= 1e-9
    # Degradation is monotone-ish: the largest drop rate can't beat the
    # reliable baseline on equilibrium quality.
    assert by_p[0.5]["is_nash_mean"] <= by_p[0.0]["is_nash_mean"]
    assert by_p[0.5]["epsilon_gap_mean"] >= -1e-12
    # Every configuration terminated within the slot cap on average.
    for r in table:
        assert r["terminated_mean"] > 0.0
