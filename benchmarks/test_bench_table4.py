"""Bench for Table 4: DGRN vs. CORN total profit, ratio, and PoA bound.

Paper shape: ratio stays high (close to 1) and always dominates the
Price-of-Anarchy lower bound.
"""

from repro.experiments import run_experiment

from conftest import save_and_print

USER_COUNTS = (9, 10, 11, 12)


def run():
    return run_experiment(
        "table4", repetitions=3, seed=0, user_counts=USER_COUNTS
    )


def test_table4_ratio_vs_bound(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("table4", table)
    for r in table:
        assert r["dgrn_profit_mean"] <= r["corn_profit_mean"] + 1e-9
        assert r["ratio_mean"] <= 1.0 + 1e-9
        # The measured NE/OPT ratio dominates the theoretical bound.
        assert r["ratio_mean"] >= r["poa_bound_mean"] - 1e-9
        # "Close to the optimal solution".
        assert r["ratio_mean"] > 0.7
