"""Capacity benchmark for the sharded serving layer (docs/serving.md).

The dense 500-user spatially-local instance
(:func:`repro.serve.churn.synthetic_serve_instance`) absorbs an identical
churn script — same tasks, same initial users, same join/leave sequence —
through :class:`~repro.serve.ServeSession`s at K = 1, 2, 4 shards.  The
headline metric is **users per second**: churn events (joins + leaves,
each including the shard rebuild, sync, and incremental re-convergence)
absorbed per wall second.

Sharding pays here because churn work is shard-local: a join rebuilds and
re-converges one region's sub-game (O(n/K) users) instead of the whole
instance, and spatial locality keeps the sequential boundary pass short.

``test_capacity_floor`` asserts the >=2x sustained users-per-second at
K=4 vs K=1 this PR promises, with min-of-repeats wall timing.  Results
land in ``benchmarks/results/bench.json`` via ``make bench-json``.
"""

from __future__ import annotations

import time

import pytest

from repro.serve.churn import ChurnSchedule, synthetic_serve_instance
from repro.serve.session import ServeSession

N_USERS = 500
N_TASKS = 120
CHURN_ROUNDS = 10
CHURN_RATE = 8.0
LOCALITY = 0.95
SEED = 7


def _make_session(num_shards: int, **kwargs):
    """A converged session over the dense localized instance + its churn feed."""
    tasks, platform, records, partition, factory = synthetic_serve_instance(
        N_USERS, N_TASKS, num_shards, locality=LOCALITY, seed=SEED
    )
    sess = ServeSession(
        tasks=tasks,
        platform=platform,
        records=records,
        partition=partition,
        scheduler="puu",
        seed=SEED,
        **kwargs,
    )
    sess.run_to_convergence()
    return sess, factory


def _churn_phase(sess: ServeSession, factory, schedule: ChurnSchedule) -> int:
    """Drive CHURN_ROUNDS of joins/leaves + rounds; returns events absorbed."""
    events = 0
    for _ in range(CHURN_ROUNDS):
        joins, leaves = schedule.next_round(sorted(sess.records))
        for uid in leaves:
            sess.leave(uid)
        for _ in range(joins):
            sess.join(factory(sess.next_user_id()))
        events += joins + len(leaves)
        sess.run_round()
    return events


def _sustained_users_per_second(num_shards: int, passes: int = 3) -> float:
    """Best-of-passes churn throughput; fresh session per pass."""
    best = 0.0
    for p in range(passes):
        sess, factory = _make_session(num_shards)
        schedule = ChurnSchedule(rate=CHURN_RATE, seed=SEED + 1)
        t0 = time.perf_counter()
        events = _churn_phase(sess, factory, schedule)
        seconds = time.perf_counter() - t0
        sess.close()
        best = max(best, events / seconds)
    return best


@pytest.mark.parametrize("num_shards", [1, 2, 4])
def test_churn_round(benchmark, num_shards):
    """One churn-driven serving round at each shard count."""
    sess, factory = _make_session(num_shards)
    schedule = ChurnSchedule(rate=CHURN_RATE, seed=SEED + 1)

    def one_round():
        joins, leaves = schedule.next_round(sorted(sess.records))
        for uid in leaves:
            sess.leave(uid)
        for _ in range(joins):
            sess.join(factory(sess.next_user_id()))
        sess.run_round()

    benchmark(one_round)
    sess.close()


@pytest.mark.parametrize(
    "pipeline", [False, True], ids=["plain", "pipelined"]
)
def test_pooled_churn_round(benchmark, pipeline):
    """One pooled churn round at K=4 over the zero-copy spec transport.

    The pipelined variant overlaps worker epochs with the dispatcher's
    boundary pass; on multi-core hosts it should run at or below the
    plain pooled time (tracked in the bench ledger, not hard-gated here —
    single-core CI runners cannot show the overlap win).
    """
    sess, factory = _make_session(4, processes=4, pipeline=pipeline)
    schedule = ChurnSchedule(rate=CHURN_RATE, seed=SEED + 1)

    def one_round():
        joins, leaves = schedule.next_round(sorted(sess.records))
        for uid in leaves:
            sess.leave(uid)
        for _ in range(joins):
            sess.join(factory(sess.next_user_id()))
        sess.run_round()

    benchmark(one_round)
    assert sess.pipeline is pipeline
    sess.close()


def test_epoch_payload_shrink(benchmark):
    """Steady-state epochs must ship state only — no GameArrays buffers.

    Compares the legacy transport (full spec pickled per epoch) against
    the zero-copy path's actual pipe traffic on the dense K=4 instance.
    The >=10x floor is this PR's acceptance criterion; the measured ratio
    also lands in the bench ledger (``serve.payload_shrink``) where the
    history gate tracks it machine-independently — byte counts don't
    depend on clock speed.
    """
    import pickle

    sess, _ = _make_session(4, processes=4)
    assert sess._pool is not None and sess._pool._store is not None
    sess.run_round()  # warm the worker spec caches
    legacy = sum(
        len(pickle.dumps((e.spec, e.export_state()),
                         protocol=pickle.HIGHEST_PROTOCOL))
        for e in sess.engines
        if e is not None
    )
    before = sess._pool.payload_bytes
    sess.run_round()
    per_round = sess._pool.payload_bytes - before
    shrink = legacy / per_round
    benchmark.extra_info["legacy_bytes_per_round"] = legacy
    benchmark.extra_info["payload_bytes_per_round"] = per_round
    benchmark.extra_info["payload_shrink"] = round(shrink, 2)
    benchmark(sess.run_round)
    sess.close()
    assert shrink >= 10.0, (
        f"steady-state epoch payload only shrank {shrink:.1f}x "
        f"({legacy} -> {per_round} bytes/round); the zero-copy spec "
        f"transport promises >=10x on this instance"
    )


@pytest.mark.parametrize(
    "supervise", [False, True], ids=["bare", "supervised"]
)
def test_supervised_round_overhead(benchmark, supervise):
    """Steady-state pooled rounds with the ShardSupervisor on vs off.

    Supervision adds only bookkeeping on the clean path (a deadline
    lookup per harvest + a timing observation per epoch), so the two
    variants should be within noise of each other; the ledger tracks the
    pair so a supervision-cost regression shows up as their ratio
    drifting.
    """
    sess, _ = _make_session(4, processes=4, supervise=supervise)
    sess.run_round()  # warm the worker spec caches
    benchmark(sess.run_round)
    report = sess.supervision_report()
    if supervise:
        assert report is not None and report["retries"] == 0
        benchmark.extra_info["deadline_seconds"] = report["deadline"]
    else:
        assert report is None
    sess.close()


def test_capacity_floor():
    """K=4 must sustain >=2x the churn throughput of the monolithic K=1."""
    base = _sustained_users_per_second(1)
    sharded = _sustained_users_per_second(4)
    speedup = sharded / base
    print(
        f"\nserve capacity: K=1 {base:.1f} users/s, K=4 {sharded:.1f} "
        f"users/s, speedup {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"sharded serving speedup {speedup:.2f}x below the 2x floor "
        f"(K=1: {base:.1f} users/s, K=4: {sharded:.1f} users/s)"
    )


def test_sharded_equilibrium_quality():
    """Sharded convergence must still land on a global Nash equilibrium."""
    sess, factory = _make_session(4)
    schedule = ChurnSchedule(rate=CHURN_RATE, seed=SEED + 1)
    _churn_phase(sess, factory, schedule)
    sess.run_to_convergence()
    sess.check_quiescence()
    assert sess.is_nash()
    assert sess.ok, [str(v) for v in sess.violations]
    sess.close()
