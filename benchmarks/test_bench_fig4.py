"""Bench for Figure 4: decision slots vs. user number.

Paper shape: MUUN < BUAU < DGRN < BRUN < BATS, growing with users.  The
strict five-way chain needs many repetitions to resolve at every point; at
bench scale we assert the paper's robust core orderings on the
aggregate: MUUN fastest of the distributed schemes, BATS slowest.
"""

from repro.experiments import run_experiment

from conftest import save_and_print

USER_COUNTS = (20, 40, 60)


def run():
    return run_experiment(
        "fig4",
        repetitions=5,
        seed=0,
        cities=("shanghai", "roma", "epfl"),
        user_counts=USER_COUNTS,
    )


def test_fig4_slots_vs_users(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig4", table)

    def total(algo):
        return sum(
            r["decision_slots_mean"] for r in table if r["algorithm"] == algo
        )

    assert total("MUUN") <= total("BUAU") <= total("DGRN")
    assert total("DGRN") <= total("BATS")
    assert total("BRUN") <= total("BATS")
    # Slots grow with the user count (per algorithm, aggregated over cities).
    for algo in ("DGRN", "MUUN", "BATS"):
        by_m = {
            m: sum(
                r["decision_slots_mean"]
                for r in table
                if r["algorithm"] == algo and r["n_users"] == m
            )
            for m in USER_COUNTS
        }
        assert by_m[USER_COUNTS[-1]] > by_m[USER_COUNTS[0]]
