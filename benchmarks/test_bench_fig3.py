"""Bench for Figure 3: user profit vs. decision slot (3 cities).

Regenerates the per-user profit trajectories and checks the paper's shape:
profits stabilize (Nash equilibrium reached) within the displayed window.
"""

from repro.experiments import run_experiment

from conftest import save_and_print


def run():
    return run_experiment("fig3", repetitions=1, seed=0)


def test_fig3_profit_trajectories(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig3", table)
    # Shape: per city, trajectories flatten at the converged equilibrium.
    for city in ("shanghai", "roma", "epfl"):
        rows = [r for r in table if r["city"] == city]
        assert rows, city
        last = {r["user"]: r["profit"] for r in rows if r["slot"] == 20}
        prev = {r["user"]: r["profit"] for r in rows if r["slot"] == 19}
        if rows[0]["converged_at"] < 19:
            assert last == prev
        assert len(last) == 15  # the paper observes 15 users
