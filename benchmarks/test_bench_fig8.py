"""Bench for Figure 8: coverage vs. user number (DGRN/BATS/RRN).

Paper shape: coverage grows with users; RRN < BATS <= DGRN overall.
"""

from repro.experiments import run_experiment

from conftest import save_and_print

USER_COUNTS = (20, 60, 100)


def run():
    return run_experiment(
        "fig8",
        repetitions=5,
        seed=0,
        cities=("shanghai", "roma", "epfl"),
        user_counts=USER_COUNTS,
    )


def test_fig8_coverage(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    save_and_print("fig8", table)

    def total(algo):
        return sum(r["coverage_mean"] for r in table if r["algorithm"] == algo)

    assert total("RRN") <= total("DGRN") + 1e-9
    assert total("BATS") <= total("DGRN") + 0.05 * len(USER_COUNTS) * 3
    # Coverage grows with the user count for every algorithm.
    for algo in ("DGRN", "BATS", "RRN"):
        by_m = {
            m: sum(
                r["coverage_mean"]
                for r in table
                if r["algorithm"] == algo and r["n_users"] == m
            )
            for m in USER_COUNTS
        }
        assert by_m[100] > by_m[20]
