"""BoundaryLedger: contributions, visibility, and the correction identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.ledger import BoundaryLedger
from repro.tasks.task import Task, TaskSet


def _tasks(n: int, seed: int = 0) -> TaskSet:
    rng = np.random.default_rng(seed)
    return TaskSet(
        [
            Task(k, float(rng.uniform(0, 5)), float(rng.uniform(0, 5)),
                 float(rng.uniform(10, 20)), float(rng.uniform(0, 1)))
            for k in range(n)
        ]
    )


def test_sync_and_global_counts():
    tasks = _tasks(6)
    ledger = BoundaryLedger(tasks, 2)
    assert ledger.version == 0
    ledger.sync([
        (np.array([0, 1, 2]), np.array([2, 0, 1])),
        (np.array([2, 3, 4]), np.array([1, 3, 0])),
    ])
    assert ledger.version == 1
    assert ledger.global_counts().tolist() == [2, 0, 2, 3, 0, 0]
    # Only task 2 is visible to both shards.
    assert ledger.boundary_tasks().tolist() == [2]


def test_dormant_shard_entry():
    tasks = _tasks(3)
    ledger = BoundaryLedger(tasks, 2)
    ledger.sync([(np.array([0, 1, 2]), np.array([1, 1, 0])), None])
    assert ledger.global_counts().tolist() == [1, 1, 0]
    assert ledger.boundary_tasks().size == 0


def test_corrections_zero_off_boundary():
    """A task with at most one contributing shard needs no correction."""
    tasks = _tasks(5)
    ledger = BoundaryLedger(tasks, 3)
    ledger.sync([
        (np.array([0, 1]), np.array([3, 1])),
        (np.array([2, 3]), np.array([2, 0])),
        (np.array([4]), np.array([5])),
    ])
    assert np.all(ledger.per_task_corrections() == 0.0)
    assert ledger.correction() == 0.0


def test_correction_identity_on_boundary():
    """F_k(sum c) - sum F_k(c) per boundary task, against a direct compute."""
    tasks = _tasks(4, seed=3)
    ledger = BoundaryLedger(tasks, 2)
    tm = np.array([0, 1, 2, 3])
    a = np.array([2, 1, 0, 3])
    b = np.array([1, 2, 0, 1])
    ledger.sync([(tm, a), (tm, b)])
    expected = (
        tasks.potential_terms(a + b)
        - tasks.potential_terms(a)
        - tasks.potential_terms(b)
    )
    np.testing.assert_allclose(ledger.per_task_corrections(), expected)
    np.testing.assert_allclose(ledger.correction(), expected.sum())
    # With overlapping nonzero counts the correction is genuinely nonzero.
    assert abs(ledger.correction()) > 0


def test_sync_requires_one_entry_per_shard():
    ledger = BoundaryLedger(_tasks(3), 2)
    with pytest.raises(Exception):
        ledger.sync([(np.array([0]), np.array([1]))])
