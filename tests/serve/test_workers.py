"""Process-pool shard workers: transport round-trip and pooled sessions."""

from __future__ import annotations

import numpy as np

from repro.serve.partition import partition_game
from repro.serve.session import ServeSession
from repro.serve.shard import ShardEngine, UserRecord, build_shard_spec
from repro.serve.workers import ShardPool
from tests.helpers import random_game


def _specs_and_states(seed: int, k: int = 2):
    game = random_game(
        np.random.default_rng(seed), max_users=14, max_routes=4, max_tasks=16
    )
    part = partition_game(game, k)
    records = [
        UserRecord(
            user_id=i, routes=game.route_sets[i], weights=game.user_weights[i]
        )
        for i in range(game.num_users)
    ]
    by_shard: dict[int, list[UserRecord]] = {}
    for r in records:
        s = part.owner_shard(r.covered_tasks(), fallback=r.user_id)
        by_shard.setdefault(s, []).append(r)
    specs, engines = [], []
    for s, recs in sorted(by_shard.items()):
        spec = build_shard_spec(s, recs, game.tasks, part, game.platform)
        specs.append(spec)
        engines.append(
            ShardEngine(spec, scheduler="puu", rng=np.random.default_rng(seed + s))
        )
    return specs, engines


def test_pool_matches_inline_execution():
    """Workers must produce exactly what the same engines produce inline."""
    specs, engines = _specs_and_states(50)
    states = [e.export_state() for e in engines]
    inline = [
        ShardEngine.from_state(spec, st, scheduler="puu").run_epoch()
        for spec, st in zip(specs, states)
    ]
    with ShardPool(2) as pool:
        outcomes = pool.run_epochs(specs, states, scheduler="puu", sort_key="delta")
    assert len(outcomes) == len(inline)
    for (res, state), ref in zip(outcomes, inline):
        assert res.shard_id == ref.shard_id
        assert res.moves == ref.moves
        assert res.converged == ref.converged
        assert np.array_equal(res.boundary_users, ref.boundary_users)
        # Returned state resumes on the driver side.
        eng = ShardEngine.from_state(
            specs[outcomes.index((res, state))], state, scheduler="puu"
        )
        assert eng.run_epoch().converged


def test_pooled_session_converges_to_nash():
    game = random_game(
        np.random.default_rng(60), max_users=16, max_routes=4, max_tasks=18
    )
    with ServeSession.from_game(
        game, num_shards=3, scheduler="puu", seed=2, validate=True, processes=2
    ) as sess:
        assert sess._pool is not None
        sess.run_to_convergence()
        sess.check_quiescence()
        assert sess.ok, [str(v) for v in sess.violations]
        assert sess.is_nash()


def test_single_shard_session_skips_pool():
    game = random_game(np.random.default_rng(61), max_users=8, max_tasks=10)
    with ServeSession.from_game(
        game, num_shards=1, seed=0, processes=4
    ) as sess:
        assert sess._pool is None
        sess.run_to_convergence()


def test_pool_snapshots_labeled_per_shard():
    """Worker telemetry comes back stamped with the shard id."""
    import repro.obs as obs

    specs, engines = _specs_and_states(52)   # two populated shards
    states = [e.export_state() for e in engines]
    shard_ids = [spec.shard_id for spec in specs]
    assert len(shard_ids) == 2
    with obs.session(), ShardPool(2) as pool:
        pool.run_epochs(specs, states, scheduler="puu", sort_key="delta")
        snap = obs.REGISTRY.snapshot()
        # The proposal-engine counters each worker emitted come back as
        # one labeled series per shard instead of folding together.
        sweeps = snap.counter_values("allocator.proposals_generated", "shard")
        assert set(sweeps) == {str(s) for s in shard_ids}
        assert all(count > 0 for count in sweeps.values())


def test_spec_cache_rebuilds_track_version_bumps_not_epochs():
    """The worker spec cache misses once per (shard, version), never per epoch."""
    from repro.serve.shard import build_shard_spec as _build

    specs, engines = _specs_and_states(53)
    spec = specs[0]
    state = engines[0].export_state()
    with ShardPool(1) as pool:
        assert pool._store is not None, "shared-memory store unavailable"
        epochs = 5
        for _ in range(epochs):
            result, state = pool.harvest(
                pool.submit_epoch(
                    spec, state, scheduler="puu", sort_key="delta"
                )
            )
        assert pool.cache_misses == 1
        assert pool.cache_hits == epochs - 1
        shipped_v0 = pool.spec_bytes_shipped
        assert shipped_v0 > 0

        # A version bump (what a churn rebuild does) must miss exactly once.
        game = random_game(
            np.random.default_rng(53), max_users=14, max_routes=4, max_tasks=16
        )
        from repro.serve.partition import partition_game as _pg

        part = _pg(game, 2)
        recs = [
            UserRecord(
                user_id=i, routes=game.route_sets[i],
                weights=game.user_weights[i],
            )
            for i in spec.users.tolist()
        ]
        bumped = _build(
            spec.shard_id, recs, game.tasks, part, game.platform, version=1
        )
        eng = ShardEngine(
            bumped, scheduler="puu", rng=np.random.default_rng(99)
        )
        st2 = eng.export_state()
        for _ in range(3):
            _, st2 = pool.harvest(
                pool.submit_epoch(
                    bumped, st2, scheduler="puu", sort_key="delta"
                )
            )
        assert pool.cache_misses == 2           # v0 once + v1 once
        assert pool.cache_hits == (epochs - 1) + 2
        assert pool.spec_bytes_shipped > shipped_v0  # one more publish


def test_pool_payload_excludes_spec_arrays():
    """Steady-state per-epoch payload must not carry the compiled arrays."""
    import pickle

    specs, engines = _specs_and_states(54)
    spec, engine = specs[0], engines[0]
    state = engine.export_state()
    legacy = len(pickle.dumps((spec, state), protocol=pickle.HIGHEST_PROTOCOL))
    with ShardPool(1) as pool:
        assert pool._store is not None
        pool.harvest(
            pool.submit_epoch(spec, state, scheduler="puu", sort_key="delta")
        )
        first = pool.payload_bytes
        # The ticket is tiny; the bulk of `legacy` is the spec itself.
        arrays_bytes = spec.game.arrays.buffer_table().total_bytes
        assert first < legacy
        assert first < legacy - arrays_bytes + 4096
