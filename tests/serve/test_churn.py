"""Churn schedules and user factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve.churn import (
    ChurnSchedule,
    ScenarioUserFactory,
    SyntheticUserFactory,
    synthetic_serve_instance,
)
from repro.serve.partition import RegionPartition


def test_schedule_reproducible():
    a = ChurnSchedule(rate=3.0, seed=5)
    b = ChurnSchedule(rate=3.0, seed=5)
    ids = list(range(10))
    for _ in range(5):
        assert a.next_round(ids) == b.next_round(ids)


def test_schedule_zero_rate_is_quiet():
    sched = ChurnSchedule(rate=0.0, seed=1)
    for _ in range(10):
        assert sched.next_round([1, 2, 3]) == (0, [])


def test_schedule_validates():
    with pytest.raises(ValueError):
        ChurnSchedule(rate=-1.0)
    with pytest.raises(ValueError):
        ChurnSchedule(rate=1.0, leave_fraction=1.5)


def test_synthetic_factory_locality():
    """With locality=1 every covered task stays in the home region."""
    tasks, _, _, partition, _ = synthetic_serve_instance(1, 40, 4, seed=0)
    factory = SyntheticUserFactory(tasks, partition, locality=1.0, seed=3)
    for uid in range(20):
        rec = factory(uid)
        regions = set(partition.task_region[rec.covered_tasks()].tolist())
        assert len(regions) == 1
        assert rec.user_id == uid
        assert len(rec.routes) >= 1


def test_synthetic_factory_needs_occupied_region():
    tasks, _, _, _, _ = synthetic_serve_instance(1, 5, 2, seed=0)
    empty = RegionPartition(
        num_shards=2, task_region=np.zeros(len(tasks), dtype=np.intp)
    )
    # Region 1 is empty but region 0 is occupied — fine.
    SyntheticUserFactory(tasks, empty, seed=0)


def test_synthetic_serve_instance_shape():
    tasks, platform, records, partition, factory = synthetic_serve_instance(
        25, 30, 3, seed=9
    )
    assert len(tasks) == 30
    assert len(records) == 25
    assert partition.num_shards == 3
    assert sorted(r.user_id for r in records) == list(range(25))
    # Deterministic for the same seed.
    _, _, records2, _, _ = synthetic_serve_instance(25, 30, 3, seed=9)
    assert [r.user_id for r in records2] == [r.user_id for r in records]
    assert all(
        a.routes[0].task_ids == b.routes[0].task_ids
        for a, b in zip(records, records2)
    )


def test_scenario_factory_builds_road_users(shanghai_scenario):
    factory = ScenarioUserFactory(shanghai_scenario, seed=1)
    rec = factory(0)
    assert rec.user_id == 0
    assert len(rec.routes) >= 1
    lo, hi = shanghai_scenario.config.route_count_range
    assert len(rec.routes) <= hi
    # Covered task ids are valid global ids of the scenario's task set.
    cov = rec.covered_tasks()
    if cov.size:
        assert cov.max() < len(shanghai_scenario.tasks)
