"""ServeSession: sharded convergence, sync invariants, churn, crash/resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import is_nash_equilibrium
from repro.serve.churn import ChurnSchedule, SyntheticUserFactory
from repro.serve.session import ServeSession
from tests.helpers import random_game


@pytest.mark.parametrize("scheduler", ["suu", "puu"])
@pytest.mark.parametrize("num_shards", [2, 3, 4])
def test_sharded_convergence_reaches_global_nash(scheduler, num_shards):
    for seed in range(8):
        game = random_game(
            np.random.default_rng(seed + 200), max_users=14, max_routes=4,
            max_tasks=16,
        )
        sess = ServeSession.from_game(
            game, num_shards=num_shards, scheduler=scheduler, seed=seed,
            validate=True,
        )
        sess.run_to_convergence()
        sess.check_quiescence()
        assert sess.ok, [str(v) for v in sess.violations]
        assert sess.is_nash()
        # The sharded equilibrium is a Nash equilibrium of the monolithic
        # game, verified with the core equilibrium checker.
        _, profile = sess.global_profile()
        assert is_nash_equilibrium(profile)


def test_ledger_identity_holds_at_every_sync():
    """Shard-sum potential + ledger correction == monolithic potential,
    checked by validate mode at every sync point."""
    for seed in range(6):
        game = random_game(
            np.random.default_rng(seed + 300), max_users=12, max_tasks=14
        )
        sess = ServeSession.from_game(
            game, num_shards=3, scheduler="puu", seed=seed, validate=True
        )
        sess.run_to_convergence()
        assert sess.stats.sync_points >= 2
        assert not [
            v for v in sess.violations
            if v.invariant == "potential_reconciliation"
        ]


def test_compact_shards_mode_converges():
    game = random_game(np.random.default_rng(17), max_users=12, max_tasks=14)
    sess = ServeSession.from_game(
        game, num_shards=3, scheduler="puu", seed=1, validate=True,
        compact_shards=True,
    )
    sess.run_to_convergence()
    sess.check_quiescence()
    assert sess.ok and sess.is_nash()


def test_join_and_leave_update_counts_and_reconverge():
    game = random_game(np.random.default_rng(21), max_users=10, max_tasks=12)
    sess = ServeSession.from_game(
        game, num_shards=2, scheduler="suu", seed=3, validate=True
    )
    sess.run_to_convergence()
    n0 = sess.num_users
    fac = SyntheticUserFactory(game.tasks, sess.partition, seed=5)
    uid = sess.join(fac(sess.next_user_id()))
    assert sess.num_users == n0 + 1
    assert uid in sess.records
    sess.run_to_convergence()
    assert sess.is_nash()
    sess.leave(uid)
    assert sess.num_users == n0
    assert uid not in sess.records
    # Counts reconcile after the departure: global counts equal the
    # ledger's shard-contribution sum (validate mode asserts it too).
    np.testing.assert_array_equal(sess.counts, sess.ledger.global_counts())
    sess.run_to_convergence()
    sess.check_quiescence()
    assert sess.ok, [str(v) for v in sess.violations]


def test_leave_can_empty_a_shard():
    game = random_game(np.random.default_rng(23), max_users=6, max_tasks=8)
    sess = ServeSession.from_game(game, num_shards=2, seed=0, validate=True)
    sess.run_to_convergence()
    # Retire every user of shard 0 (but never the last user overall).
    for uid in [u for u, s in sess._user_shard.items() if s == 0]:
        if sess.num_users > 1:
            sess.leave(uid)
    sess.run_to_convergence()
    sess.check_quiescence()
    assert sess.ok


def test_churn_schedule_respects_min_users():
    sched = ChurnSchedule(rate=50.0, leave_fraction=1.0, min_users=3, seed=0)
    active = list(range(5))
    joins, leaves = sched.next_round(active)
    assert len(active) - len(leaves) >= 3


def test_churned_session_full_loop():
    game = random_game(np.random.default_rng(29), max_users=12, max_tasks=14)
    sess = ServeSession.from_game(
        game, num_shards=3, scheduler="puu", seed=2, validate=True
    )
    fac = SyntheticUserFactory(game.tasks, sess.partition, seed=4)
    sched = ChurnSchedule(rate=2.0, seed=6)
    for _ in range(6):
        joins, leaves = sched.next_round(sorted(sess.records))
        for uid in leaves:
            sess.leave(uid)
        for _ in range(joins):
            sess.join(fac(sess.next_user_id()))
        sess.run_round()
    sess.run_to_convergence()
    sess.check_quiescence()
    assert sess.ok, [str(v) for v in sess.violations]
    assert sess.is_nash()
    assert sess.stats.joins + sess.stats.leaves > 0
    assert sess.stats.shard_rebuilds >= sess.stats.joins + sess.stats.leaves


def test_crash_resume_loses_work_but_still_converges():
    for seed in range(4):
        game = random_game(
            np.random.default_rng(seed + 400), max_users=14, max_tasks=16
        )
        sess = ServeSession.from_game(
            game, num_shards=3, scheduler="suu", seed=seed, validate=True
        )
        rep = sess.run_round(crash_shards=(1,))
        assert rep.crashed_shards == (1,)
        assert not rep.converged  # a crashed round never counts as quiet
        sess.run_to_convergence()
        sess.check_quiescence()
        assert sess.ok and sess.is_nash()
        assert sess.stats.shard_crashes == 1


def test_duplicate_user_ids_rejected():
    game = random_game(np.random.default_rng(31), max_users=5, max_tasks=6)
    sess = ServeSession.from_game(game, num_shards=1, seed=0)
    with pytest.raises(Exception, match="already active"):
        sess.join(list(sess.records.values())[0])


def test_history_requires_single_shard():
    game = random_game(np.random.default_rng(33), max_users=6, max_tasks=8)
    with pytest.raises(Exception, match="K=1"):
        ServeSession.from_game(game, num_shards=2, record_history=True)


def test_total_profit_matches_monolithic_at_sync():
    from repro.core.profit import all_profits

    game = random_game(np.random.default_rng(35), max_users=12, max_tasks=14)
    sess = ServeSession.from_game(game, num_shards=3, scheduler="puu", seed=1)
    sess.run_to_convergence()
    _, profile = sess.global_profile()
    assert np.isclose(
        sess.total_profit(), float(all_profits(profile).sum()), rtol=1e-12
    )
